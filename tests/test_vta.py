"""Unit tests for the Victim Tag Array."""

import pytest

from repro.mem.victim_tag_array import VTAConfig, VictimTagArray


@pytest.fixture
def vta():
    return VictimTagArray(VTAConfig(entries_per_warp=4, num_warps=8))


class TestVTA:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            VictimTagArray(VTAConfig(entries_per_warp=0))
        with pytest.raises(ValueError):
            VictimTagArray(VTAConfig(num_warps=0))

    def test_probe_miss_on_empty(self, vta):
        assert vta.probe(0, 123) is None
        assert vta.stats.probes == 1
        assert vta.stats.hits == 0

    def test_eviction_then_probe_hit(self, vta):
        vta.record_eviction(owner_wid=2, block=100, evictor_wid=5)
        hit = vta.probe(2, 100)
        assert hit is not None
        assert hit.wid == 2
        assert hit.evictor_wid == 5
        assert hit.block == 100

    def test_hit_is_consumed_by_default(self, vta):
        vta.record_eviction(owner_wid=2, block=100, evictor_wid=5)
        assert vta.probe(2, 100) is not None
        assert vta.probe(2, 100) is None

    def test_probe_without_consume(self, vta):
        vta.record_eviction(owner_wid=2, block=100, evictor_wid=5)
        assert vta.probe(2, 100, consume=False) is not None
        assert vta.probe(2, 100) is not None

    def test_other_warps_do_not_hit(self, vta):
        vta.record_eviction(owner_wid=2, block=100, evictor_wid=5)
        assert vta.probe(3, 100) is None

    def test_fifo_capacity(self, vta):
        for block in range(10):
            vta.record_eviction(owner_wid=1, block=block, evictor_wid=0)
        assert vta.occupancy(1) == 4
        # Oldest entries displaced.
        assert vta.probe(1, 0) is None
        assert vta.probe(1, 9) is not None

    def test_refresh_updates_evictor_without_duplication(self, vta):
        vta.record_eviction(owner_wid=1, block=5, evictor_wid=2)
        vta.record_eviction(owner_wid=1, block=5, evictor_wid=7)
        assert vta.occupancy(1) == 1
        hit = vta.probe(1, 5)
        assert hit.evictor_wid == 7

    def test_per_warp_hit_stats(self, vta):
        vta.record_eviction(owner_wid=4, block=1, evictor_wid=0)
        vta.probe(4, 1)
        assert vta.stats.per_warp_hits[4] == 1
        assert vta.stats.hit_rate > 0

    def test_clear(self, vta):
        vta.record_eviction(owner_wid=4, block=1, evictor_wid=0)
        vta.clear()
        assert vta.probe(4, 1) is None

    def test_storage_bits(self, vta):
        # 4 entries x 8 warps x (25 + 6) bits
        assert vta.storage_bits() == 4 * 8 * 31
