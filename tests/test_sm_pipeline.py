"""Integration tests for the SM pipeline (issue, memory path, barriers, CIAO hooks)."""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.cta import KernelLaunch
from repro.gpu.instruction import Instruction
from repro.gpu.sm import StreamingMultiprocessor
from repro.mem.subsystem import MemorySubsystem, MemorySubsystemConfig
from repro.sched.gto import GTOScheduler
from repro.sched.lrr import LooseRoundRobinScheduler


def build_sm(scheduler=None, *, enable_shared_cache=False, config=None):
    config = config or GPUConfig.gtx480()
    memory = MemorySubsystem(MemorySubsystemConfig.gtx480(), num_sms=1)
    return StreamingMultiprocessor(
        0, config, memory, scheduler or GTOScheduler(), enable_shared_cache=enable_shared_cache
    )


def launch_and_run(sm, streams, warps_per_cta=None, num_ctas=1, shared_mem=0, max_cycles=500_000):
    """streams: list of instruction lists, one per warp (single CTA by default)."""
    warps_per_cta = warps_per_cta or len(streams)

    def factory(cta, widx, wid):
        return iter(list(streams[cta * warps_per_cta + widx]))

    kernel = KernelLaunch(
        "test", num_ctas=num_ctas, warps_per_cta=warps_per_cta,
        stream_factory=factory, shared_mem_per_cta=shared_mem,
    )
    sm.launch(kernel)
    return sm.run(max_cycles)


class TestBasicExecution:
    def test_alu_only_warp_retires(self):
        sm = build_sm()
        stats = launch_and_run(sm, [[Instruction.alu() for _ in range(10)] + [Instruction.exit()]])
        assert stats.warps_retired == 1
        assert stats.instructions_issued == 11
        assert stats.cycles > 0

    def test_ipc_bounded_by_issue_width(self):
        sm = build_sm()
        streams = [[Instruction.alu() for _ in range(100)] + [Instruction.exit()] for _ in range(4)]
        stats = launch_and_run(sm, streams)
        assert stats.warp_ipc <= 1.0 + 1e-9
        assert stats.ipc <= 32.0 + 1e-9

    def test_load_miss_then_reuse_hits(self):
        sm = build_sm()
        addr = [lane * 4 for lane in range(32)]
        stream = [Instruction.load(addr), Instruction.load(addr), Instruction.exit()]
        stats = launch_and_run(sm, [stream])
        assert stats.l1d_misses == 1
        assert stats.l1d_hits == 1

    def test_store_does_not_allocate(self):
        sm = build_sm()
        addr = [lane * 4 for lane in range(32)]
        stream = [Instruction.store(addr), Instruction.load(addr), Instruction.exit()]
        stats = launch_and_run(sm, [stream])
        assert stats.l1d_misses == 2  # store miss (no allocate) + load miss

    def test_memory_latency_costs_cycles(self):
        sm_mem = build_sm()
        addr = [lane * 4 for lane in range(32)]
        mem_stats = launch_and_run(sm_mem, [[Instruction.load([a + i * 4096 for a in addr]) for i in range(8)] + [Instruction.exit()]])
        sm_alu = build_sm()
        alu_stats = launch_and_run(sm_alu, [[Instruction.alu() for _ in range(9)] + [Instruction.exit()]])
        assert mem_stats.cycles > alu_stats.cycles

    def test_run_without_launch_raises(self):
        sm = build_sm()
        with pytest.raises(RuntimeError):
            sm.run()


class TestBarriersAndCTAs:
    def test_barrier_synchronises_cta(self):
        sm = build_sm()
        fast = [Instruction.alu(), Instruction.barrier(), Instruction.alu(), Instruction.exit()]
        slow = [Instruction.alu()] * 50 + [Instruction.barrier(), Instruction.alu(), Instruction.exit()]
        stats = launch_and_run(sm, [fast, slow])
        assert stats.warps_retired == 2
        assert stats.barriers_executed == 2

    def test_multiple_ctas_resident_and_slot_reuse(self):
        config = GPUConfig.gtx480().with_overrides(max_ctas_per_sm=2)
        sm = build_sm(config=config)
        streams = [[Instruction.alu() for _ in range(5)] + [Instruction.exit()] for _ in range(4 * 2)]
        stats = launch_and_run(sm, streams, warps_per_cta=2, num_ctas=4)
        assert stats.warps_retired == 8

    def test_shared_memory_allocation_per_cta(self):
        sm = build_sm()
        stream = [Instruction.shared_load([i * 8 for i in range(32)]), Instruction.exit()]
        stats = launch_and_run(sm, [stream], shared_mem=4096)
        assert stats.shared_memory_instructions == 1
        # CTA finished: its scratchpad allocation is released.
        assert sm.shared_memory.smmt.unused_bytes() == sm.shared_memory.capacity_bytes


class TestThrottlingSemantics:
    def test_throttled_warp_blocks_at_global_load(self):
        sm = build_sm(LooseRoundRobinScheduler())
        addr = [lane * 4 for lane in range(32)]
        streams = [
            [Instruction.alu(), Instruction.load(addr), Instruction.exit()],
            [Instruction.alu() for _ in range(20)] + [Instruction.exit()],
        ]

        def factory(cta, widx, wid):
            return iter(list(streams[widx]))

        sm.launch(KernelLaunch("t", 1, 2, factory))
        throttled = sm.warps[0]
        throttled.active = False
        # The throttled warp may issue its ALU instruction but not the load,
        # as long as its CTA is not waiting at a barrier.
        sm.run(2000)
        assert throttled.instructions_issued >= 1
        assert sm.stats.warps_retired >= 1

    def test_no_progress_guard_reactivates(self):
        sm = build_sm(LooseRoundRobinScheduler())
        addr = [lane * 4 for lane in range(32)]
        streams = [[Instruction.load(addr), Instruction.exit()]]

        def factory(cta, widx, wid):
            return iter(list(streams[widx]))

        sm.launch(KernelLaunch("t", 1, 1, factory))
        sm.warps[0].active = False
        stats = sm.run(200_000)
        # Without the guard the run would never finish.
        assert stats.warps_retired == 1


class TestCIAOMemoryPath:
    def test_isolated_warp_uses_shared_cache(self):
        sm = build_sm(enable_shared_cache=True)
        addr = [lane * 4 for lane in range(32)]
        stream = [Instruction.load(addr), Instruction.load(addr), Instruction.exit()]

        def factory(cta, widx, wid):
            return iter(list(stream))

        sm.launch(KernelLaunch("t", 1, 1, factory))
        sm.warps[0].isolated = True
        stats = sm.run(100_000)
        assert stats.redirected_accesses >= 2
        assert sm.shared_cache.stats.accesses >= 2
        assert stats.shared_cache_hit_rate > 0

    def test_migration_from_l1_to_shared(self):
        # A single outstanding load per warp makes the warp block on the first
        # load, so we can flip its isolation bit before the second one issues.
        config = GPUConfig.gtx480().with_overrides(max_outstanding_loads_per_warp=1)
        sm = build_sm(enable_shared_cache=True, config=config)
        addr = [lane * 4 for lane in range(32)]
        stream = [Instruction.load(addr), Instruction.load(addr), Instruction.exit()]

        def factory(cta, widx, wid):
            return iter(list(stream))

        sm.launch(KernelLaunch("t", 1, 1, factory))
        warp = sm.warps[0]
        # First load goes to the L1D, then the warp is isolated; the second
        # load must migrate the block from the L1D into shared memory.
        sm.run(5)  # first load issued and pending
        warp.isolated = True
        stats = sm.run(100_000)
        assert stats.migrations_l1_to_shared >= 1
        assert not sm.l1d.contains(addr[0])

    def test_shared_cache_disabled_by_default(self):
        sm = build_sm(enable_shared_cache=False)
        assert sm.shared_cache is None


class TestVTAIntegration:
    def test_interference_detected_between_conflicting_warps(self):
        # Two warps ping-pong on the same cache set with more blocks than ways.
        config = GPUConfig.gtx480()
        sm = build_sm(LooseRoundRobinScheduler(), config=config)
        num_sets = config.l1d.num_sets

        def conflicting_stream(offset_blocks):
            instrs = []
            for rep in range(20):
                for way in range(3):
                    block = (offset_blocks + way * 2) * num_sets  # same set under linear map
                    instrs.append(Instruction.load([block * 128 + lane * 4 for lane in range(32)]))
            instrs.append(Instruction.exit())
            return instrs

        streams = [conflicting_stream(0), conflicting_stream(1)]

        def factory(cta, widx, wid):
            return iter(list(streams[widx]))

        config_linear = GPUConfig.gtx480()
        config_linear.l1d.set_hash = "linear"
        sm = StreamingMultiprocessor(
            0, config_linear, MemorySubsystem(MemorySubsystemConfig.gtx480(), 1), LooseRoundRobinScheduler()
        )
        sm.launch(KernelLaunch("t", 1, 2, factory))
        stats = sm.run(500_000)
        assert stats.vta_hits > 0
        assert stats.interference_matrix


class TestReadyIndexAndSlotReuse:
    """Regression tests for the incremental ready index (PR 3)."""

    def test_fill_for_retired_slot_resolves_to_live_warp(self):
        # A warp retires with a load still in flight; its CTA retires and the
        # slot is immediately reused by the next CTA.  The late fill must
        # resolve wid -> the *live* warp (and leave it untouched, since its
        # pending_loads is zero), never the retired one.
        config = GPUConfig.gtx480().with_overrides(max_ctas_per_sm=1)
        sm = build_sm(config=config)
        addr = [lane * 4 for lane in range(32)]
        streams = {
            0: [Instruction.load(addr), Instruction.exit()],
            1: [Instruction.alu() for _ in range(40)] + [Instruction.exit()],
        }

        def factory(cta, widx, wid):
            return iter(list(streams[cta]))

        sm.launch(KernelLaunch("t", 2, 1, factory))
        first = sm.warps[0]
        sm.step_cycle(0)  # load issues and misses (fill in flight)
        sm.step_cycle(1)  # exit retires the warp; CTA 1 reuses slot 0
        assert first.finished and first.pending_loads == 1
        live = sm._warp_by_id(0)
        assert live is not None and live is not first and not live.finished
        assert live.pending_loads == 0
        stats = sm.run()  # drains the in-flight fill along the way
        assert stats.warps_retired == 2
        # The stale fill neither corrupted the live warp nor resurrected the
        # retired one.
        assert first.pending_loads == 1
        assert live.finished and live.pending_loads == 0

    def test_freed_slots_are_reused_lowest_first(self):
        # One CTA resident at a time: each admission must pick the lowest
        # freed slot, exactly like the historical sorted-list behaviour.
        config = GPUConfig.gtx480().with_overrides(max_ctas_per_sm=1)
        sm = build_sm(config=config)
        observed = []

        def factory(cta, widx, wid):
            observed.append((cta, wid))
            return iter([Instruction.alu(), Instruction.exit()])

        sm.launch(KernelLaunch("t", 3, 2, factory))
        sm.run()
        assert observed == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]

    def test_issuable_order_matches_warps_scan_order(self):
        # The ready index must present issuable warps in self.warps order.
        sm = build_sm(LooseRoundRobinScheduler())
        streams = [[Instruction.alu() for _ in range(4)] + [Instruction.exit()]
                   for _ in range(3)]

        def factory(cta, widx, wid):
            return iter(list(streams[widx]))

        sm.launch(KernelLaunch("t", 1, 3, factory))
        issuable = sm._issuable_warps(0)
        assert issuable == [w for w in sm.warps if w.is_issuable(0)]

    def test_ready_index_survives_throttle_flips_between_runs(self):
        # active/isolated are scheduler-owned and not indexed: flipping them
        # between run() calls (as schedulers and tests do) must be honoured.
        sm = build_sm(LooseRoundRobinScheduler())
        streams = [[Instruction.alu() for _ in range(30)] + [Instruction.exit()],
                   [Instruction.alu() for _ in range(30)] + [Instruction.exit()]]

        def factory(cta, widx, wid):
            return iter(list(streams[widx]))

        sm.launch(KernelLaunch("t", 1, 2, factory))
        sm.run(5)
        throttled = sm.warps[0]
        throttled.active = False
        before = throttled.instructions_issued
        sm.run(10)  # ALU instructions may still issue despite the throttle
        assert throttled.instructions_issued >= before
        stats = sm.run()
        assert stats.warps_retired == 2


class TestSchedulerHookResolution:
    def test_base_noop_hooks_resolve_to_none(self):
        from repro.sched.base import resolve_hooks

        hooks = resolve_hooks(GTOScheduler())
        assert hooks.on_cycle is None            # inherited no-op
        assert hooks.should_bypass_l1 is None    # inherited constant-False
        assert hooks.notify_issue is not None    # overridden by GTO
        assert hooks.on_warp_retired is not None

    def test_duck_typed_scheduler_without_hooks(self):
        from repro.sched.base import resolve_hooks

        class Bare:
            def select(self, issuable, now):
                return issuable[0] if issuable else None

        hooks = resolve_hooks(Bare())
        assert hooks.on_cycle is None and hooks.notify_issue is None
        sm = build_sm(Bare())
        stats = launch_and_run(sm, [[Instruction.alu(), Instruction.exit()]])
        assert stats.warps_retired == 1

    def test_instance_attribute_hook_is_kept(self):
        from repro.sched.base import resolve_hooks

        scheduler = GTOScheduler()
        calls = []
        scheduler.on_cycle = lambda now: calls.append(now)
        hooks = resolve_hooks(scheduler)
        assert hooks.on_cycle is not None
        sm = build_sm(scheduler)
        launch_and_run(sm, [[Instruction.alu(), Instruction.exit()]])
        assert calls
