"""Unit and integration tests for CIAO scheduling (Algorithm 1) and CIAO memory policy."""

import pytest

from repro.core.ciao_memory import CIAOOnChipMemory
from repro.core.ciao_scheduler import CIAOMode, CIAOScheduler
from repro.core.config import CIAOParameters
from repro.core.interference import InterferenceDetector
from repro.gpu.config import GPUConfig
from repro.gpu.cta import KernelLaunch
from repro.gpu.instruction import Instruction
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.warp import Warp
from repro.mem.subsystem import MemorySubsystem, MemorySubsystemConfig
from repro.mem.victim_tag_array import VTAHit


def make_warp(wid, **kwargs):
    return Warp(wid=wid, cta_id=0, instructions=iter([]), **kwargs)


class FakeStats:
    def __init__(self):
        self.throttle_events = 0
        self.reactivate_events = 0
        self.instructions_issued = 0


class FakeSharedCache:
    num_lines = 128


class FakeSM:
    def __init__(self, warps, shared_cache=True):
        self.warps = warps
        self.stats = FakeStats()
        self.shared_cache = FakeSharedCache() if shared_cache else None


class TestCIAOOnChipMemory:
    def test_isolate_and_restore(self):
        detector = InterferenceDetector()
        memory = CIAOOnChipMemory(detector)
        warp = make_warp(3)
        assert memory.isolate(warp, triggered_by_wid=7)
        assert warp.isolated
        assert memory.is_isolated(3)
        assert memory.redirect_trigger(3) == 7
        assert memory.restore(warp)
        assert not warp.isolated
        assert memory.redirect_trigger(3) is None
        assert memory.stats.isolations == 1
        assert memory.stats.restorations == 1

    def test_isolate_finished_or_already_isolated(self):
        memory = CIAOOnChipMemory(InterferenceDetector())
        warp = make_warp(1)
        warp.retire()
        assert not memory.isolate(warp, 0)
        warp2 = make_warp(2)
        memory.isolate(warp2, 0)
        assert not memory.isolate(warp2, 0)

    def test_requires_shared_cache_when_sm_given(self):
        memory = CIAOOnChipMemory(InterferenceDetector())
        warp = make_warp(1)
        sm = FakeSM([warp], shared_cache=False)
        assert not memory.isolate(warp, 0, sm)


class TestAlgorithmOne:
    """Drive the scheduler's epoch logic directly on a fake SM."""

    def _scheduler(self, mode, warps, shared_cache=True, params=None):
        sched = CIAOScheduler(mode=mode, params=params or CIAOParameters.paper_defaults())
        sm = FakeSM(warps, shared_cache=shared_cache)
        sched.attach(sm)
        return sched, sm

    def _interfere(self, sched, victim, aggressor, times=40):
        for _ in range(times):
            sched.notify_global_access(
                victim, False, VTAHit(wid=victim.wid, block=1, evictor_wid=aggressor.wid), "l1d", 0
            )

    def test_combined_isolates_then_stalls(self):
        victim, aggressor = make_warp(0), make_warp(1)
        sched, sm = self._scheduler(CIAOMode.COMBINED, [victim, aggressor])
        sm.stats.instructions_issued = 5000
        self._interfere(sched, victim, aggressor)
        sched._high_epoch_check()
        assert aggressor.isolated and aggressor.active
        # Still interfering while isolated -> next high epoch stalls it.
        self._interfere(sched, victim, aggressor)
        sm.stats.instructions_issued = 10000
        sched._high_epoch_check()
        assert not aggressor.active
        assert sched.detector.pair_entry(aggressor.wid).stall_trigger == victim.wid
        assert sched.stalled_warp_count() == 1

    def test_partition_only_never_stalls(self):
        victim, aggressor = make_warp(0), make_warp(1)
        sched, sm = self._scheduler(CIAOMode.PARTITION_ONLY, [victim, aggressor])
        sm.stats.instructions_issued = 5000
        self._interfere(sched, victim, aggressor)
        sched._high_epoch_check()
        self._interfere(sched, victim, aggressor)
        sched._high_epoch_check()
        assert aggressor.isolated
        assert aggressor.active

    def test_throttle_only_never_isolates(self):
        victim, aggressor = make_warp(0), make_warp(1)
        sched, sm = self._scheduler(CIAOMode.THROTTLE_ONLY, [victim, aggressor], shared_cache=False)
        sm.stats.instructions_issued = 5000
        self._interfere(sched, victim, aggressor)
        sched._high_epoch_check()
        assert not aggressor.isolated
        assert not aggressor.active

    def test_combined_falls_back_to_throttle_without_shared_cache(self):
        victim, aggressor = make_warp(0), make_warp(1)
        sched, sm = self._scheduler(CIAOMode.COMBINED, [victim, aggressor], shared_cache=False)
        sm.stats.instructions_issued = 5000
        self._interfere(sched, victim, aggressor)
        sched._high_epoch_check()
        assert not aggressor.active and not aggressor.isolated

    def test_no_action_below_cutoff(self):
        victim, aggressor = make_warp(0), make_warp(1)
        sched, sm = self._scheduler(CIAOMode.COMBINED, [victim, aggressor])
        sm.stats.instructions_issued = 5000
        self._interfere(sched, victim, aggressor, times=1)  # negligible IRS
        sched._high_epoch_check()
        assert not aggressor.isolated and aggressor.active

    def test_self_interference_ignored(self):
        victim = make_warp(0)
        sched, sm = self._scheduler(CIAOMode.COMBINED, [victim])
        sm.stats.instructions_issued = 5000
        for _ in range(40):
            sched.notify_global_access(
                victim, False, VTAHit(wid=0, block=1, evictor_wid=0), "l1d", 0
            )
        sched._high_epoch_check()
        assert victim.active and not victim.isolated

    def test_low_epoch_reactivates_when_trigger_subsides(self):
        victim, aggressor = make_warp(0), make_warp(1)
        sched, sm = self._scheduler(CIAOMode.THROTTLE_ONLY, [victim, aggressor], shared_cache=False)
        sm.stats.instructions_issued = 5000
        self._interfere(sched, victim, aggressor)
        sched._high_epoch_check()
        assert not aggressor.active
        # Quiet epochs: the victim's recent IRS drops below the low cutoff.
        sched.detector.advance_window(5000)
        sched.detector.advance_window(10000)
        sm.stats.instructions_issued = 10100
        sched._low_epoch_check()
        assert aggressor.active
        assert sm.stats.reactivate_events >= 1

    def test_low_epoch_restores_redirection_when_trigger_finished(self):
        victim, aggressor = make_warp(0), make_warp(1)
        sched, sm = self._scheduler(CIAOMode.PARTITION_ONLY, [victim, aggressor])
        sm.stats.instructions_issued = 5000
        self._interfere(sched, victim, aggressor)
        sched._high_epoch_check()
        assert aggressor.isolated
        victim.retire()
        sched._low_epoch_check()
        assert not aggressor.isolated

    def test_on_no_progress_releases_a_stalled_warp(self):
        victim, aggressor = make_warp(0), make_warp(1)
        sched, sm = self._scheduler(CIAOMode.THROTTLE_ONLY, [victim, aggressor], shared_cache=False)
        sm.stats.instructions_issued = 5000
        self._interfere(sched, victim, aggressor)
        sched._high_epoch_check()
        assert not aggressor.active
        assert sched.on_no_progress(0)
        assert aggressor.active

    def test_select_uses_gto_order(self):
        sched = CIAOScheduler()
        warps = [make_warp(2, assigned_at=5), make_warp(1, assigned_at=0)]
        assert sched.select(warps, 0).wid == 1
        assert sched.select([], 0) is None


class TestCIAOEndToEnd:
    """Run CIAO-C on a real SM with an interference-heavy workload model."""

    def test_ciao_c_detects_and_acts(self):
        from repro.harness.runner import run_benchmark

        result = run_benchmark("SYRK", "ciao-c", scale=0.15, seed=1)
        stats = result.sm0
        assert stats.warps_retired == 48
        assert stats.vta_hits > 0
        # CIAO should have taken at least one action (isolation or stall).
        assert stats.redirected_accesses > 0 or stats.throttle_events > 0

    def test_ciao_p_reaches_shared_cache_on_sm(self):
        """Self-contained SM-level check of the isolation datapath."""
        config = GPUConfig.gtx480()
        memory = MemorySubsystem(MemorySubsystemConfig.gtx480(), num_sms=1)
        params = CIAOParameters(high_epoch_instructions=500, low_epoch_instructions=50)
        scheduler = CIAOScheduler(CIAOMode.PARTITION_ONLY, params)
        sm = StreamingMultiprocessor(0, config, memory, scheduler, enable_shared_cache=True)

        def factory(cta, widx, wid):
            def stream():
                base = 0x100000 * (widx + 1)
                for rep in range(4):
                    for i in range(16):
                        address = base + i * 128
                        yield Instruction.load([address + lane * 4 for lane in range(32)])
                yield Instruction.exit()
            return stream()

        sm.launch(KernelLaunch("conflict", num_ctas=1, warps_per_cta=8, stream_factory=factory))
        # Force one warp's isolation to exercise the redirection datapath the
        # same way the scheduler would after a detection.
        scheduler.memory_arch.isolate(sm.warps[0], triggered_by_wid=1, sm=sm)
        stats = sm.run(2_000_000)
        assert stats.warps_retired == 8
        assert stats.redirected_accesses > 0
        assert sm.shared_cache.stats.accesses > 0
