"""``repro.api.run_batch``: batch execution equals per-request execution.

The contract under test is the one the sweep engine relies on:
``run_batch(requests)`` returns exactly ``[run_benchmark(r) for r in
requests]`` result for result — whatever mix of benchmarks, schedulers,
seeds and backends the batch contains, however requests are grouped per
engine, and however cache hits interleave with executed requests.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from strategies import (
    HAVE_NUMPY,
    result_dicts as _dicts,
    simulation_requests,
    strip_backend as _strip_backend,
)

from repro.api import (
    BatchExecutionError,
    RunConfig,
    SimulationRequest,
    execute,
    run_batch,
)
from repro.harness.cache import ResultCache
from repro.harness.parallel import run_jobs
from repro.harness.runner import run_benchmark

requests_strategy = st.lists(simulation_requests(), min_size=1, max_size=4)


@settings(max_examples=12, deadline=None)
@given(requests=requests_strategy)
def test_run_batch_equals_individual_runs(requests):
    """run_batch(reqs) == [run_benchmark(r) for r in reqs], result for result."""
    batched = run_batch(requests)
    individual = [
        run_benchmark(r.benchmark, r.scheduler, r.run_config, backend=r.backend)
        for r in requests
    ]
    assert _dicts(batched) == _dicts(individual)


@settings(max_examples=8, deadline=None)
@given(
    requests=requests_strategy,
    warm_mask=st.lists(st.booleans(), min_size=4, max_size=4),
)
def test_run_batch_with_cache_hit_interleavings(tmp_path_factory, requests, warm_mask):
    """Cache hits interleaved with fresh executions change nothing.

    A subset of the batch is pre-warmed into a result cache; the batched
    results (mixed hits and misses) must still equal the uncached
    per-request runs, and every miss must have been written back under its
    own request key.
    """
    cache = ResultCache(tmp_path_factory.mktemp("batch-cache"))
    for request, warm in zip(requests, warm_mask):
        if warm:
            cache.put(request.cache_key(), execute(request).to_dict())
    batched = run_batch(requests, cache=cache)
    individual = [execute(r) for r in requests]
    assert _dicts(batched) == _dicts(individual)
    for request in requests:
        assert cache.get(request.cache_key()) is not None


def test_run_batch_mixes_backends_in_one_call():
    """One batch spanning engines returns per-engine-correct results."""
    if not HAVE_NUMPY:
        pytest.skip("vector backend needs numpy")
    config = RunConfig(scale=0.02, seed=2)
    requests = [
        SimulationRequest("ATAX", "gto", config, backend="reference"),
        SimulationRequest("ATAX", "gto", config, backend="vector"),
        SimulationRequest("ATAX", "gto", config, backend="lockstep"),
    ]
    results = run_batch(requests)
    assert [r.backend for r in results] == ["reference", "vector", "lockstep"]
    # Single-SM runs are bit-identical across all three engines.
    payloads = _strip_backend(_dicts(results))
    assert payloads[0] == payloads[1] == payloads[2]


def test_run_batch_backend_argument_fills_unpinned_requests():
    if not HAVE_NUMPY:
        pytest.skip("vector backend needs numpy")
    config = RunConfig(scale=0.02)
    unpinned = SimulationRequest("ATAX", "gto", config)
    pinned = SimulationRequest("ATAX", "gto", config, backend="reference")
    results = run_batch([unpinned, pinned], backend="vector")
    assert results[0].backend == "vector"
    assert results[1].backend == "reference"


def test_run_batch_error_names_the_offending_request():
    good = SimulationRequest("ATAX", "gto", RunConfig(scale=0.02))
    bad = SimulationRequest("NOPE-NOT-A-BENCHMARK", "gto", RunConfig(scale=0.02))
    with pytest.raises(BatchExecutionError) as excinfo:
        run_batch([good, bad])
    assert excinfo.value.request.benchmark_name == "NOPE-NOT-A-BENCHMARK"


def test_run_batch_failure_keeps_already_cached_results(tmp_path):
    """A failing request must not discard the completed work before it."""
    cache = ResultCache(tmp_path / "cache")
    good = SimulationRequest("ATAX", "gto", RunConfig(scale=0.02))
    also_good = SimulationRequest("SYRK", "gto", RunConfig(scale=0.02))
    # Valid names (so the up-front cache-key pass accepts it) but a launch
    # geometry that fails at materialisation time, mid-batch.
    bad = SimulationRequest("ATAX", "gto", RunConfig(scale=0.02, num_ctas=0))
    with pytest.raises(BatchExecutionError):
        run_batch([good, also_good, bad], cache=cache)
    # The successful requests were cached as they completed.
    assert cache.get(good.cache_key()) is not None
    assert cache.get(also_good.cache_key()) is not None


def test_run_jobs_in_process_path_uses_batch_semantics():
    """The sweep engine's worker-less path returns batch-equal results."""
    config = RunConfig(scale=0.02, seed=5)
    jobs = [
        SimulationRequest("ATAX", "gto", config),
        SimulationRequest("SYRK", "gto", config),
        SimulationRequest("ATAX", "lrr", config),
    ]
    outcome = run_jobs(jobs, workers=1, cache=None)
    individual = [execute(job) for job in jobs]
    assert _dicts(outcome.results) == _dicts(individual)
