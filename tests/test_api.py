"""Tests for the typed simulation API (repro.api / repro.backends)."""

import json

import pytest

from repro.api import (
    JOB_SCHEMA,
    REQUEST_SCHEMA,
    RESULT_SCHEMA,
    JobRecord,
    JobState,
    RunConfig,
    SimulationRequest,
    decode_value,
    encode_value,
    execute,
)
from repro.backends import (
    Backend,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.core.config import CIAOParameters
from repro.gpu.config import GPUConfig
from repro.gpu.gpu import SimulationResult
from repro.harness.parallel import SweepJob
from repro.workloads.registry import get_benchmark

SMALL = RunConfig(scale=0.05, seed=1)


class TestRequestRoundTrip:
    def test_default_request_identity(self):
        request = SimulationRequest("ATAX")
        assert SimulationRequest.from_dict(request.to_dict()) == request

    def test_fully_loaded_request_identity(self):
        request = SimulationRequest(
            "SYRK",
            "ciao-c",
            RunConfig(
                scale=0.25,
                seed=7,
                num_ctas=4,
                warps_per_cta=6,
                gpu_config=GPUConfig.gtx480_8way_l1d(num_sms=2),
                dram_bandwidth_scale=2.0,
                ciao_params=CIAOParameters.paper_defaults().with_high_epoch(1000),
                max_cycles=123_456,
            ),
            tag="fig12",
            backend="lockstep",
        )
        assert SimulationRequest.from_dict(request.to_dict()) == request

    def test_spec_benchmark_identity(self):
        request = SimulationRequest(get_benchmark("BICG"), "gto", SMALL)
        restored = SimulationRequest.from_dict(request.to_dict())
        assert restored == request
        assert restored.spec() == get_benchmark("BICG")

    def test_payload_is_json_safe_and_versioned(self):
        payload = SimulationRequest("ATAX", "gto", SMALL).to_dict()
        assert payload["schema"] == REQUEST_SCHEMA
        assert payload["kind"] == "SimulationRequest"
        round_tripped = json.loads(json.dumps(payload))
        assert SimulationRequest.from_dict(round_tripped) == \
            SimulationRequest("ATAX", "gto", SMALL)

    def test_schema_mismatch_rejected(self):
        payload = SimulationRequest("ATAX").to_dict()
        payload["schema"] = REQUEST_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            SimulationRequest.from_dict(payload)

    def test_wrong_kind_rejected(self):
        payload = SimulationRequest("ATAX").to_dict()
        payload["kind"] = "SomethingElse"
        with pytest.raises(ValueError, match="kind"):
            SimulationRequest.from_dict(payload)


class TestResultRoundTrip:
    def test_result_identity_through_json(self):
        result = execute(SimulationRequest("ATAX", "ciao-c", SMALL))
        payload = json.loads(json.dumps(result.to_dict()))
        restored = SimulationResult.from_dict(payload)
        assert restored == result
        assert restored.ipc == result.ipc
        assert payload["schema"] == RESULT_SCHEMA


class TestJobRecordRoundTrip:
    def make_record(self) -> JobRecord:
        request = SimulationRequest("SYRK", "ciao-c", SMALL, backend="lockstep")
        return JobRecord.for_request(
            request,
            job_id="abc123-7",
            cache_key=request.cache_key(),
            submitted_at=12.5,
        )

    def test_queued_record_identity(self):
        record = self.make_record()
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_terminal_record_identity_through_json(self):
        record = self.make_record()
        record.advance(JobState.RUNNING)
        record.advance(JobState.DONE, source="executed", finished_at=14.0)
        payload = json.loads(json.dumps(record.to_dict()))
        restored = JobRecord.from_dict(payload)
        assert restored == record
        assert restored.state is JobState.DONE
        assert restored.source == "executed"
        assert payload["schema"] == JOB_SCHEMA
        assert payload["kind"] == "JobRecord"

    def test_failed_record_keeps_error_text(self):
        record = self.make_record()
        record.advance(JobState.FAILED, error="boom: kernel exploded")
        restored = JobRecord.from_dict(record.to_dict())
        assert restored.state is JobState.FAILED
        assert restored.error == "boom: kernel exploded"

    def test_unknown_schema_rejected(self):
        payload = self.make_record().to_dict()
        payload["schema"] = JOB_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            JobRecord.from_dict(payload)

    def test_wrong_kind_rejected(self):
        payload = self.make_record().to_dict()
        payload["kind"] = "SomethingElse"
        with pytest.raises(ValueError, match="kind"):
            JobRecord.from_dict(payload)

    def test_for_request_captures_identity_fields(self):
        record = self.make_record()
        assert record.benchmark == "SYRK"
        assert record.scheduler == "ciao-c"
        assert record.backend == "lockstep"
        assert record.request_kind == "SimulationRequest"
        assert record.state is JobState.QUEUED


class TestCodec:
    def test_tuples_and_int_keyed_dicts_survive(self):
        value = {"matrix": {1: {2: 3}}, "pair": (1, "a"), "none": None}
        assert decode_value(encode_value(value)) == value

    def test_unregistered_dataclass_rejected(self):
        import dataclasses

        @dataclasses.dataclass
        class NotRegistered:
            x: int = 1

        with pytest.raises(TypeError, match="NotRegistered"):
            encode_value(NotRegistered())


class TestCanonicalize:
    def test_aliases_resolve(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        canonical = SimulationRequest("atax", "ciao_c", SMALL).canonicalize()
        assert canonical.benchmark == "ATAX"
        assert canonical.scheduler == "ciao-c"
        assert canonical.backend == "reference"

    def test_env_backend_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "lockstep")
        assert SimulationRequest("ATAX").canonicalize().backend == "lockstep"

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            SimulationRequest("ATAX", "nope").canonicalize()
        with pytest.raises(KeyError, match="unknown backend"):
            SimulationRequest("ATAX", backend="nope").canonicalize()


class TestCacheKeyCompatibility:
    def test_sweepjob_is_the_request_type(self):
        # The deprecation shim is a true alias: no parallel job type exists.
        assert SweepJob is SimulationRequest

    def test_shim_and_request_share_cache_keys(self):
        shim_key = SweepJob("SYRK", "ciao_c", SMALL).cache_key()
        api_key = SimulationRequest("SYRK", "ciao-c", SMALL).cache_key()
        assert shim_key == api_key

    def test_backend_is_part_of_the_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        base = SimulationRequest("SYRK", "gto", SMALL).cache_key()
        lockstep = SimulationRequest(
            "SYRK", "gto", SMALL, backend="lockstep"
        ).cache_key()
        assert base != lockstep

    def test_default_backend_matches_explicit_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert SimulationRequest("SYRK", "gto", SMALL).cache_key() == \
            SimulationRequest("SYRK", "gto", SMALL, backend="reference").cache_key()


class TestBackendRegistry:
    def test_builtins_registered(self):
        names = backend_names()
        assert "reference" in names and "lockstep" in names

    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_name(None) == "reference"
        monkeypatch.setenv("REPRO_BACKEND", "lockstep")
        assert resolve_backend_name(None) == "lockstep"
        assert resolve_backend_name("reference") == "reference"  # arg wins

    def test_aliases(self):
        assert resolve_backend_name("serialized") == "reference"
        assert resolve_backend_name("lock-step") == "lockstep"

    def test_instances_satisfy_protocol(self):
        assert isinstance(get_backend("reference"), Backend)
        assert isinstance(get_backend("lockstep"), Backend)

    def test_out_of_tree_backend(self, monkeypatch):
        class EchoBackend:
            name = "echo"

            def execute(self, request):
                return SimulationResult(
                    kernel_name=request.benchmark_name,
                    scheduler_name=request.scheduler,
                    backend=self.name,
                )

        register_backend("echo-test", EchoBackend, replace=True)
        result = execute(SimulationRequest("ATAX", backend="echo-test"))
        assert result.backend == "echo"
        assert result.kernel_name == "ATAX"


class TestExecute:
    def test_results_carry_backend_name(self):
        ref = execute(SimulationRequest("ATAX", "gto", SMALL, backend="reference"))
        lock = execute(SimulationRequest("ATAX", "gto", SMALL, backend="lockstep"))
        assert ref.backend == "reference"
        assert lock.backend == "lockstep"

    def test_run_benchmark_backend_argument(self):
        from repro.harness.runner import run_benchmark

        result = run_benchmark("ATAX", "gto", backend="lockstep", scale=0.05, seed=1)
        assert result.backend == "lockstep"

    def test_run_benchmark_env_backend(self, monkeypatch):
        from repro.harness.runner import run_benchmark

        monkeypatch.setenv("REPRO_BACKEND", "lockstep")
        result = run_benchmark("ATAX", "gto", scale=0.05, seed=1)
        assert result.backend == "lockstep"
