"""Tests for the distributed sweep layer (``repro.harness.distributed``).

The end-to-end classes drive real ``WorkerServer`` processes-worth of HTTP
(an event loop per worker on a background thread, the blocking
``WorkerClient`` on this one) and pin the PR's acceptance contract: a
sharded sweep returns results bit-identical to the single-machine sweep —
asserted against the golden-matrix fixture itself — survives a dead worker
by re-dispatching its chunks onto healthy ones, and resumes a partial
distributed manifest without re-running finished jobs.
"""

from __future__ import annotations

import asyncio
import http.server
import json
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.api import (
    BATCH_SCHEMA,
    MultiTenantRequest,
    RunConfig,
    SimulationRequest,
    TenantSpec,
    decode_request_batch,
    encode_request_batch,
    result_digest,
)
from repro.harness.cache import ResultCache
from repro.harness.distributed import (
    DEFAULT_WORKER_PORT,
    OUTCOME_SCHEMA,
    WorkerClient,
    WorkerError,
    WorkerRef,
    WorkerSchemaError,
    WorkerServer,
    load_worker_roster,
    parse_workers_at,
    run_distributed,
)
from repro.harness.faults import corrupt_result
from repro.harness.ledger import read_ledger_report
from repro.harness.manifest import load_manifest
from repro.harness.parallel import (
    JobFailure,
    RetryPolicy,
    ShardPlan,
    SweepError,
    run_jobs,
)
from repro.serve.http import canonical_json
from repro.version import __version__

SMALL = RunConfig(scale=0.02, seed=1)

GOLDEN = json.loads(
    (Path(__file__).parent / "goldens" / "golden_stats.json").read_text()
)


def small_jobs(n: int = 4) -> list[SimulationRequest]:
    matrix = [("ATAX", "gto"), ("ATAX", "ccws"), ("BICG", "gto"), ("MVT", "lrr")]
    return [
        SimulationRequest(bench, sched, SMALL) for bench, sched in matrix[:n]
    ]


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------
class TestShardPlan:
    def test_partition_is_deterministic_and_complete(self):
        keys = [f"{i:032x}" for i in range(17)]
        plan = ShardPlan.build(keys, 4)
        again = ShardPlan.build(list(keys), 4)
        assert plan == again
        covered = sorted(p for shard in plan.shards for p in shard)
        assert covered == list(range(len(keys)))

    def test_assignment_follows_key_not_position(self):
        """Membership is a pure function of the key: reordering the job
        list moves positions but never a key's shard."""
        keys = [f"{i * 7919:032x}" for i in range(12)]
        plan = ShardPlan.build(keys, 3)
        shard_of = {}
        for shard_index, positions in enumerate(plan.shards):
            for p in positions:
                shard_of[keys[p]] = shard_index
        shuffled = list(reversed(keys))
        replan = ShardPlan.build(shuffled, 3)
        for shard_index, positions in enumerate(replan.shards):
            for p in positions:
                assert shard_of[shuffled[p]] == shard_index

    def test_keyless_jobs_fall_back_to_position(self):
        plan = ShardPlan.build([None, None, None], 2)
        assert sorted(p for s in plan.shards for p in s) == [0, 1, 2]

    def test_chunks_bound_size_and_preserve_shards(self):
        keys = [f"{i:032x}" for i in range(10)]
        plan = ShardPlan.build(keys, 2)
        chunks = plan.chunks(3)
        assert all(len(positions) <= 3 for _, positions in chunks)
        rebuilt: dict[int, list[int]] = {}
        for shard_index, positions in chunks:
            rebuilt.setdefault(shard_index, []).extend(positions)
        assert {
            shard_index: tuple(positions)
            for shard_index, positions in rebuilt.items()
        } == {i: s for i, s in enumerate(plan.shards) if s}

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardPlan.build(["a" * 32], 1).chunks(0)


# ---------------------------------------------------------------------------
# Rosters
# ---------------------------------------------------------------------------
class TestRosters:
    def test_parse_workers_at(self):
        refs = parse_workers_at("localhost:9001, http://10.0.0.2:9002/")
        assert refs == (
            WorkerRef("localhost", 9001), WorkerRef("10.0.0.2", 9002)
        )
        assert refs[0].address == "http://localhost:9001"

    @pytest.mark.parametrize("bad", ["nohost", "h:0", "h:-2", "h:abc",
                                     "h:70000", "", ",,"])
    def test_parse_workers_at_rejects(self, bad):
        with pytest.raises(ValueError, match="--workers-at"):
            parse_workers_at(bad)

    def test_roster_file_dict_and_list_forms(self, tmp_path):
        path = tmp_path / "shards.json"
        path.write_text('{"workers": ["a:1", "b:2"]}')
        assert load_worker_roster(path) == (WorkerRef("a", 1), WorkerRef("b", 2))
        path.write_text('["c:3"]')
        assert load_worker_roster(path) == (WorkerRef("c", 3),)

    def test_roster_file_errors_name_the_file(self, tmp_path):
        path = tmp_path / "shards.json"
        with pytest.raises(ValueError, match="shards.json"):
            load_worker_roster(path)  # missing
        path.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_worker_roster(path)
        path.write_text('{"workers": [42]}')
        with pytest.raises(ValueError, match="host:port"):
            load_worker_roster(path)
        path.write_text('{"workers": ["a:bad"]}')
        with pytest.raises(ValueError, match="positive integer"):
            load_worker_roster(path)


# ---------------------------------------------------------------------------
# Wire forms
# ---------------------------------------------------------------------------
class TestWireForms:
    def test_request_batch_round_trip(self):
        jobs = [
            SimulationRequest("ATAX", "gto", SMALL),
            MultiTenantRequest(
                tenants=(
                    TenantSpec("a", "ATAX", "gto"),
                    TenantSpec("b", "BICG", "ccws"),
                ),
                run_config=SMALL,
            ),
        ]
        decoded = decode_request_batch(
            json.loads(canonical_json(encode_request_batch(jobs)))
        )
        assert decoded == jobs

    def test_request_batch_rejects_drift(self):
        good = encode_request_batch([SimulationRequest("ATAX", "gto", SMALL)])
        with pytest.raises(ValueError):
            decode_request_batch({**good, "schema": 99})
        with pytest.raises(ValueError):
            decode_request_batch({**good, "kind": "Nope"})
        with pytest.raises(ValueError):
            decode_request_batch({**good, "requests": "nope"})

    def test_retry_policy_round_trip_and_drift(self):
        policy = RetryPolicy(max_attempts=5, timeout_seconds=2.0, seed=9)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(ValueError):
            RetryPolicy.from_dict({**policy.to_dict(), "schema": 99})
        payload = policy.to_dict()
        payload["data"] = {**payload["data"], "surprise": 1}
        with pytest.raises(ValueError):
            RetryPolicy.from_dict(payload)


# ---------------------------------------------------------------------------
# Live workers (in-process event loops, real sockets)
# ---------------------------------------------------------------------------
class WorkerHandle:
    """A live ``WorkerServer`` on a background event-loop thread."""

    def __init__(self, **kwargs):
        kwargs.setdefault("host", "127.0.0.1")
        kwargs.setdefault("port", 0)
        kwargs.setdefault("cache", None)
        self.server = WorkerServer(**kwargs)
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(timeout=15), "worker failed to start"

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_until_complete(self.server.wait_closed())
        self._loop.close()

    @property
    def ref(self) -> WorkerRef:
        return WorkerRef("127.0.0.1", self.server.port)

    def close(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.begin_shutdown)
            self._thread.join(timeout=15)


class DudWorker:
    """A roster entry that accepts connections and slams them shut.

    Deterministically simulates a crashed / lost worker without timing
    races: every dispatch to it fails immediately with a connection error.
    """

    def __init__(self):
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            conn.close()

    @property
    def ref(self) -> WorkerRef:
        return WorkerRef("127.0.0.1", self.port)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class DriftWorker:
    """An endpoint whose ``/healthz`` speaks for an incompatible worker.

    Deterministically simulates a roster entry running a different repro
    version (or not being a worker at all) — the coordinator must refuse it
    during the pre-dispatch probe with a one-line explanation.
    """

    def __init__(self, **overrides):
        payload = canonical_json({
            "status": "ok",
            "kind": "worker",
            "busy": False,
            "workers": 1,
            "version": "0.0.0",
            "batch_schema": 99,
            "outcome_schema": OUTCOME_SCHEMA,
            **overrides,
        })

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args):
                pass

        self._httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()

    @property
    def ref(self) -> WorkerRef:
        return WorkerRef("127.0.0.1", self.port)

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()


@pytest.fixture()
def worker():
    handle = WorkerHandle()
    yield handle
    handle.close()


@pytest.fixture()
def pair():
    handles = [WorkerHandle(), WorkerHandle()]
    yield handles
    for handle in handles:
        handle.close()


class TestWorkerHttp:
    def test_healthz(self, worker):
        answer = WorkerClient(worker.ref).healthz()
        assert answer["status"] == "ok"
        assert answer["kind"] == "worker"

    def test_healthz_advertises_wire_schemas(self, worker):
        """The coordinator's drift check reads these three fields."""
        answer = WorkerClient(worker.ref).healthz()
        assert answer["batch_schema"] == BATCH_SCHEMA
        assert answer["outcome_schema"] == OUTCOME_SCHEMA
        assert answer["version"] == __version__

    def test_done_rows_carry_their_result_digest(self, worker):
        answer = WorkerClient(worker.ref).run_batch(small_jobs(2))
        for row in answer["outcomes"]:
            assert row["status"] == "done"
            assert row["digest"] == result_digest(row["result"])

    def test_unknown_path_and_wrong_method(self, worker):
        client = WorkerClient(worker.ref)
        with pytest.raises(WorkerError, match="404"):
            client._request("GET", "/nope")
        with pytest.raises(WorkerError, match="405"):
            client._request("GET", "/batch")

    def test_bad_batch_payload_is_400(self, worker):
        client = WorkerClient(worker.ref)
        with pytest.raises(WorkerError, match="400"):
            client._request("POST", "/batch", b"{not json")
        with pytest.raises(WorkerError, match="400"):
            client._request("POST", "/batch", canonical_json({"kind": "Nope"}))

    def test_batch_executes_and_reports(self, worker):
        jobs = small_jobs(2)
        answer = WorkerClient(worker.ref).run_batch(jobs)
        assert [row["status"] for row in answer["outcomes"]] == ["done", "done"]
        assert answer["stats"]["executed"] == 2
        assert answer["ledger_row"]["jobs"] == 2
        assert "keys_digest" in answer["ledger_row"]
        for job, row in zip(jobs, answer["outcomes"]):
            direct = run_jobs([job], cache=None).results[0]
            assert canonical_json(row["result"]) == canonical_json(direct.to_dict())

    def test_unknown_benchmark_is_failure_row_not_500(self, worker):
        answer = WorkerClient(worker.ref).run_batch(
            [SimulationRequest("NOPE", "gto", SMALL)]
        )
        (row,) = answer["outcomes"]
        assert row["status"] == "failed" and row["result"] is None
        assert "NOPE" in row["error"]


class TestRunDistributed:
    def test_matches_local_run_and_streams_manifest(self, pair, tmp_path):
        jobs = small_jobs()
        manifest = tmp_path / "manifest.jsonl"
        outcome = run_distributed(
            jobs, [h.ref for h in pair], cache=None,
            manifest=manifest, chunk_size=1,
        )
        local = run_jobs(jobs, cache=None)
        for (_, got), (_, want) in zip(outcome, local):
            assert canonical_json(got.to_dict()) == canonical_json(want.to_dict())
        entries = load_manifest(manifest)
        assert len(entries) == len(jobs)
        assert all(e.status == "done" for e in entries.values())
        # Both workers actually participated (keys spread over the roster).
        assert sum(h.server.batches for h in pair) >= 2

    def test_resume_serves_done_jobs_from_cache(self, pair, tmp_path):
        jobs = small_jobs()
        cache = ResultCache(tmp_path / "cache")
        manifest = tmp_path / "manifest.jsonl"
        first = run_distributed(
            jobs, [h.ref for h in pair], cache=cache, manifest=manifest
        )
        assert first.stats.executed == len(jobs)
        # A second coordinator — any machine with the same cache dir —
        # resumes without dispatching a single job.
        again = run_distributed(
            jobs, [h.ref for h in pair], cache=cache, manifest=manifest
        )
        assert again.stats.executed == 0
        assert again.stats.cache_hits == len(jobs)
        for (_, got), (_, want) in zip(again, first):
            assert canonical_json(got.to_dict()) == canonical_json(want.to_dict())

    def test_partial_local_sweep_resumes_distributed(self, pair, tmp_path):
        """A manifest begun single-machine hands over to the cluster."""
        jobs = small_jobs()
        cache = ResultCache(tmp_path / "cache")
        manifest = tmp_path / "manifest.jsonl"
        run_jobs(jobs[:2], cache=cache, manifest=manifest, workers=1)
        outcome = run_distributed(
            jobs, [h.ref for h in pair], cache=cache, manifest=manifest
        )
        assert outcome.stats.cache_hits == 2
        assert outcome.stats.executed == 2
        assert len(load_manifest(manifest)) == len(jobs)

    def test_lost_worker_redispatches_onto_healthy_one(self, worker, tmp_path):
        dud = DudWorker()
        try:
            jobs = small_jobs()
            manifest = tmp_path / "manifest.jsonl"
            outcome = run_distributed(
                jobs, [dud.ref, worker.ref], cache=None,
                manifest=manifest, chunk_size=1,
                retry=RetryPolicy(max_attempts=3, backoff_base=0.001),
            )
            assert outcome.ok
            assert outcome.stats.retried >= 1
            local = run_jobs(jobs, cache=None)
            for (_, got), (_, want) in zip(outcome, local):
                assert canonical_json(got.to_dict()) == canonical_json(want.to_dict())
            entries = load_manifest(manifest)
            assert all(e.status == "done" for e in entries.values())
            # The re-dispatch is visible in the manifest: jobs sharded to
            # the dead worker settled on a later attempt.
            assert max(e.attempts for e in entries.values()) >= 2
        finally:
            dud.close()

    def test_all_workers_dead_skip_mode(self, tmp_path):
        dud = DudWorker()
        try:
            jobs = small_jobs(2)
            outcome = run_distributed(
                jobs, [dud.ref], cache=None, on_error="skip",
                retry=RetryPolicy(max_attempts=2, backoff_base=0.001),
            )
            assert not outcome.ok
            assert all(isinstance(r, JobFailure) for r in outcome.results)
            assert outcome.stats.failed == len(jobs)
        finally:
            dud.close()

    def test_all_workers_dead_raise_mode(self):
        dud = DudWorker()
        try:
            with pytest.raises(SweepError):
                run_distributed(
                    small_jobs(1), [dud.ref], cache=None,
                    retry=RetryPolicy(max_attempts=2, backoff_base=0.001),
                )
        finally:
            dud.close()

    def test_empty_roster_rejected(self):
        with pytest.raises(ValueError, match="at least one worker"):
            run_distributed(small_jobs(1), [], cache=None)

    def test_audit_rate_validated(self):
        with pytest.raises(ValueError, match="audit_rate"):
            run_distributed(
                small_jobs(1), [WorkerRef("127.0.0.1", 1)], cache=None,
                audit_rate=1.5,
            )

    def test_worker_restarted_mid_sweep_rejoins_via_breaker_probe(self):
        """A roster entry that is down when the sweep starts is not written
        off: its circuit breaker keeps probing ``/healthz`` with seeded
        backoff, and the worker joins the fleet the moment it comes up.
        (The old permanent ``dead`` set failed this sweep outright.)"""
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        box: dict[str, WorkerHandle] = {}

        def bring_up():
            time.sleep(0.4)
            box["handle"] = WorkerHandle(port=port)

        starter = threading.Thread(target=bring_up, daemon=True)
        starter.start()
        try:
            jobs = small_jobs(2)
            outcome = run_distributed(
                jobs, [WorkerRef("127.0.0.1", port)], cache=None,
                retry=RetryPolicy(max_attempts=20, backoff_base=0.05),
            )
            assert outcome.ok
            assert outcome.stats.executed == len(jobs)
            local = run_jobs(jobs, cache=None)
            for (_, got), (_, want) in zip(outcome, local):
                assert canonical_json(got.to_dict()) == canonical_json(want.to_dict())
        finally:
            starter.join()
            if "handle" in box:
                box["handle"].close()


class TestSchemaDrift:
    def test_drifted_worker_is_refused_with_a_clear_error(self):
        drift = DriftWorker(batch_schema=99)
        try:
            with pytest.raises(WorkerSchemaError, match="batch schema 99"):
                run_distributed(small_jobs(1), [drift.ref], cache=None)
        finally:
            drift.close()

    def test_non_worker_endpoint_is_refused(self):
        drift = DriftWorker(kind="serve")
        try:
            with pytest.raises(WorkerSchemaError, match="not a repro worker"):
                run_distributed(small_jobs(1), [drift.ref], cache=None)
        finally:
            drift.close()

    def test_schema_error_is_a_usage_error(self):
        # The CLI maps ValueError to a one-line `error:` + exit 2.
        assert issubclass(WorkerSchemaError, ValueError)


class TestTransportIntegrity:
    def test_payload_corrupted_in_transit_is_rejected_not_merged(
        self, worker, monkeypatch
    ):
        """A done row whose result no longer matches its shipped digest —
        bit rot on the wire, a proxy mangling the body — must never merge
        into the sweep."""
        real = WorkerClient.run_batch

        def tampering(self, requests, **kwargs):
            answer = real(self, requests, **kwargs)
            row = answer["outcomes"][0]
            if row["status"] == "done":
                row["result"] = {**row["result"], "tampered": 1}
            return answer

        monkeypatch.setattr(WorkerClient, "run_batch", tampering)
        jobs = small_jobs(2)
        outcome = run_distributed(
            jobs, [worker.ref], cache=None, on_error="skip", chunk_size=2,
        )
        assert outcome.stats.corrupt == 1
        failures = [r for r in outcome.results if isinstance(r, JobFailure)]
        assert len(failures) == 1
        assert failures[0].error_type == "IntegrityError"
        assert "digest mismatch" in failures[0].error


class TestAudits:
    """Seeded local re-execution of worker-returned results."""

    def test_liar_worker_is_caught_and_golden_matrix_stays_bit_identical(
        self, monkeypatch, tmp_path
    ):
        """The acceptance gate: one roster worker deliberately returns
        digest-consistent but *wrong* results (its lies carry matching
        digests, so only re-execution can expose them).  At audit rate 0.25
        the sweep still completes bit-identical to the golden fixtures,
        with the mismatch recorded in the manifest and the ledger."""
        meta = GOLDEN["_meta"]
        jobs, want = [], []
        for key, envelope in sorted(GOLDEN["entries"].items()):
            bench, sched, backend = key.split("/")
            jobs.append(SimulationRequest(
                bench, sched,
                RunConfig(scale=meta["scale"], seed=meta["seed"]),
                backend=backend,
            ))
            want.append(canonical_json(envelope))

        # The liar is the roster worker created with ``workers=2`` — its
        # batches run through this wrapper, which corrupts every result
        # *before* the worker computes the shipped digest (so transport
        # checks pass and only an audit can catch it).
        real_run_jobs = run_jobs

        def lying_run_jobs(batch, **kwargs):
            outcome = real_run_jobs(batch, **kwargs)
            if kwargs.get("workers") == 2:
                for i, result in enumerate(outcome.results):
                    if result is not None and not isinstance(result, JobFailure):
                        outcome.results[i] = corrupt_result(
                            result, seed=1234, fault_key=f"liar:{i}"
                        )
            return outcome

        monkeypatch.setattr("repro.harness.distributed.run_jobs", lying_run_jobs)
        ledger = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", "1")
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(ledger))
        honest, liar = WorkerHandle(), WorkerHandle(workers=2)
        manifest = tmp_path / "manifest.jsonl"
        try:
            outcome = run_distributed(
                jobs, [honest.ref, liar.ref], cache=None,
                manifest=manifest, audit_rate=0.25,
                retry=RetryPolicy(max_attempts=10, backoff_base=0.01),
            )
            assert liar.server.batches >= 1  # the liar really participated
        finally:
            honest.close()
            liar.close()
        assert outcome.ok
        got = [canonical_json(result.to_dict()) for _, result in outcome]
        assert got == want
        assert outcome.stats.audited >= 1
        assert outcome.stats.audit_failures >= 1
        assert outcome.stats.retried >= 1  # the discarded chunk re-dispatched
        # The manifest shows the audit-triggered re-dispatch: a failed row
        # naming the mismatch, and a final done row for every job.
        raw_rows = [
            json.loads(line)
            for line in manifest.read_text().splitlines() if line.strip()
        ]
        assert any(
            "audit mismatch" in (row.get("error") or "") for row in raw_rows
        )
        entries = load_manifest(manifest)
        assert len(entries) == len(jobs)
        assert all(e.status == "done" for e in entries.values())
        # And the ledger carries the forensic audit row.
        rows, skipped = read_ledger_report(ledger)
        assert skipped == 0
        audit_rows = [r for r in rows if r.get("kind") == "audit"]
        assert audit_rows and audit_rows[0]["verdict"] == "mismatch"

    def test_audit_failure_rolls_back_everything_the_worker_contributed(
        self, monkeypatch, tmp_path
    ):
        """A worker caught lying once cannot leave earlier answers behind:
        chunks it already merged are un-merged, their cache entries
        quarantined, and the jobs re-run."""
        calls = {"n": 0}
        real_run_jobs = run_jobs

        def lies_on_second_batch(batch, **kwargs):
            outcome = real_run_jobs(batch, **kwargs)
            calls["n"] += 1
            if calls["n"] == 2:
                for i, result in enumerate(outcome.results):
                    if result is not None and not isinstance(result, JobFailure):
                        outcome.results[i] = corrupt_result(
                            result, seed=99, fault_key=f"liar:{i}"
                        )
            return outcome

        monkeypatch.setattr(
            "repro.harness.distributed.run_jobs", lies_on_second_batch
        )
        jobs = small_jobs(4)
        cache = ResultCache(
            tmp_path / "cache", quarantine=tmp_path / "quarantine"
        )
        handle = WorkerHandle()
        try:
            outcome = run_distributed(
                jobs, [handle.ref], cache=cache, chunk_size=1,
                audit_rate=1.0,
                retry=RetryPolicy(max_attempts=10, backoff_base=0.01),
            )
        finally:
            handle.close()
        assert outcome.ok
        assert outcome.stats.audit_failures == 1
        # The first (honest, already merged) batch was quarantined on the
        # second batch's mismatch, then re-executed and re-cached.
        assert cache.stats.quarantined >= 1
        assert list((tmp_path / "quarantine").glob("*.quarantined"))
        local = run_jobs(jobs, cache=None)
        for (_, got), (_, want) in zip(outcome, local):
            assert canonical_json(got.to_dict()) == canonical_json(want.to_dict())


class TestGoldenMatrixSharded:
    def test_sharded_sweep_is_bit_identical_to_single_machine(self, pair):
        """The acceptance gate: the full 26-entry golden matrix, sharded
        across two workers, reproduces the single-machine fixture results
        bit for bit — whatever the shard boundaries did to execution
        order or placement."""
        meta = GOLDEN["_meta"]
        jobs, want = [], []
        for key, envelope in sorted(GOLDEN["entries"].items()):
            bench, sched, backend = key.split("/")
            jobs.append(SimulationRequest(
                bench, sched,
                RunConfig(scale=meta["scale"], seed=meta["seed"]),
                backend=backend,
            ))
            want.append(canonical_json(envelope))
        outcome = run_distributed(jobs, [h.ref for h in pair], cache=None)
        assert outcome.ok
        got = [canonical_json(result.to_dict()) for _, result in outcome]
        assert got == want
        assert outcome.stats.executed == len(jobs) == 26
