"""Unit tests for the L1D / L2 cache model."""

import pytest

from repro.mem.cache import AccessOutcome, Cache, CacheConfig, WritePolicy


@pytest.fixture
def l1d():
    return Cache(CacheConfig.l1d_gtx480())


@pytest.fixture
def small_cache():
    # 4 sets x 2 ways, linear indexing: easy to reason about conflicts.
    return Cache(
        CacheConfig(
            name="tiny",
            size_bytes=8 * 128,
            associativity=2,
            set_hash="linear",
            write_policy=WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
        )
    )


class TestGeometry:
    def test_l1d_table1_geometry(self, l1d):
        assert l1d.config.size_bytes == 16 * 1024
        assert l1d.config.num_sets == 32
        assert l1d.config.associativity == 4

    def test_l2_table1_geometry(self):
        l2 = Cache(CacheConfig.l2_gtx480())
        assert l2.config.size_bytes == 768 * 1024
        assert l2.config.num_sets == 768
        assert l2.config.associativity == 8
        assert l2.config.write_policy is WritePolicy.WRITE_BACK_WRITE_ALLOCATE

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=1000, associativity=3).validate()


class TestReadPath:
    def test_cold_miss_then_hit_after_fill(self, l1d):
        result = l1d.access(0x1000, wid=0, is_write=False, now=0)
        assert result.outcome is AccessOutcome.MISS
        # Before the fill returns, another access observes a reserved hit.
        result2 = l1d.access(0x1000, wid=1, is_write=False, now=1)
        assert result2.outcome is AccessOutcome.HIT_RESERVED
        l1d.fill(result.block, now=10)
        result3 = l1d.access(0x1000, wid=0, is_write=False, now=11)
        assert result3.outcome is AccessOutcome.HIT

    def test_miss_reports_eviction_owner(self, small_cache):
        # Fill both ways of set 0 (blocks 0 and 4 map to set 0 of 4 sets).
        a = small_cache.access(0 * 128, wid=1, is_write=False, now=0)
        small_cache.fill(a.block, 1)
        b = small_cache.access(4 * 128, wid=2, is_write=False, now=2)
        small_cache.fill(b.block, 3)
        result = small_cache.access(8 * 128, wid=3, is_write=False, now=4)
        assert result.outcome is AccessOutcome.MISS
        assert result.eviction is not None
        assert result.eviction.owner_wid in (1, 2)
        assert result.eviction.evictor_wid == 3

    def test_reservation_fail_when_set_full_of_pending_misses(self, small_cache):
        small_cache.access(0 * 128, wid=0, is_write=False, now=0)
        small_cache.access(4 * 128, wid=0, is_write=False, now=0)
        result = small_cache.access(8 * 128, wid=0, is_write=False, now=0)
        assert result.outcome is AccessOutcome.RESERVATION_FAIL

    def test_eviction_hook_invoked(self):
        seen = []
        cache = Cache(
            CacheConfig(name="t", size_bytes=2 * 128, associativity=1, set_hash="linear"),
            eviction_hook=seen.append,
        )
        first = cache.access(0, wid=0, is_write=False, now=0)
        cache.fill(first.block, 1)
        cache.access(2 * 128, wid=1, is_write=False, now=2)  # same set, evicts
        assert len(seen) == 1
        assert seen[0].owner_wid == 0


class TestWritePath:
    def test_write_through_no_allocate_miss(self, l1d):
        result = l1d.access(0x2000, wid=0, is_write=True, now=0)
        assert result.outcome is AccessOutcome.MISS_NO_ALLOCATE
        assert not l1d.contains(0x2000)

    def test_write_hit_updates_line(self, l1d):
        miss = l1d.access(0x3000, wid=0, is_write=False, now=0)
        l1d.fill(miss.block, 1)
        result = l1d.access(0x3000, wid=0, is_write=True, now=2)
        assert result.outcome is AccessOutcome.HIT

    def test_write_allocate_l2(self):
        l2 = Cache(CacheConfig.l2_gtx480())
        result = l2.access(0x4000, wid=0, is_write=True, now=0)
        assert result.outcome is AccessOutcome.MISS
        l2.fill(result.block, 1)
        assert l2.contains(0x4000)

    def test_dirty_victim_produces_writeback(self):
        l2 = Cache(
            CacheConfig(
                name="l2s",
                size_bytes=2 * 128,
                associativity=1,
                set_hash="linear",
                write_policy=WritePolicy.WRITE_BACK_WRITE_ALLOCATE,
            )
        )
        first = l2.access(0, wid=0, is_write=True, now=0)
        l2.fill(first.block, 1)
        result = l2.access(2 * 128, wid=0, is_write=False, now=2)
        assert result.writeback_block == first.block


class TestStatsAndHelpers:
    def test_hit_rate_accounting(self, l1d):
        miss = l1d.access(0x5000, wid=0, is_write=False, now=0)
        l1d.fill(miss.block, 1)
        l1d.access(0x5000, wid=0, is_write=False, now=2)
        assert l1d.stats.hits == 1
        assert l1d.stats.misses == 1
        assert l1d.stats.hit_rate == pytest.approx(0.5)

    def test_probe_owner_and_invalidate(self, l1d):
        miss = l1d.access(0x6000, wid=7, is_write=False, now=0)
        l1d.fill(miss.block, 1)
        assert l1d.probe_owner(0x6000) == 7
        assert l1d.invalidate(0x6000)
        assert l1d.probe_owner(0x6000) is None

    def test_flush(self, l1d):
        miss = l1d.access(0x7000, wid=0, is_write=False, now=0)
        l1d.fill(miss.block, 1)
        l1d.flush()
        assert not l1d.contains(0x7000)

    def test_occupancy_fraction(self, small_cache):
        assert small_cache.occupancy() == 0.0
        r = small_cache.access(0, wid=0, is_write=False, now=0)
        small_cache.fill(r.block, 1)
        assert 0 < small_cache.occupancy() <= 1.0
