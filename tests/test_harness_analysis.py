"""Tests for the harness (runner, reporting, experiments) and the analysis models."""

import pytest

from repro.analysis.area import GTX480_DIE_MM2, AreaModel
from repro.analysis.metrics import (
    class_geomeans,
    normalized_ipc_table,
    speedup_summary,
)
from repro.analysis.power import PowerModel
from repro.harness.reporting import format_table, geometric_mean, normalize_to
from repro.harness.runner import RunConfig, run_benchmark, run_many
from repro.harness import experiments


SMALL = dict(scale=0.06, seed=1)


class TestReporting:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([2.0]) == pytest.approx(2.0)

    def test_normalize_to(self):
        values = {"gto": 2.0, "ciao": 4.0}
        normalized = normalize_to(values, "gto")
        assert normalized == {"gto": 1.0, "ciao": 2.0}
        assert normalize_to({"a": 0.0}, "a") == {"a": 0.0}

    def test_format_table(self):
        rows = [{"name": "x", "value": 1.5}, {"name": "y", "value": 2.0}]
        text = format_table(rows)
        assert "name" in text and "1.500" in text
        assert format_table([]) == "(empty table)"


class TestRunner:
    def test_run_benchmark_returns_result(self):
        result = run_benchmark("SYRK", "gto", **SMALL)
        assert result.kernel_name == "SYRK"
        assert result.scheduler_name == "gto"
        assert result.ipc > 0
        assert result.sm0.instructions_issued > 0

    def test_determinism(self):
        a = run_benchmark("SYRK", "ciao-c", **SMALL)
        b = run_benchmark("SYRK", "ciao-c", **SMALL)
        assert a.ipc == pytest.approx(b.ipc)
        assert a.sm0.cycles == b.sm0.cycles
        assert a.sm0.vta_hits == b.sm0.vta_hits

    def test_best_swl_uses_profiled_limit(self):
        result = run_benchmark("ATAX", "best-swl", **SMALL)
        # ATAX's Nwrp is 2: the mean active warp count must stay close to it.
        assert result.sm0.active_warp_series.mean() <= 4

    def test_ciao_p_enables_shared_cache(self):
        result = run_benchmark("SYRK", "ciao-p", **SMALL)
        assert result.sm0.shared_cache_accesses >= 0
        gto = run_benchmark("SYRK", "gto", **SMALL)
        assert gto.sm0.shared_cache_accesses == 0

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError):
            run_benchmark("SYRK", "gto", bogus=1)

    def test_run_many_grid(self):
        grid = run_many(["SYRK"], ["gto", "ciao-c"], **SMALL)
        assert set(grid["SYRK"]) == {"gto", "ciao-c"}

    def test_run_config_dataclass(self):
        config = RunConfig(scale=0.06)
        result = run_benchmark("WC", "gto", config)
        assert result.ipc > 0


class TestMetrics:
    @pytest.fixture(scope="class")
    def grid(self):
        return run_many(["SYRK", "Gaussian"], ["gto", "ciao-c"], scale=0.06, seed=1)

    def test_normalized_table(self, grid):
        table = normalized_ipc_table(grid)
        assert table["SYRK"]["gto"] == pytest.approx(1.0)
        assert table["Gaussian"]["ciao-c"] > 0

    def test_speedup_summary(self, grid):
        summary = speedup_summary(grid)
        assert summary["gto"] == pytest.approx(1.0)
        assert "ciao-c" in summary

    def test_class_geomeans(self, grid):
        by_class = class_geomeans(grid)
        assert "SWS" in by_class and "CI" in by_class


class TestExperimentsSmall:
    def test_table1(self):
        table = experiments.table1_configuration()
        assert table["l1d_kb"] == 16 and table["l2_kb"] == 768

    def test_table2(self):
        assert len(experiments.table2_benchmarks()) == 21

    def test_fig1_interference_matrix(self):
        data = experiments.fig1_interference_matrix(scale=0.08)
        assert data["benchmark"] == "Backprop"
        assert "matrix" in data

    def test_fig8_small_subset(self):
        data = experiments.fig8_main_comparison(
            benchmarks=["SYRK"], schedulers=("gto", "ciao-c"), scale=0.06
        )
        assert data["normalized_ipc"]["SYRK"]["gto"] == pytest.approx(1.0)
        assert "geomean_speedup" in data

    def test_fig9_timeseries_shape(self):
        data = experiments.fig9_timeseries(benchmarks=("ATAX",), schedulers=("gto",), scale=0.08)
        series = data["ATAX"]["gto"]
        assert set(series) == {"ipc", "active_warps", "interference"}

    def test_overhead_analysis_claims(self):
        data = experiments.overhead_analysis(scale=0.06)
        assert data["claims"]["area_below_2_percent"]
        assert data["claims"]["power_below_1_percent_of_tdp"]


class TestAreaPowerModels:
    def test_area_matches_paper_anchor(self):
        report = AreaModel().report()
        assert report["vta_mm2"] == pytest.approx(0.65, rel=0.01)
        assert report["fraction_of_die"] < 0.02

    def test_area_scales_with_sms(self):
        one = AreaModel(num_sms=1).total_area()
        fifteen = AreaModel(num_sms=15).total_area()
        assert fifteen == pytest.approx(15 * one, rel=1e-6)
        assert AreaModel().fraction_of_die(GTX480_DIE_MM2) > 0

    def test_power_anchor_and_scaling(self):
        model = PowerModel()
        default = model.estimate()
        assert default["total_mw"] == pytest.approx(79.0, rel=0.01)
        doubled = model.estimate(vta_events_per_kcycle=40.0)
        assert doubled["total_mw"] > default["total_mw"]

    def test_power_from_stats(self):
        result = run_benchmark("SYRK", "ciao-c", **SMALL)
        stats = result.sm0
        report = PowerModel().from_stats(stats, stats.cycles)
        assert report["total_mw"] >= 0
        assert report["fraction_of_tdp"] < 0.01
