"""Golden-stats regression fixtures: the cycle engine is pinned bit-for-bit.

``tests/goldens/golden_stats.json`` stores the full ``SimulationResult``
(every counter, stall breakdown, time series and interference matrix) for a
small benchmark matrix across every registered scheduler and both in-tree
backends.  ``tests/goldens/golden_tenants.json`` does the same for the
multi-tenant lock-step driver: pinned co-location requests (mixed
schedulers, asymmetric partitions, shared and private address spaces) and
their full results including the per-tenant breakdown.  These tests
recompute each entry and compare exactly, so any perf work on the hot path
that changes semantics — however subtly — fails loudly instead of silently
drifting the paper's figures.

Regenerate (only for deliberate semantic changes) with::

    PYTHONPATH=src python scripts/regen_goldens.py
"""

import json
from pathlib import Path

import pytest

from repro.api import (
    RESULT_SCHEMA,
    MultiTenantRequest,
    RunConfig,
    SimulationRequest,
    execute,
)
from repro.sched.registry import scheduler_names

GOLDEN_PATH = Path(__file__).parent / "goldens" / "golden_stats.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

TENANT_GOLDEN_PATH = Path(__file__).parent / "goldens" / "golden_tenants.json"
TENANT_GOLDEN = json.loads(TENANT_GOLDEN_PATH.read_text())


def test_regen_script_refuses_vector_source(monkeypatch):
    """Goldens are sourced from reference semantics, never from vector.

    The vector engine's contract is to *match* these fixtures, so
    regenerating them from it would make the parity gate circular; the
    regen script refuses outright.
    """
    import importlib.util

    script = Path(__file__).parent.parent / "scripts" / "regen_goldens.py"
    spec = importlib.util.spec_from_file_location("_regen_goldens_test", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setenv("REPRO_BACKEND", "vector")
    with pytest.raises(SystemExit, match="vector"):
        module._refuse_vector_source()
    monkeypatch.delenv("REPRO_BACKEND")
    module._refuse_vector_source()  # the reference default is allowed


def test_golden_file_metadata():
    meta = GOLDEN["_meta"]
    assert meta["result_schema"] == RESULT_SCHEMA
    assert meta["scale"] > 0 and isinstance(meta["seed"], int)
    assert "regen_goldens.py" in meta["regen"]


def test_golden_matrix_covers_every_scheduler_and_backend():
    """The fixture pins every registered scheduler on both backends."""
    covered = {tuple(key.split("/")[1:]) for key in GOLDEN["entries"]}
    for scheduler in scheduler_names():
        for backend in ("reference", "lockstep"):
            assert (scheduler, backend) in covered, (scheduler, backend)


def test_tenant_golden_file_metadata():
    meta = TENANT_GOLDEN["_meta"]
    assert meta["result_schema"] == RESULT_SCHEMA
    assert meta["scale"] > 0 and isinstance(meta["seed"], int)
    assert len(TENANT_GOLDEN["entries"]) >= 4


def test_tenant_golden_matrix_is_diverse():
    """The fixture pins mixed schedulers and asymmetric partitions."""
    schedulers = set()
    partition_sizes = set()
    for entry in TENANT_GOLDEN["entries"].values():
        request = MultiTenantRequest.from_dict(entry["request"])
        for tenant in request.tenants:
            schedulers.add(tenant.scheduler)
            partition_sizes.add(len(tenant.sm_ids))
    assert len(schedulers) >= 3, schedulers
    assert len(partition_sizes) >= 2, partition_sizes


@pytest.mark.parametrize("key", sorted(TENANT_GOLDEN["entries"]))
def test_multi_tenant_simulation_matches_golden(key):
    entry = TENANT_GOLDEN["entries"][key]
    request = MultiTenantRequest.from_dict(entry["request"])
    result = execute(request)
    recomputed = json.loads(json.dumps(result.to_dict(), sort_keys=True))
    assert recomputed == entry["result"], (
        f"{key}: multi-tenant output drifted from the golden fixture; if "
        "this is a deliberate semantic change, regenerate with "
        "scripts/regen_goldens.py and explain the drift in the PR"
    )


@pytest.mark.parametrize("key", sorted(GOLDEN["entries"]))
def test_simulation_matches_golden(key):
    benchmark, scheduler, backend = key.split("/")
    meta = GOLDEN["_meta"]
    result = execute(
        SimulationRequest(
            benchmark,
            scheduler,
            RunConfig(scale=meta["scale"], seed=meta["seed"]),
            backend=backend,
        )
    )
    recomputed = json.loads(json.dumps(result.to_dict(), sort_keys=True))
    assert recomputed == GOLDEN["entries"][key], (
        f"{key}: simulation output drifted from the golden fixture; if this "
        "is a deliberate semantic change, regenerate with "
        "scripts/regen_goldens.py and explain the drift in the PR"
    )
