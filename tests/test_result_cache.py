"""Tests for the content-addressed result cache (repro.harness.cache)."""

import pickle

import pytest

import repro.harness.parallel as parallel_mod
from repro.core.config import CIAOParameters
from repro.gpu.config import GPUConfig
from repro.harness.cache import ResultCache, canonicalize, code_fingerprint
from repro.harness.parallel import SweepJob, run_jobs
from repro.harness.runner import RunConfig

SMALL = RunConfig(scale=0.05, seed=1)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestCacheHits:
    def test_hit_returns_stored_result_and_skips_simulation(self, cache, monkeypatch):
        jobs = [SweepJob("SYRK", "gto", SMALL), SweepJob("ATAX", "ciao-c", SMALL)]
        calls = []
        # The in-process path executes through repro.api.run_batch (one
        # backend call per engine); count the jobs that reach it.
        import repro.api as api_mod

        real = api_mod.run_batch

        def counting(requests, **kwargs):
            calls.extend((r.benchmark_name, r.scheduler) for r in requests)
            return real(requests, **kwargs)

        monkeypatch.setattr(api_mod, "run_batch", counting)
        cold = run_jobs(jobs, workers=1, cache=cache)
        assert len(calls) == 2
        assert cold.stats.cache_hits == 0 and cold.stats.executed == 2

        warm = run_jobs(jobs, workers=1, cache=cache)
        assert len(calls) == 2, "warm run must not simulate"
        assert warm.stats.cache_hits == 2 and warm.stats.executed == 0
        for a, b in zip(cold.results, warm.results):
            assert a == b

    def test_warm_sweep_is_nearly_free(self, cache):
        jobs = [SweepJob(b, s, RunConfig(scale=0.1, seed=1))
                for b in ("SYRK", "ATAX") for s in ("gto", "ciao-c")]
        cold = run_jobs(jobs, workers=1, cache=cache)
        warm = run_jobs(jobs, workers=1, cache=cache)
        assert warm.stats.cache_hits == len(jobs)
        # Acceptance bar is <10% of cold; leave slack for slow filesystems.
        assert warm.stats.wall_seconds < cold.stats.wall_seconds * 0.5


class TestCacheKeys:
    def test_key_stable_for_identical_jobs(self):
        assert SweepJob("SYRK", "gto", SMALL).cache_key() == \
            SweepJob("SYRK", "gto", RunConfig(scale=0.05, seed=1)).cache_key()

    def test_key_changes_with_run_config(self):
        base = SweepJob("SYRK", "gto", SMALL).cache_key()
        assert base != SweepJob("SYRK", "gto", RunConfig(scale=0.06, seed=1)).cache_key()
        assert base != SweepJob("SYRK", "gto", RunConfig(scale=0.05, seed=2)).cache_key()
        assert base != SweepJob(
            "SYRK", "gto", RunConfig(scale=0.05, seed=1, dram_bandwidth_scale=2.0)
        ).cache_key()
        assert base != SweepJob(
            "SYRK", "gto",
            RunConfig(scale=0.05, seed=1, gpu_config=GPUConfig.gtx480_8way_l1d()),
        ).cache_key()

    def test_key_changes_with_scheduler_kwargs(self):
        # ciao_params flow into the scheduler constructor kwargs.
        default = SweepJob("SYRK", "ciao-c", SMALL).cache_key()
        tweaked = SweepJob(
            "SYRK", "ciao-c",
            RunConfig(scale=0.05, seed=1,
                      ciao_params=CIAOParameters.paper_defaults().with_high_epoch(1000)),
        ).cache_key()
        assert default != tweaked

    def test_key_changes_with_benchmark_and_scheduler(self):
        base = SweepJob("SYRK", "gto", SMALL).cache_key()
        assert base != SweepJob("ATAX", "gto", SMALL).cache_key()
        assert base != SweepJob("SYRK", "ccws", SMALL).cache_key()

    def test_scheduler_aliases_share_a_key(self):
        assert SweepJob("SYRK", "ciao_c", SMALL).cache_key() == \
            SweepJob("SYRK", "ciao-c", SMALL).cache_key()

    def test_code_fingerprint_in_key(self, monkeypatch):
        base = SweepJob("SYRK", "gto", SMALL).cache_key()
        monkeypatch.setenv("REPRO_CACHE_VERSION", "pinned-test-version")
        assert SweepJob("SYRK", "gto", SMALL).cache_key() != base

    def test_code_fingerprint_is_stable(self):
        assert code_fingerprint() == code_fingerprint()


class TestMultiTenantKeys:
    """Cache-key sensitivity of co-located (multi-tenant) jobs."""

    def _request(self, split_a=(0,), split_b=(1, 2), **kwargs):
        from repro.api import MultiTenantRequest, TenantSpec

        fields = dict(
            tenants=(
                TenantSpec("a", "ATAX", "gto", tuple(split_a), address_space=1),
                TenantSpec("b", "SYRK", "gto", tuple(split_b), address_space=2),
            ),
            run_config=SMALL,
        )
        fields.update(kwargs)
        return MultiTenantRequest(**fields)

    def test_key_is_stable_for_identical_jobs(self):
        assert self._request().cache_key() == self._request().cache_key()

    def test_sm_partition_assignment_changes_key(self):
        # Regression guard: two jobs that differ ONLY in which SMs each
        # tenant occupies contend differently and must never share a cache
        # entry.
        narrow = self._request(split_a=(0,), split_b=(1, 2))
        wide = self._request(split_a=(0, 1), split_b=(2,))
        assert narrow.cache_key() != wide.cache_key()

    def test_machine_size_changes_key(self):
        # Idle SMs change the machine's L2/DRAM share, so an isolated
        # baseline must not alias the dense two-tenant layout.
        dense = self._request()
        padded = self._request(total_sms=4)
        assert dense.cache_key() != padded.cache_key()

    def test_tenant_labels_and_address_spaces_change_key(self):
        from repro.api import MultiTenantRequest, TenantSpec

        base = self._request()
        relabeled = MultiTenantRequest(
            tenants=(
                TenantSpec("x", "ATAX", "gto", (0,), address_space=1),
                TenantSpec("y", "SYRK", "gto", (1, 2), address_space=2),
            ),
            run_config=SMALL,
        )
        shared_space = MultiTenantRequest(
            tenants=(
                TenantSpec("a", "ATAX", "gto", (0,)),
                TenantSpec("b", "SYRK", "gto", (1, 2)),
            ),
            run_config=SMALL,
        )
        assert base.cache_key() != relabeled.cache_key()
        assert base.cache_key() != shared_space.cache_key()

    def test_run_config_and_scheduler_change_key(self):
        from repro.api import MultiTenantRequest, TenantSpec

        base = self._request()
        assert base.cache_key() != self._request(
            run_config=RunConfig(scale=0.06, seed=1)
        ).cache_key()
        resched = MultiTenantRequest(
            tenants=(
                TenantSpec("a", "ATAX", "ccws", (0,), address_space=1),
                TenantSpec("b", "SYRK", "gto", (1, 2), address_space=2),
            ),
            run_config=SMALL,
        )
        assert base.cache_key() != resched.cache_key()

    def test_multi_tenant_key_never_collides_with_single_kernel_key(self):
        single = SweepJob("ATAX", "gto", SMALL, backend="lockstep").cache_key()
        assert self._request().cache_key() != single


class TestCanonicalize:
    def test_primitives_dataclasses_enums(self):
        from repro.workloads.registry import get_benchmark
        from repro.workloads.spec import WorkloadClass

        spec = get_benchmark("SYRK")
        out = canonicalize(spec)
        assert out["__type__"] == "BenchmarkSpec"
        assert out["workload_class"] == "WorkloadClass.SWS"
        assert canonicalize(WorkloadClass.LWS) == "WorkloadClass.LWS"
        assert canonicalize(0.1) == f"f:{0.1!r}"
        assert canonicalize((1, "a", None)) == [1, "a", None]
        assert canonicalize({"b": 1, "a": 2}) == {"b": 1, "a": 2}


class TestStorage:
    def test_roundtrip_and_counters(self, cache):
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert cache.entry_count() == 1
        assert cache.size_bytes() > 0
        assert cache.stats.hits == 1 and cache.stats.puts == 1

    def test_miss(self, cache):
        assert cache.get("cd" * 32) is None
        assert cache.stats.misses == 1

    def test_corrupt_entry_is_dropped(self, cache):
        key = "ef" * 32
        cache.put(key, {"x": 1})
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()
        assert cache.stats.errors == 1

    def test_key_mismatch_is_dropped(self, cache):
        key = "12" * 32
        other = "34" * 32
        cache.put(key, {"x": 1})
        # Copy the payload under the wrong key: must be rejected.
        payload = cache._path(key).read_bytes()
        wrong = cache._path(other)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_bytes(payload)
        assert cache.get(other) is None
        assert pickle.loads(payload)["key"] == key  # sanity

    def test_clear(self, cache):
        cache.put("ab" * 32, 1)
        cache.put("cd" * 32, 2)
        assert cache.clear() == 2
        assert cache.entry_count() == 0


class TestPeek:
    def test_peek_returns_without_counting(self, cache):
        key = "ab" * 32
        cache.put(key, {"x": 1})
        assert cache.peek(key) == {"x": 1}
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_peek_miss_is_none_and_uncounted(self, cache):
        assert cache.peek("cd" * 32) is None
        assert cache.stats.misses == 0

    def test_peek_never_deletes_corrupt_entries(self, cache):
        key = "ef" * 32
        cache.put(key, {"x": 1})
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.peek(key) is None
        assert path.exists(), "peek must be side-effect free"
        assert cache.stats.errors == 0


class TestConcurrentAccess:
    """Two writers racing one key; readers must never see torn data.

    This pins the write-to-temp + atomic-``os.replace`` protocol the class
    docstring promises: whatever interleaving the OS picks, ``get``/``peek``
    return one writer's complete payload or a clean miss — never a blend.
    """

    def test_writers_racing_same_key_leave_one_complete_value(self, cache):
        import threading

        key = "ab" * 32
        barrier = threading.Barrier(2)
        errors = []

        def write(value):
            try:
                barrier.wait(timeout=30)
                for _ in range(50):
                    cache.put(key, {"writer": value, "blob": [value] * 256})
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(v,)) for v in (1, 2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        final = cache.get(key)
        assert final is not None
        assert final["blob"] == [final["writer"]] * 256
        # No orphaned temp files survive the race.
        assert not list(cache.root.rglob("*.tmp"))

    def test_reader_racing_writers_never_sees_corrupt_data(self, cache):
        import threading

        key = "cd" * 32
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                value = cache.peek(key)
                if value is not None and value["blob"] != [value["writer"]] * 256:
                    bad.append(value)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for i in range(100):
                cache.put(key, {"writer": i, "blob": [i] * 256})
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not bad, f"reader observed torn payloads: {bad[:3]}"
        # Corrupt-entry bookkeeping never fired: every read was clean.
        assert cache.stats.errors == 0

    def test_atomic_rename_protocol_is_pinned(self, cache, monkeypatch):
        """put() must write a temp file and publish it with os.replace."""
        import os as os_mod

        import repro.harness.cache as cache_mod

        replaced = []
        real_replace = os_mod.replace

        def spying_replace(src, dst):
            replaced.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(cache_mod.os, "replace", spying_replace)
        key = "ef" * 32
        cache.put(key, {"x": 1})
        assert len(replaced) == 1
        src, dst = replaced[0]
        assert src.endswith(".tmp")
        assert dst == str(cache._path(key))
        assert cache.get(key) == {"x": 1}


class TestEnvironmentControl:
    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert ResultCache.from_env() is None

    def test_enabled_by_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ResultCache.from_env()
        assert cache is not None
        assert cache.root == tmp_path
