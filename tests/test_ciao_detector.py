"""Unit tests for the CIAO interference detector (Section III-A / IV-A)."""

import pytest

from repro.core.config import CIAOParameters
from repro.core.interference import InterferenceDetector


@pytest.fixture
def detector():
    return InterferenceDetector(CIAOParameters.paper_defaults())


class TestParameters:
    def test_paper_defaults(self):
        params = CIAOParameters.paper_defaults()
        assert params.high_cutoff == pytest.approx(0.01)
        assert params.low_cutoff == pytest.approx(0.005)
        assert params.high_epoch_instructions == 5000
        assert params.low_epoch_instructions == 100
        assert params.saturating_counter_max == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            CIAOParameters(high_cutoff=0.0).validate()
        with pytest.raises(ValueError):
            CIAOParameters(low_cutoff=0.02, high_cutoff=0.01).validate()
        with pytest.raises(ValueError):
            CIAOParameters(low_epoch_instructions=0).validate()
        with pytest.raises(ValueError):
            CIAOParameters(low_epoch_instructions=10_000).validate()

    def test_sensitivity_variants(self):
        params = CIAOParameters.paper_defaults().with_high_cutoff(0.04)
        assert params.high_cutoff == pytest.approx(0.04)
        assert params.low_cutoff == pytest.approx(0.02)
        params = CIAOParameters.paper_defaults().with_high_epoch(1000)
        assert params.high_epoch_instructions == 1000


class TestVTAHitCounting:
    def test_counts_accumulate(self, detector):
        detector.record_vta_hit(3, 7)
        detector.record_vta_hit(3, 7)
        assert detector.vta_hits(3) == 2
        assert detector.vta_hits(7) == 0

    def test_irs_formula(self, detector):
        # 10 VTA hits, 5000 instructions, 48 active warps:
        # IRS = 10 / (5000 / 48) = 0.096
        for _ in range(10):
            detector.record_vta_hit(1, 2)
        assert detector.irs(1, 5000, 48) == pytest.approx(10 / (5000 / 48))

    def test_irs_zero_guards(self, detector):
        assert detector.irs(0, 0, 48) == 0.0
        assert detector.irs(0, 100, 0) == 0.0

    def test_cutoff_helpers(self, detector):
        for _ in range(10):
            detector.record_vta_hit(1, 2)
        assert detector.exceeds_high_cutoff(1, 5000, 48)
        assert not detector.below_low_cutoff(1, 5000, 48)
        assert detector.below_low_cutoff(9, 5000, 48)

    def test_windowed_irs_decays_after_epoch(self, detector):
        for _ in range(20):
            detector.record_vta_hit(1, 2)
        assert detector.exceeds_high_cutoff(1, 5000, 48)
        # Two quiet epochs later the recent IRS falls to zero even though the
        # cumulative counters keep the history.
        detector.advance_window(5000)
        detector.advance_window(10000)
        assert detector.irs(1, 10100, 48) < detector.params.low_cutoff
        assert detector.vta_hits(1) == 20
        assert detector.cumulative_irs(1, 10100, 48) > 0


class TestInterferenceList:
    def test_most_interfering_tracks_first_seen(self, detector):
        detector.record_vta_hit(1, 5)
        assert detector.most_interfering(1) == 5

    def test_saturating_counter_protects_frequent_interferer(self, detector):
        # Warp 5 interferes 4 times (counter saturates at 3), then warp 9
        # interferes twice: counter decrements but warp 5 stays recorded.
        for _ in range(4):
            detector.record_vta_hit(1, 5)
        detector.record_vta_hit(1, 9)
        detector.record_vta_hit(1, 9)
        assert detector.most_interfering(1) == 5

    def test_replacement_after_counter_drains(self, detector):
        detector.record_vta_hit(1, 5)  # counter = 0
        detector.record_vta_hit(1, 9)  # different: counter already 0 -> replace
        assert detector.most_interfering(1) == 9
        assert detector.stats.interference_list_replacements == 1

    def test_figure_4c_sequence(self, detector):
        """Reproduce the Figure 4c example: W32 interferes with W34."""
        # W32 interferes repeatedly -> counter saturates (step 1).
        for _ in range(5):
            detector.record_vta_hit(34, 32)
        # W42 interferes -> counter decremented, W32 retained (step 2).
        detector.record_vta_hit(34, 42)
        assert detector.most_interfering(34) == 32
        # W32 interferes again -> counter incremented (step 3).
        detector.record_vta_hit(34, 32)
        assert detector.most_interfering(34) == 32

    def test_unknown_warp(self, detector):
        assert detector.most_interfering(99) is None


class TestPairListAndLifecycle:
    def test_pair_entry_created_on_demand(self, detector):
        entry = detector.pair_entry(3)
        assert entry.redirect_trigger == -1
        assert entry.stall_trigger == -1
        entry.redirect_trigger = 7
        assert detector.pair_entry(3).redirect_trigger == 7

    def test_forget_warp(self, detector):
        detector.record_vta_hit(1, 5)
        detector.pair_entry(1).stall_trigger = 4
        detector.forget_warp(1)
        assert detector.vta_hits(1) == 0
        assert detector.most_interfering(1) is None
        assert detector.pair_entry(1).stall_trigger == -1

    def test_reset(self, detector):
        detector.record_vta_hit(1, 5)
        detector.reset()
        assert detector.vta_hits(1) == 0
        assert detector.stats.vta_hit_events == 1  # stats survive reset

    def test_storage_bits_model(self, detector):
        bits = detector.storage_bits(num_warps=64)
        assert bits["interference_list_bits"] == 64 * 8
        assert bits["pair_list_bits"] == 64 * 12
        assert bits["vta_hit_counter_bits"] == 64 * 32
