"""Unit tests for the queues, DRAM model, interconnect and memory subsystem."""

import pytest

from repro.mem.dram import DRAMConfig, DRAMModel
from repro.mem.interconnect import Interconnect, InterconnectConfig, L2Slice
from repro.mem.queues import DatapathMux, QueueEntry, ResponseQueue, WriteQueue
from repro.mem.subsystem import MemorySubsystem, MemorySubsystemConfig


class TestQueues:
    def test_push_pop_ready(self):
        q = ResponseQueue(capacity=2)
        assert q.push(QueueEntry(block=1, wid=0, ready_at=5))
        assert q.pop_ready(now=0) is None
        entry = q.pop_ready(now=5)
        assert entry is not None and entry.block == 1

    def test_capacity_and_stall_count(self):
        q = WriteQueue(capacity=1)
        assert q.push(QueueEntry(block=1, wid=0, ready_at=0))
        assert not q.push(QueueEntry(block=2, wid=0, ready_at=0))
        assert q.full_stalls == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ResponseQueue(capacity=0)

    def test_peek_and_len(self):
        q = ResponseQueue()
        q.push(QueueEntry(block=3, wid=1, ready_at=0))
        assert q.peek().block == 3
        assert len(q) == 1

    def test_datapath_mux_routing(self):
        mux = DatapathMux()
        assert mux.route("shared") == DatapathMux.SHARED
        assert mux.route("l1d") == DatapathMux.L1D
        assert mux.routed_to_shared == 1
        assert mux.routed_to_l1d == 1
        assert mux.total_routed == 2


class TestDRAM:
    def test_latency_floor(self):
        dram = DRAMModel(DRAMConfig())
        completion = dram.service(block=0, now=100)
        assert completion >= 100 + dram.config.access_latency

    def test_bandwidth_queueing(self):
        config = DRAMConfig(bytes_per_cycle=16.0, num_channels=1)
        dram = DRAMModel(config)
        first = dram.service(block=0, now=0)
        second = dram.service(block=1, now=0)
        assert second > first  # second request waits for the channel

    def test_channel_interleaving_avoids_queueing(self):
        config = DRAMConfig(num_channels=2)
        dram = DRAMModel(config)
        a = dram.service(block=0, now=0)
        b = dram.service(block=1, now=0)  # different channel
        assert abs(a - b) < dram.burst_cycles()

    def test_scaled_bandwidth(self):
        base = DRAMConfig()
        double = base.scaled_bandwidth(2.0)
        assert double.bytes_per_cycle == pytest.approx(2 * base.bytes_per_cycle)
        assert DRAMConfig.gtx480_2x().bytes_per_cycle == pytest.approx(
            2 * DRAMConfig.gtx480().bytes_per_cycle
        )

    def test_utilization_and_backlog(self):
        dram = DRAMModel(DRAMConfig(bytes_per_cycle=16.0, num_channels=1))
        for block in range(10):
            dram.service(block, now=0)
        assert dram.utilization(100) > 0
        assert dram.pending_backlog(0) > 0
        assert dram.stats.requests == 10

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DRAMModel(DRAMConfig(num_channels=0))
        with pytest.raises(ValueError):
            DRAMModel(DRAMConfig(bytes_per_cycle=0))


class TestInterconnectAndL2:
    def test_injection_adds_latency(self):
        icnt = Interconnect(InterconnectConfig(latency=50))
        arrival = icnt.inject(now=10)
        assert arrival >= 60

    def test_injection_serialization(self):
        icnt = Interconnect(InterconnectConfig(latency=0, bytes_per_cycle=16.0))
        a = icnt.inject(now=0)
        b = icnt.inject(now=0)
        assert b > a

    def test_l2_hit_faster_than_miss(self):
        slice_ = L2Slice()
        miss_time = slice_.access(block=1, wid=0, now=0)
        slice_.cache.fill(1, miss_time)
        hit_time = slice_.access(block=1, wid=0, now=miss_time + 1) - (miss_time + 1)
        assert hit_time < miss_time

    def test_memory_subsystem_read_and_write(self):
        mem = MemorySubsystem(MemorySubsystemConfig.gtx480(), num_sms=2)
        ready = mem.read_block(sm_id=0, block=10, wid=0, now=0)
        assert ready > 0
        mem.write_block(sm_id=1, block=11, wid=0, now=0)
        assert mem.l2.cache.stats.accesses >= 2
        assert 0.0 <= mem.dram_utilization(max(1, ready)) <= 1.0

    def test_memory_subsystem_validation(self):
        with pytest.raises(ValueError):
            MemorySubsystem(num_sms=0)
