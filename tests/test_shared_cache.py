"""Unit tests for the CIAO shared-memory cache and address translation unit."""

import pytest

from repro.mem.address import BLOCK_SIZE
from repro.mem.shared_cache import AddressTranslationUnit, SharedMemoryCache
from repro.mem.shared_memory import SharedMemory


@pytest.fixture
def shared_memory():
    return SharedMemory(48 * 1024)


class TestAddressTranslationUnit:
    def test_translate_fields_in_range(self):
        atu = AddressTranslationUnit(num_lines=256)
        for address in range(0, 256 * BLOCK_SIZE * 3, 997):
            loc = atu.translate(address)
            assert 0 <= loc.line_index < 256
            assert 0 <= loc.byte_offset < BLOCK_SIZE
            assert 0 <= loc.bank < 16
            assert loc.bank_group in (0, 1)
            assert loc.tag_bank_group == 1 - loc.bank_group
            assert 0 <= loc.tag_slot < 32

    def test_tag_and_data_in_different_groups(self):
        atu = AddressTranslationUnit(num_lines=64)
        loc = atu.translate(12345 * BLOCK_SIZE)
        assert loc.bank_group != loc.tag_bank_group

    def test_same_block_same_location(self):
        atu = AddressTranslationUnit(num_lines=64)
        a = atu.translate(5 * BLOCK_SIZE + 4)
        b = atu.translate(5 * BLOCK_SIZE + 100)
        assert a.line_index == b.line_index
        assert a.tag == b.tag

    def test_zero_lines_rejected_on_translate(self):
        atu = AddressTranslationUnit(num_lines=0)
        with pytest.raises(ValueError):
            atu.translate(0)


class TestSharedMemoryCache:
    def test_reserves_unused_space_via_smmt(self, shared_memory):
        shared_memory.smmt.allocate("cta:0", 16 * 1024)
        cache = SharedMemoryCache(shared_memory)
        assert shared_memory.smmt.find("ciao") is not None
        # Tag overhead: strictly fewer data lines than raw capacity / 128.
        assert cache.num_lines < (32 * 1024) // BLOCK_SIZE
        assert cache.num_lines > 0

    def test_release_returns_space(self, shared_memory):
        cache = SharedMemoryCache(shared_memory)
        cache.release()
        assert shared_memory.smmt.unused_bytes() == shared_memory.capacity_bytes

    def test_over_reservation_rejected(self, shared_memory):
        with pytest.raises(MemoryError):
            SharedMemoryCache(shared_memory, reserve_bytes=64 * 1024)

    def test_miss_then_fill_then_hit(self, shared_memory):
        cache = SharedMemoryCache(shared_memory)
        access = cache.access(0x1000, wid=1, is_write=False, now=0)
        assert not access.hit
        cache.fill(access.block, now=5)
        access2 = cache.access(0x1000, wid=1, is_write=False, now=6)
        assert access2.hit and not access2.reserved_pending
        assert cache.contains(0x1000)

    def test_direct_mapped_conflict_reports_eviction(self, shared_memory):
        cache = SharedMemoryCache(shared_memory)
        conflicting = (cache.num_lines) * BLOCK_SIZE  # same line index as block 0
        first = cache.access(0, wid=1, is_write=False, now=0)
        cache.fill(first.block, 1)
        second = cache.access(conflicting, wid=2, is_write=False, now=2)
        assert not second.hit
        assert second.evicted_block == 0
        assert second.evicted_owner == 1

    def test_zero_capacity_degenerates_to_misses(self):
        shmem = SharedMemory(48 * 1024)
        shmem.smmt.allocate("cta:0", 48 * 1024)
        cache = SharedMemoryCache(shmem)
        assert cache.num_lines == 0
        access = cache.access(0x2000, wid=0, is_write=False, now=0)
        assert not access.hit
        assert not cache.contains(0x2000)

    def test_stats_and_occupancy(self, shared_memory):
        cache = SharedMemoryCache(shared_memory)
        a = cache.access(0, wid=0, is_write=False, now=0)
        cache.fill(a.block, 1)
        cache.access(0, wid=0, is_write=False, now=2)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert 0 < cache.occupancy() <= 1

    def test_invalidate_all(self, shared_memory):
        cache = SharedMemoryCache(shared_memory)
        a = cache.access(0, wid=0, is_write=False, now=0)
        cache.fill(a.block, 1)
        cache.invalidate_all()
        assert not cache.contains(0)

    def test_utilisation_rows_touched(self, shared_memory):
        cache = SharedMemoryCache(shared_memory)
        cache.access(0, wid=0, is_write=False, now=0)
        assert shared_memory.utilization() > 0
