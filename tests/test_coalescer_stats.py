"""Unit tests for the coalescer and the statistics containers."""

import pytest

from repro.gpu.coalescer import Coalescer
from repro.gpu.stats import SMStats, TimeSeries, merge_stats


class TestCoalescer:
    def test_fully_coalesced_access(self):
        coalescer = Coalescer()
        lanes = [lane * 4 for lane in range(32)]  # all within block 0
        assert coalescer.coalesce(lanes) == [0]
        assert coalescer.stats.transactions_per_instruction == 1.0

    def test_divergent_access(self):
        coalescer = Coalescer()
        lanes = [lane * 128 for lane in range(32)]  # one block per lane
        blocks = coalescer.coalesce(lanes)
        assert len(blocks) == 32

    def test_order_preserved_first_appearance(self):
        coalescer = Coalescer()
        blocks = coalescer.coalesce([5 * 128, 0, 5 * 128 + 4, 130])
        assert blocks == [5, 0, 1]

    def test_empty_and_negative(self):
        coalescer = Coalescer()
        assert coalescer.coalesce([]) == []
        with pytest.raises(ValueError):
            coalescer.coalesce([-1])

    def test_histogram(self):
        coalescer = Coalescer()
        coalescer.coalesce([0, 4])
        coalescer.coalesce([0, 128])
        assert coalescer.stats.histogram[1] == 1
        assert coalescer.stats.histogram[2] == 1

    def test_block_to_byte(self):
        assert Coalescer.block_to_byte(3) == 384


class TestTimeSeries:
    def test_append_and_mean(self):
        series = TimeSeries()
        series.append(100, 1.0)
        series.append(200, 3.0)
        assert len(series) == 2
        assert series.mean() == pytest.approx(2.0)
        assert series.as_pairs() == [(100, 1.0), (200, 3.0)]

    def test_empty_mean(self):
        assert TimeSeries().mean() == 0.0


class TestSMStats:
    def test_ipc(self):
        stats = SMStats(warp_size=32)
        stats.cycles = 100
        stats.instructions_issued = 50
        assert stats.warp_ipc == pytest.approx(0.5)
        assert stats.ipc == pytest.approx(16.0)

    def test_record_vta_hit_builds_matrix(self):
        stats = SMStats()
        stats.record_vta_hit(3, 7)
        stats.record_vta_hit(3, 7)
        stats.record_vta_hit(3, 9)
        assert stats.vta_hits == 3
        assert stats.interference_matrix[3][7] == 2
        pairs = stats.interference_pairs()
        assert pairs[0] == (3, 7, 2)
        low, high = stats.interference_extremes()
        assert low == 1 and high == 2

    def test_interference_extremes_empty(self):
        assert SMStats().interference_extremes() == (0, 0)

    def test_summary_keys(self):
        summary = SMStats().summary()
        for key in ("ipc", "l1d_hit_rate", "vta_hits", "mean_active_warps"):
            assert key in summary

    def test_merge_stats(self):
        a = SMStats()
        a.cycles = 100
        a.instructions_issued = 100
        a.l1d_hits = 10
        a.l1d_misses = 10
        b = SMStats()
        b.cycles = 150
        b.instructions_issued = 50
        b.l1d_hits = 30
        b.l1d_misses = 10
        merged = merge_stats([a, b])
        assert merged.cycles == 150
        assert merged.instructions_issued == 150
        assert merged.l1d_hit_rate == pytest.approx(40 / 60)

    def test_merge_empty(self):
        assert merge_stats([]).cycles == 0
