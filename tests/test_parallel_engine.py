"""Tests for the parallel sweep engine (repro.harness.parallel)."""

import os

import pytest

from repro.harness.parallel import (
    JobFailure,
    RetryPolicy,
    SweepError,
    SweepJob,
    derive_seed,
    resolve_workers,
    run_jobs,
)
from repro.harness.runner import RunConfig, run_benchmark, run_many

SMALL = RunConfig(scale=0.05, seed=1)


def _grid(benchmarks=("SYRK", "ATAX"), schedulers=("gto", "ciao-c"), config=SMALL):
    return [SweepJob(b, s, config) for b in benchmarks for s in schedulers]


class TestIdenticalResults:
    def test_parallel_matches_sequential(self):
        jobs = _grid()
        sequential = run_jobs(jobs, workers=1, cache=None)
        parallel = run_jobs(jobs, workers=2, cache=None)
        assert sequential.stats.workers == 1
        assert parallel.stats.workers == 2
        for seq, par in zip(sequential.results, parallel.results):
            # Full dataclass equality: every counter, series and matrix.
            assert seq == par

    def test_engine_matches_direct_runner(self):
        jobs = _grid()
        outcome = run_jobs(jobs, workers=1, cache=None)
        for job, via_engine in zip(jobs, outcome.results):
            direct = run_benchmark(job.benchmark, job.scheduler, job.run_config)
            assert direct == via_engine

    def test_results_in_submission_order(self):
        jobs = _grid()
        outcome = run_jobs(jobs, workers=2, cache=None)
        for job, result in zip(jobs, outcome.results):
            assert result.kernel_name == job.benchmark_name
            assert result.scheduler_name == job.scheduler


class TestRunMany:
    def test_shape_and_stats(self):
        results, stats = run_many(
            ["SYRK", "ATAX"], ["gto", "ciao-c"],
            scale=0.05, seed=1, workers=1, cache=None, return_stats=True,
        )
        assert set(results) == {"SYRK", "ATAX"}
        assert set(results["SYRK"]) == {"gto", "ciao-c"}
        assert stats.jobs == 4 and stats.executed == 4 and stats.cache_hits == 0
        assert all(r.ipc > 0 for row in results.values() for r in row.values())

    def test_default_return_is_plain_dict(self):
        results = run_many(["SYRK"], ["gto"], scale=0.05, seed=1,
                           workers=1, cache=None)
        assert isinstance(results, dict)
        assert results["SYRK"]["gto"].ipc > 0


class TestDeterministicSeeds:
    def test_derive_seed_stable_and_distinct(self):
        a = derive_seed(1, "SYRK", "gto")
        assert a == derive_seed(1, "SYRK", "gto")
        assert a != derive_seed(1, "ATAX", "gto")
        assert a != derive_seed(2, "SYRK", "gto")
        assert a > 0

    def test_derive_seed_frames_part_boundaries(self):
        """Parts are length-prefixed, not joined with a separator.

        The historic ``":".join(parts)`` framing collapsed
        ``("a:b", "c")`` and ``("a", "b:c")`` onto one seed — and the
        ``--tenants`` grammar routinely puts ``:`` inside a part, so two
        genuinely different tenant sweeps could share correlated RNG
        streams.  Pinned here old-vs-new so the fix cannot regress.
        """
        assert derive_seed(1, "a:b", "c") != derive_seed(1, "a", "b:c")
        assert derive_seed(1, "ab", "") != derive_seed(1, "a", "b")
        assert derive_seed(1, "a", "b", "c") != derive_seed(1, "a", "b:c")

    def test_seed_lives_in_the_job_not_the_engine(self):
        # Two sweeps over permuted job lists must return the same result for
        # the same job whatever its position.
        jobs = _grid()
        forward = run_jobs(jobs, workers=1, cache=None)
        backward = run_jobs(list(reversed(jobs)), workers=2, cache=None)
        assert forward.results[0] == backward.results[-1]


class TestWorkersAndErrors:
    def test_resolve_workers(self, monkeypatch):
        assert resolve_workers(4, 100) == 4
        assert resolve_workers(4, 2) == 2       # clamped to job count
        assert resolve_workers(0, 8) == 1       # floored
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None, 100) == 3
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None, 100) == max(1, min(os.cpu_count() or 1, 100))

    @pytest.mark.parametrize("bad", ["garbage", "0", "-3", "2.5"])
    def test_resolve_workers_rejects_bad_env(self, monkeypatch, bad):
        """A bad REPRO_WORKERS dies with one clear line naming the variable,
        instead of the bare int() ValueError it used to surface."""
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None, 8)

    def test_unknown_benchmark_raises_sweep_error(self):
        with pytest.raises(SweepError, match="NOPE"):
            run_jobs([SweepJob("NOPE", "gto", SMALL)], workers=1, cache=None)

    def test_unknown_benchmark_raises_sweep_error_with_cache(self, tmp_path):
        from repro.harness.cache import ResultCache

        with pytest.raises(SweepError, match="NOPE"):
            run_jobs([SweepJob("NOPE", "gto", SMALL)], workers=1,
                     cache=ResultCache(tmp_path))

    def test_scheduler_alias_runs_identically_to_canonical(self):
        # Aliases share a cache key, so they must also share execution
        # semantics (notably shared-cache enablement for ciao-p / ciao-c).
        alias = run_jobs([SweepJob("SYRK", "ciao_c", SMALL)], workers=1, cache=None)
        canonical = run_jobs([SweepJob("SYRK", "ciao-c", SMALL)], workers=1, cache=None)
        assert alias.results[0] == canonical.results[0]
        assert alias.results[0].scheduler_name == "ciao-c"

    def test_unknown_benchmark_raises_in_pool_too(self):
        jobs = [SweepJob("SYRK", "gto", SMALL), SweepJob("NOPE", "gto", SMALL)]
        with pytest.raises(SweepError, match="NOPE"):
            run_jobs(jobs, workers=2, cache=None)


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             jitter=0.5, seed=3)
        first = policy.backoff_seconds("job-key", 1)
        assert first == policy.backoff_seconds("job-key", 1)
        # Jitter is bounded to ±50%, so retry 3 (4x base) always exceeds
        # retry 1 (1x base) despite the jitter.
        assert policy.backoff_seconds("job-key", 3) > first
        assert 0.05 <= first <= 0.15
        # Different keys draw different jitter from the same seed.
        assert first != policy.backoff_seconds("other-key", 1)

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=3.0, jitter=0.0)
        assert policy.backoff_seconds("k", 1) == pytest.approx(0.1)
        assert policy.backoff_seconds("k", 2) == pytest.approx(0.3)

    def test_validation(self):
        for bad in (
            dict(max_attempts=0),
            dict(backoff_base=-1.0),
            dict(backoff_factor=0.5),
            dict(jitter=2.0),
            dict(timeout_seconds=0.0),
            dict(straggler_seconds=-1.0),
        ):
            with pytest.raises(ValueError):
                RetryPolicy(**bad)


class TestOnErrorModes:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_jobs([SweepJob("SYRK", "gto", SMALL)], workers=1,
                     cache=None, on_error="explode")

    def test_skip_mode_keeps_the_successes(self):
        jobs = [
            SweepJob("SYRK", "gto", SMALL),
            SweepJob("NOPE", "gto", SMALL),
            SweepJob("ATAX", "gto", SMALL),
        ]
        outcome = run_jobs(jobs, workers=1, cache=None, on_error="skip")
        assert not outcome.ok
        assert outcome.stats.failed == 1
        good_first, bad, good_last = outcome.results
        assert good_first.kernel_name == "SYRK"
        assert isinstance(bad, JobFailure)
        assert bad.benchmark_name == "NOPE"
        assert good_last.kernel_name == "ATAX"
        assert outcome.failures() == [bad]

    def test_skip_mode_in_pool_preserves_order(self):
        jobs = [
            SweepJob("NOPE", "gto", SMALL),
            SweepJob("SYRK", "gto", SMALL),
            SweepJob("ATAX", "gto", SMALL),
        ]
        outcome = run_jobs(jobs, workers=2, cache=None, on_error="skip")
        assert isinstance(outcome.results[0], JobFailure)
        assert outcome.results[1].kernel_name == "SYRK"
        assert outcome.results[2].kernel_name == "ATAX"


class TestPartialResults:
    """Satellite: a pool-path SweepError must report what survived and
    leave no orphaned worker processes behind."""

    def test_sweep_error_reports_partial_completion(self):
        import multiprocessing
        import time

        jobs = [
            SweepJob("SYRK", "gto", SMALL),
            SweepJob("ATAX", "gto", SMALL),
            SweepJob("NOPE", "gto", SMALL),
        ]
        with pytest.raises(SweepError) as excinfo:
            run_jobs(jobs, workers=2, cache=None)
        err = excinfo.value
        assert err.job.benchmark_name == "NOPE"
        assert isinstance(err.completed, int) and err.completed >= 0
        assert isinstance(err.outstanding, int) and err.outstanding >= 0
        assert "cancelled" in str(err)
        # The pool was force-shut: no orphaned workers linger.
        deadline = time.time() + 10
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="needs >=2 CPUs to demonstrate a speedup")
def test_parallel_sweep_is_faster_than_sequential():
    """Acceptance: >=4 benchmarks x >=3 schedulers, workers>1 beats workers=1."""
    config = RunConfig(scale=0.3, seed=1)
    jobs = [
        SweepJob(b, s, config)
        for b in ("ATAX", "SYRK", "BICG", "MVT")
        for s in ("gto", "ccws", "ciao-c")
    ]
    sequential = run_jobs(jobs, workers=1, cache=None)
    parallel = run_jobs(jobs, workers=min(4, os.cpu_count()), cache=None)
    assert all(a == b for a, b in zip(sequential.results, parallel.results))
    assert parallel.stats.wall_seconds < sequential.stats.wall_seconds
