"""End-to-end result integrity: digests, quarantine, fsck, fsync, audits."""

import json
import os
import pickle

import pytest

from repro.api import SimulationRequest, execute
from repro.harness.cache import CACHE_SCHEMA, ENVELOPE_SCHEMA, ResultCache
from repro.harness.faults import FAULT_KINDS, FaultPlan, corrupt_result
from repro.harness.integrity import (
    QUARANTINE_SUFFIX,
    audit_selected,
    fsck,
    fsync_enabled,
    quarantine_file,
    quarantined_artifacts,
    result_digest,
)
from repro.harness.ledger import (
    append_entry,
    read_ledger_report,
    summarize_ledger,
)
from repro.harness.manifest import ManifestEntry, append_outcome, scan_manifest
from repro.harness.parallel import run_jobs
from repro.harness.runner import RunConfig

KEY = "a" * 64


def tiny_request(scheduler="gto"):
    return SimulationRequest("ATAX", scheduler, RunConfig(scale=0.05, seed=1))


def make_cache(tmp_path):
    return ResultCache(tmp_path / "cache", quarantine=tmp_path / "q")


def tamper(cache, key):
    """Flip the stored result under ``key`` while keeping the old digest."""
    path = cache._path(key)
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    payload["result"] = {"tampered": True}
    with open(path, "wb") as fh:
        pickle.dump(payload, fh)
    return path


class TestResultDigest:
    def test_stable_across_key_order(self):
        assert result_digest({"a": 1, "b": 2}) == result_digest({"b": 2, "a": 1})

    def test_content_sensitive(self):
        assert result_digest({"a": 1}) != result_digest({"a": 2})

    def test_non_json_payload_never_raises(self):
        digest = result_digest({"obj": object})
        assert isinstance(digest, str) and len(digest) == 32


class TestQuarantine:
    def test_move_with_reason_sidecar(self, tmp_path):
        victim = tmp_path / "entry.pkl"
        victim.write_bytes(b"damaged")
        qdir = tmp_path / "q"
        dest = quarantine_file(victim, "bit rot", quarantine=qdir, source="test")
        assert dest is not None and dest.name.endswith(QUARANTINE_SUFFIX)
        assert not victim.exists()
        reason = json.loads((qdir / (dest.name + ".reason.json")).read_text())
        assert reason["reason"] == "bit rot"
        assert reason["source"] == "test"
        assert quarantined_artifacts(qdir) == [dest]

    def test_same_name_never_overwrites(self, tmp_path):
        qdir = tmp_path / "q"
        for _ in range(2):
            victim = tmp_path / "entry.pkl"
            victim.write_bytes(b"damaged")
            quarantine_file(victim, "again", quarantine=qdir)
        assert len(quarantined_artifacts(qdir)) == 2


class TestCacheEnvelope:
    def test_roundtrip_writes_digested_envelope(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(KEY, {"ipc": 1.5})
        assert cache.get(KEY) == {"ipc": 1.5}
        with open(cache._path(KEY), "rb") as fh:
            payload = pickle.load(fh)
        assert payload["schema"] == ENVELOPE_SCHEMA
        assert payload["digest"] == result_digest({"ipc": 1.5})

    def test_legacy_envelope_still_readable(self, tmp_path):
        cache = make_cache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        with open(path, "wb") as fh:
            pickle.dump(
                {"schema": CACHE_SCHEMA, "key": KEY, "result": {"ipc": 2.0}}, fh
            )
        assert cache.get(KEY) == {"ipc": 2.0}
        assert cache.stats.quarantined == 0

    def test_tampered_entry_quarantined_not_unlinked(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(KEY, {"ipc": 1.5})
        tamper(cache, KEY)
        assert cache.get(KEY) is None
        assert not cache._path(KEY).exists()
        assert cache.stats.quarantined == 1
        quarantined = quarantined_artifacts(tmp_path / "q")
        assert len(quarantined) == 1
        reason = json.loads(
            (quarantined[0].parent / (quarantined[0].name + ".reason.json"))
            .read_text()
        )
        assert "digest mismatch" in reason["reason"]

    def test_peek_is_side_effect_free(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(KEY, {"ipc": 1.5})
        path = tamper(cache, KEY)
        assert cache.peek(KEY) is None
        assert path.exists()  # peek never quarantines
        assert cache.stats.quarantined == 0
        assert cache.stats.lookups == 0

    def test_clear_quarantines_corrupt_entries(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(KEY, {"ipc": 1.5})
        cache.put("b" * 64, {"ipc": 2.5})
        tamper(cache, KEY)
        assert cache.clear() == 2
        assert cache.stats.quarantined == 1
        assert cache.entry_count() == 0


class TestFsck:
    def test_clean_cache(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(KEY, {"ipc": 1.5})
        report = fsck(cache=cache)
        assert report.clean
        assert [a.verdict for a in report.artifacts] == ["ok"]

    def test_tampered_entry_quarantined_even_without_repair(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(KEY, {"ipc": 1.5})
        tamper(cache, KEY)
        report = fsck(cache=cache)
        assert not report.clean
        assert report.corrupt == 1
        assert report.artifacts[0].quarantined
        assert not cache._path(KEY).exists()
        # The damage is gone now, so a second scan is clean.
        assert fsck(cache=cache).clean

    def test_legacy_envelope_repaired_only_with_repair(self, tmp_path):
        cache = make_cache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        with open(path, "wb") as fh:
            pickle.dump(
                {"schema": CACHE_SCHEMA, "key": KEY, "result": {"ipc": 2.0}}, fh
            )
        report = fsck(cache=cache)
        assert report.legacy == 1 and report.clean  # readable, not damage
        report = fsck(cache=cache, repair=True)
        assert report.artifacts[0].repaired
        with open(path, "rb") as fh:
            assert pickle.load(fh)["schema"] == ENVELOPE_SCHEMA
        assert cache.get(KEY) == {"ipc": 2.0}

    def test_torn_manifest_tail(self, tmp_path):
        manifest = tmp_path / "sweep.manifest"
        append_outcome(manifest, ManifestEntry(key="k1", status="done"))
        append_outcome(manifest, ManifestEntry(key="k2", status="done"))
        data = manifest.read_bytes()
        manifest.write_bytes(data[:-20])  # tear the last line mid-record

        entries, skipped = scan_manifest(manifest)
        assert set(entries) == {"k1"} and skipped == 1

        report = fsck(manifests=[manifest], quarantine=tmp_path / "q")
        assert report.damaged_lines == 1 and not report.clean

        report = fsck(
            manifests=[manifest], repair=True, quarantine=tmp_path / "q"
        )
        assert report.artifacts[0].repaired and report.artifacts[0].quarantined
        assert report.clean  # repaired in this very scan
        entries, skipped = scan_manifest(manifest)
        assert set(entries) == {"k1"} and skipped == 0
        # The original (pre-repair) bytes were preserved as evidence.
        assert len(quarantined_artifacts(tmp_path / "q")) == 1

    def test_missing_manifest_reported(self, tmp_path):
        report = fsck(manifests=[tmp_path / "never-written.manifest"])
        assert report.artifacts[0].verdict == "missing"

    def test_resume_survives_a_torn_tail(self, tmp_path):
        cache = make_cache(tmp_path)
        manifest = tmp_path / "sweep.manifest"
        jobs = [tiny_request("gto"), tiny_request("lrr")]
        first = run_jobs(jobs, workers=1, cache=cache, manifest=manifest)
        assert first.stats.executed == 2
        with open(manifest, "a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "key": "k3", "status": "do')  # torn write
        resumed = run_jobs(jobs, workers=1, cache=cache, manifest=manifest)
        assert resumed.manifest_skipped == 1
        assert resumed.stats.cache_hits == 2  # intact lines still resume
        assert [r.ipc for r in resumed.results] == [r.ipc for r in first.results]


class TestFsync:
    def test_manifest_append_fsyncs_on_request(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
        path = tmp_path / "m.manifest"
        append_outcome(path, ManifestEntry(key="k", status="done"), fsync=False)
        assert calls == []
        append_outcome(path, ManifestEntry(key="k", status="done"), fsync=True)
        assert len(calls) == 1

    def test_env_knob_enables_fsync(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
        monkeypatch.setenv("REPRO_FSYNC", "1")
        assert fsync_enabled()
        append_outcome(
            tmp_path / "m.manifest", ManifestEntry(key="k", status="done")
        )
        append_entry({"kind": "test"}, path=tmp_path / "ledger.jsonl")
        assert len(calls) == 2

    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_FSYNC", raising=False)
        assert not fsync_enabled()


class TestAuditSampling:
    def test_deterministic(self):
        picks = [audit_selected(7, f"key{i}", 0.25) for i in range(100)]
        assert picks == [audit_selected(7, f"key{i}", 0.25) for i in range(100)]

    def test_rate_extremes(self):
        assert not audit_selected(7, "k", 0.0)
        assert audit_selected(7, "k", 1.0)

    def test_rate_is_roughly_honoured(self):
        n = 2000
        hits = sum(audit_selected(7, f"key{i}", 0.25) for i in range(n))
        assert 0.20 < hits / n < 0.30


class TestCorruptFault:
    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec("7:1.0:corrupt")
        assert plan.kinds == ("corrupt",)
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_default_kinds_exclude_corrupt(self):
        # The recoverable trio is pinned; corrupt is opt-in only.
        assert "corrupt" not in FAULT_KINDS
        assert FaultPlan().kinds == FAULT_KINDS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(kinds=("bogus",))

    def test_seeded_bit_flip_is_deterministic_and_decodable(self):
        result = execute(tiny_request())
        c1 = corrupt_result(result, seed=7, fault_key="k")
        c2 = corrupt_result(result, seed=7, fault_key="k")
        assert result_digest(c1.to_dict()) == result_digest(c2.to_dict())
        assert result_digest(c1.to_dict()) != result_digest(result.to_dict())
        assert type(c1) is type(result)  # still a decodable wire form

    def test_different_keys_usually_pick_different_leaves(self):
        result = execute(tiny_request())
        digests = {
            result_digest(
                corrupt_result(result, seed=7, fault_key=f"k{i}").to_dict()
            )
            for i in range(8)
        }
        assert len(digests) > 1


class TestLedgerIntegrity:
    def test_skipped_lines_counted(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_entry({"jobs": 2, "executed": 2}, path=path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"jobs": 1, "exec')  # torn tail
        entries, skipped = read_ledger_report(path)
        assert len(entries) == 1 and skipped == 1

    def test_summary_separates_audit_rows(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_entry(
            {"jobs": 4, "executed": 4, "cache_hits": 0, "wall_seconds": 1.0,
             "workers": 2, "backend": "reference", "audited": 3,
             "audit_failures": 1, "corrupt": 2},
            path=path,
        )
        append_entry(
            {"kind": "audit", "worker": "127.0.0.1:9</", "key": "k"}, path=path
        )
        summary = summarize_ledger(read_ledger_report(path)[0])
        assert summary["sweeps"] == 1  # the audit row is not a sweep
        assert summary["audit_rows"] == 1
        assert summary["audited"] == 3
        assert summary["audit_failures"] == 1
        assert summary["corrupt"] == 2


class TestCliFsck:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    @pytest.fixture(autouse=True)
    def hermetic_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_QUARANTINE_DIR", str(tmp_path / "q"))
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(tmp_path / "ledger.jsonl"))
        self.tmp_path = tmp_path

    def test_exit_one_then_zero(self, capsys):
        cache = ResultCache()
        cache.put(KEY, {"ipc": 1.0})
        assert self.run_cli("cache", "fsck") == 0
        tamper(cache, KEY)
        assert self.run_cli("cache", "fsck") == 1
        out = capsys.readouterr().out
        assert "corrupt" in out and "quarantined" in out
        assert self.run_cli("cache", "fsck") == 0  # damage already moved aside

    def test_manifest_repair_cycle(self):
        manifest = self.tmp_path / "sweep.manifest"
        append_outcome(manifest, ManifestEntry(key="k1", status="done"))
        with open(manifest, "a", encoding="utf-8") as fh:
            fh.write('{"torn": ')
        assert self.run_cli("cache", "fsck", "--manifest", str(manifest)) == 1
        assert (
            self.run_cli(
                "cache", "fsck", "--manifest", str(manifest), "--repair"
            )
            == 0
        )
        assert self.run_cli("cache", "fsck", "--manifest", str(manifest)) == 0

    def test_json_report(self, capsys):
        assert self.run_cli("cache", "fsck", "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True

    def test_audit_rate_requires_a_roster(self, capsys):
        rc = self.run_cli(
            "sweep", "-b", "ATAX", "-s", "gto", "--audit-rate", "0.25"
        )
        assert rc == 2
        assert "--audit-rate" in capsys.readouterr().err
