"""Tests for ``repro.scenarios``: generation, staggered launches, search,
promotion and the ``repro scenarios`` CLI.

The load-bearing contracts:

* **Generator determinism** — same seed, same scenario specs, same request
  cache keys; each (seed, index) pair is an independent stream.
* **Staggered-launch parity** — all-zero launch offsets are bit-identical
  to the classic simultaneous path (result, wire form and cache key), so
  the new engine capability cannot drift schema-1 behaviour.
* **Search acceptance** — a pinned small-budget search rediscovers
  interference at least as bad as the worst hand-written scenario.
* **Promotion round-trip** — promoted fixtures reload identically and are
  first-class library members.
"""

import dataclasses
import json

import pytest
from strategies import SMALL, pair_request

from repro.analysis.metrics import tenant_slowdowns
from repro.api import MultiTenantRequest, execute
from repro.scenarios import (
    BUILTIN_SCENARIO_NAMES,
    COLOCATION_SCENARIOS,
    SCENARIO_SCHEMA,
    Evaluation,
    SearchOutcome,
    builtin_best,
    generate_scenario,
    generate_scenarios,
    load_promoted,
    promote,
    promoted_from_search,
    scenario_from_json,
    search,
)


# ---------------------------------------------------------------------------
# Generator determinism
# ---------------------------------------------------------------------------
class TestGenerator:
    def test_same_seed_same_specs_and_cache_keys(self):
        first = generate_scenarios(42, 6)
        second = generate_scenarios(42, 6)
        assert first == second
        assert [s.request().cache_key() for s in first] == [
            s.request().cache_key() for s in second
        ]

    def test_indices_are_independent_streams(self):
        # Scenario i is the same whether sampled alone or as part of a batch.
        assert generate_scenario(42, 3) == generate_scenarios(42, 6)[3]

    def test_different_seeds_differ(self):
        assert generate_scenarios(1, 4) != generate_scenarios(2, 4)

    def test_every_generated_scenario_is_valid(self):
        for scenario in generate_scenarios(7, 10):
            request = scenario.request()
            request.validate()
            spaces = [t.address_space for t in request.tenants]
            assert len(set(spaces)) == len(spaces)  # separate processes
            assert request.resolved_backend() == "lockstep"

    def test_stream_mixes_staggered_and_simultaneous(self):
        scenarios = generate_scenarios(3, 12)
        assert any(s.launch_cycles for s in scenarios)
        assert any(not s.launch_cycles for s in scenarios)

    def test_stagger_span_zero_disables_staggering(self):
        assert all(
            not s.launch_cycles for s in generate_scenarios(3, 8, stagger_span=0)
        )

    def test_scenario_json_round_trips(self):
        for scenario in generate_scenarios(13, 5):
            wire = json.loads(json.dumps(scenario.to_json()))
            assert scenario_from_json(wire) == scenario

    def test_scenario_json_schema_guard(self):
        payload = generate_scenario(13).to_json()
        payload["schema"] = SCENARIO_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            scenario_from_json(payload)

    def test_launch_cycle_count_mismatch_rejected(self):
        scenario = dataclasses.replace(
            generate_scenario(13), launch_cycles=(0, 1, 2, 3, 4, 5, 6)
        )
        with pytest.raises(ValueError, match="launch"):
            scenario.request()


# ---------------------------------------------------------------------------
# Staggered launches on the engine
# ---------------------------------------------------------------------------
class TestStaggeredLaunches:
    def test_all_zero_offsets_bit_identical_to_simultaneous(self):
        # The parity anchor: explicitly pinning launch_cycle=0 must change
        # nothing — not the result, not the wire form, not the cache key.
        base = pair_request()
        zeroed = MultiTenantRequest(
            tenants=tuple(
                dataclasses.replace(t, launch_cycle=0) for t in base.tenants
            ),
            run_config=base.run_config,
        )
        assert json.dumps(zeroed.to_dict(), sort_keys=True) == json.dumps(
            base.to_dict(), sort_keys=True
        )
        assert zeroed.cache_key() == base.cache_key()
        assert execute(zeroed) == execute(base)

    def test_staggered_tenant_launches_late_and_spans_stay_sane(self):
        base = pair_request()
        staggered = MultiTenantRequest(
            tenants=(
                base.tenants[0],
                dataclasses.replace(base.tenants[1], launch_cycle=500),
            ),
            run_config=SMALL,
        )
        result = execute(staggered)
        late = result.per_tenant["right"]
        assert late.launch_cycle == 500
        assert late.finish_cycle > 500
        # The early tenant still launches at cycle 0.
        assert result.per_tenant["left"].launch_cycle == 0
        # The wire form round-trips the new field.
        restored = type(result).from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result

    def test_staggered_slowdown_compares_busy_spans(self):
        base = pair_request()
        staggered = MultiTenantRequest(
            tenants=(
                base.tenants[0],
                dataclasses.replace(base.tenants[1], launch_cycle=500),
            ),
            run_config=SMALL,
        )
        colocated = execute(staggered)
        isolated = {
            t.name: execute(staggered.isolated_request(t.name))
            for t in staggered.tenants
        }
        report = tenant_slowdowns(colocated, isolated)
        row = report["right"]
        assert row["colocated_cycles"] == (
            colocated.per_tenant["right"].finish_cycle - 500
        )
        # The isolated baseline carries the same offset, so the dormant
        # prefix cancels and contention alone moves the ratio.
        assert 0.5 < row["slowdown"] < 3.0

    def test_staggered_cache_key_differs_from_simultaneous(self):
        base = pair_request()
        staggered = MultiTenantRequest(
            tenants=(
                base.tenants[0],
                dataclasses.replace(base.tenants[1], launch_cycle=500),
            ),
            run_config=SMALL,
        )
        assert staggered.cache_key() != base.cache_key()

    def test_negative_launch_cycle_rejected(self):
        with pytest.raises(ValueError, match="launch cycle"):
            dataclasses.replace(
                pair_request().tenants[0], launch_cycle=-1
            ).validate()


# ---------------------------------------------------------------------------
# Search
# ---------------------------------------------------------------------------
class TestSearch:
    def test_budget_validation(self):
        with pytest.raises(ValueError, match="restart"):
            search(1, restarts=0, steps=1)
        with pytest.raises(ValueError, match="steps"):
            search(1, restarts=1, steps=-1)

    def test_search_is_deterministic(self):
        first = search(5, restarts=1, steps=1, scale=0.02, workers=1, cache=None)
        second = search(5, restarts=1, steps=1, scale=0.02, workers=1, cache=None)
        assert first.best == second.best
        assert first.best_objective == second.best_objective
        assert [row.cache_key for row in first.ledger] == [
            row.cache_key for row in second.ledger
        ]
        assert [row.objective for row in first.ledger] == [
            row.objective for row in second.ledger
        ]

    def test_ledger_rows_are_reproducible_specs(self):
        outcome = search(5, restarts=1, steps=1, scale=0.02, workers=1, cache=None)
        for row in outcome.ledger:
            # Every ledger row can be re-simulated from its spec: the
            # recorded cache key IS the spec's content address.
            assert row.scenario.request().cache_key() == row.cache_key
        best_row = outcome.top(1)[0]
        assert best_row.objective == outcome.best_objective
        assert best_row.scenario == outcome.best

    def test_search_rediscovers_worst_case_interference(self):
        """Acceptance: a pinned small-budget search finds max tenant
        slowdown at least as bad as the worst hand-written scenario."""
        _, bar = builtin_best(scale=0.05, workers=1, cache=None)
        outcome = search(7, restarts=2, steps=3, scale=0.05, workers=1, cache=None)
        assert bar > 1.0  # the built-ins genuinely interfere
        assert outcome.best_objective >= bar
        assert outcome.evaluations + outcome.reused == len(outcome.ledger)


# ---------------------------------------------------------------------------
# Promotion
# ---------------------------------------------------------------------------
def _fake_outcome(seed=11, count=3):
    """A SearchOutcome with synthetic objectives (no simulation needed)."""
    scenarios = generate_scenarios(seed, count)
    ledger = [
        Evaluation(
            scenario=scenario,
            cache_key=scenario.request().cache_key(),
            objective=1.0 + index,
            slowdowns={},
            restart=0,
            step=index,
            accepted=True,
        )
        for index, scenario in enumerate(scenarios)
    ]
    return SearchOutcome(
        best=scenarios[-1], best_objective=float(count), ledger=ledger
    )


class TestPromotion:
    def test_promoted_from_search_ranks_and_renames(self):
        outcome = _fake_outcome()
        chosen = promoted_from_search(outcome, top_k=2)
        assert [s.name for s in chosen] == ["discovered-1", "discovered-2"]
        assert chosen[0].tenants == outcome.best.tenants
        assert "max slowdown 3.000" in chosen[0].description

    def test_promote_round_trips_through_fixture(self, tmp_path):
        path = tmp_path / "promoted.json"
        chosen = promoted_from_search(_fake_outcome(), top_k=2)
        written = promote(chosen, path=path, merge=False)
        assert load_promoted(path) == written
        assert {s.name for s in written} == {"discovered-1", "discovered-2"}

    def test_promote_merges_by_name(self, tmp_path):
        path = tmp_path / "promoted.json"
        promote(promoted_from_search(_fake_outcome(seed=11), top_k=1), path=path)
        replacement = promoted_from_search(_fake_outcome(seed=12), top_k=1)
        written = promote(replacement, path=path)
        assert len(written) == 1  # same name, replaced not appended
        assert written[0].tenants == replacement[0].tenants

    def test_promote_rejects_builtin_name_collision(self, tmp_path):
        impostor = dataclasses.replace(
            generate_scenario(11), name=BUILTIN_SCENARIO_NAMES[0]
        )
        with pytest.raises(ValueError, match="built-in"):
            promote([impostor], path=tmp_path / "promoted.json")

    def test_library_ships_promoted_discoveries(self):
        """Acceptance: >= 2 promoted scenarios ride the library, staggered
        launches included, behind the same accessors as the built-ins."""
        promoted = [
            name for name in COLOCATION_SCENARIOS if name not in BUILTIN_SCENARIO_NAMES
        ]
        assert len(promoted) >= 2
        assert any(COLOCATION_SCENARIOS[name].launch_cycles for name in promoted)
        for name in promoted:
            COLOCATION_SCENARIOS[name].request().validate()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestScenariosCLI:
    def test_generate_is_deterministic(self, capsys):
        from repro.cli import main

        argv = ["scenarios", "generate", "--seed", "42", "--count", "2"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["schema"] == SCENARIO_SCHEMA
        assert len(payload["scenarios"]) == 2
        for entry in payload["scenarios"]:
            restored = scenario_from_json(entry)
            assert restored.request().cache_key() == entry["cache_key"]

    def test_generate_rejects_bad_count(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "generate", "--count", "0"]) == 2

    def test_search_cli_tiny_budget(self, capsys):
        from repro.cli import main

        rc = main([
            "scenarios", "search", "--seed", "3", "--restarts", "1",
            "--steps", "0", "--scale", "0.02", "--workers", "1",
            "--no-cache", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["best"]["objective"] > 0
        assert len(payload["ledger"]) == 1
        assert payload["ledger"][0]["cache_key"]

    def test_promote_cli_writes_fixture(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "promoted.json"
        rc = main([
            "scenarios", "promote", "--seed", "3", "--restarts", "1",
            "--steps", "0", "--scale", "0.02", "--workers", "1",
            "--no-cache", "--top-k", "1", "--path", str(path),
        ])
        assert rc == 0
        assert "promoted discovered-1" in capsys.readouterr().out
        loaded = load_promoted(path)
        assert len(loaded) == 1
        assert loaded[0].name == "discovered-1"

    def test_promote_cli_dry_run_writes_nothing(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "promoted.json"
        rc = main([
            "scenarios", "promote", "--seed", "3", "--restarts", "1",
            "--steps", "0", "--scale", "0.02", "--workers", "1",
            "--no-cache", "--top-k", "1", "--path", str(path), "--dry-run",
        ])
        assert rc == 0
        assert not path.exists()
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["name"] == "discovered-1"
