"""Tests for the generic registry helper and its three users."""

import pytest

from repro.registry import Registry


class TestGenericRegistry:
    def test_register_get_names_order(self):
        reg = Registry("thing")
        reg.register("b", 2)
        reg.register("a", 1)
        assert reg.names() == ("b", "a")
        assert reg.get("a") == 1
        assert len(reg) == 2

    def test_case_insensitive_and_aliases(self):
        reg = Registry("thing")
        reg.register("Two-Level", "x", aliases=("two_level", "twolevel"))
        assert reg.canonical("TWO-LEVEL") == "Two-Level"
        assert reg.canonical("two_level") == "Two-Level"
        assert "TwoLevel" in reg
        assert "other" not in reg

    def test_duplicate_registration_rejected(self):
        reg = Registry("thing")
        reg.register("a", 1, aliases=("b",))
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", 2)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("c", 3, aliases=("b",))
        reg.register("a", 2, replace=True)
        assert reg.get("a") == 2

    def test_unknown_name_error_lists_known(self):
        reg = Registry("gadget")
        reg.register("known", 1)
        with pytest.raises(KeyError, match="unknown gadget 'nope'.*known"):
            reg.canonical("nope")

    def test_meta(self):
        reg = Registry("thing")
        reg.register("a", 1, meta={"flag": True})
        assert reg.meta("A") == {"flag": True}


class TestSchedulerRegistryHook:
    def test_register_out_of_tree_scheduler(self):
        from repro.sched.gto import GTOScheduler
        from repro.sched.registry import (
            canonical_scheduler_name,
            create_scheduler,
            register_scheduler,
            scheduler_names,
            unregister_scheduler,
        )

        class MyScheduler(GTOScheduler):
            pass

        register_scheduler("my-test-policy", MyScheduler, aliases=("my_test_policy",))
        try:
            assert "my-test-policy" in scheduler_names()
            assert canonical_scheduler_name("MY_TEST_POLICY") == "my-test-policy"
            assert isinstance(create_scheduler("my-test-policy"), MyScheduler)
        finally:
            unregister_scheduler("my-test-policy")
        assert "my-test-policy" not in scheduler_names()

    def test_registered_scheduler_runs_end_to_end(self):
        from repro.harness.runner import run_benchmark
        from repro.sched.gto import GTOScheduler
        from repro.sched.registry import register_scheduler, unregister_scheduler

        class EndToEndScheduler(GTOScheduler):
            pass

        register_scheduler("e2e-test-policy", EndToEndScheduler)
        try:
            result = run_benchmark("ATAX", "e2e-test-policy", scale=0.05, seed=1)
            assert result.scheduler_name == "e2e-test-policy"
            assert result.ipc > 0
        finally:
            unregister_scheduler("e2e-test-policy")


class TestBenchmarkRegistryHook:
    def test_register_out_of_tree_benchmark(self):
        import dataclasses

        from repro.workloads.registry import (
            benchmark_names,
            get_benchmark,
            register_benchmark,
            unregister_benchmark,
        )

        spec = dataclasses.replace(get_benchmark("ATAX"), name="ATAX-TESTVARIANT")
        register_benchmark(spec)
        try:
            assert get_benchmark("atax-testvariant") == spec
            assert "ATAX-TESTVARIANT" in benchmark_names()
        finally:
            unregister_benchmark("ATAX-TESTVARIANT")
        assert "ATAX-TESTVARIANT" not in benchmark_names()

    def test_registered_benchmark_runs_end_to_end(self):
        import dataclasses

        from repro.harness.runner import run_benchmark
        from repro.workloads.registry import (
            get_benchmark,
            register_benchmark,
            unregister_benchmark,
        )

        spec = dataclasses.replace(get_benchmark("SYRK"), name="SYRK-E2EVARIANT")
        register_benchmark(spec)
        try:
            result = run_benchmark("SYRK-E2EVARIANT", "gto", scale=0.05, seed=1)
            assert result.kernel_name == "SYRK-E2EVARIANT"
            assert result.ipc > 0
        finally:
            unregister_benchmark("SYRK-E2EVARIANT")

    def test_duplicate_benchmark_rejected(self):
        from repro.workloads.registry import get_benchmark, register_benchmark

        with pytest.raises(ValueError, match="already registered"):
            register_benchmark(get_benchmark("ATAX"))


class TestErrorMessagesPreserved:
    def test_scheduler_error_format(self):
        from repro.sched.registry import canonical_scheduler_name

        with pytest.raises(KeyError, match="unknown scheduler 'bogus'"):
            canonical_scheduler_name("bogus")

    def test_benchmark_error_format(self):
        from repro.workloads.registry import get_benchmark

        with pytest.raises(KeyError, match="unknown benchmark 'BOGUS'"):
            get_benchmark("BOGUS")
