"""Unit tests for shared memory and the SMMT."""

import pytest

from repro.mem.shared_memory import SharedMemory, SharedMemoryManagementTable


class TestSMMT:
    def test_allocate_and_unused(self):
        smmt = SharedMemoryManagementTable(48 * 1024)
        entry = smmt.allocate("cta:0", 16 * 1024)
        assert entry.base == 0
        assert entry.size == 16 * 1024
        assert smmt.unused_bytes() == 32 * 1024

    def test_allocations_do_not_overlap(self):
        smmt = SharedMemoryManagementTable(48 * 1024)
        a = smmt.allocate("cta:0", 1024)
        b = smmt.allocate("cta:1", 2048)
        assert b.base >= a.end

    def test_exhaustion_raises(self):
        smmt = SharedMemoryManagementTable(1024)
        smmt.allocate("cta:0", 1024)
        with pytest.raises(MemoryError):
            smmt.allocate("cta:1", 1)

    def test_free_returns_bytes(self):
        smmt = SharedMemoryManagementTable(4096)
        smmt.allocate("cta:0", 1024)
        smmt.allocate("ciao", 2048)
        assert smmt.free("cta:0") == 1024
        assert smmt.unused_bytes() == 4096 - 2048

    def test_find(self):
        smmt = SharedMemoryManagementTable(4096)
        smmt.allocate("ciao", 512)
        assert smmt.find("ciao") is not None
        assert smmt.find("cta:9") is None

    def test_negative_and_invalid(self):
        smmt = SharedMemoryManagementTable(4096)
        with pytest.raises(ValueError):
            smmt.allocate("x", -1)
        with pytest.raises(ValueError):
            SharedMemoryManagementTable(0)


class TestSharedMemory:
    def test_geometry(self):
        shmem = SharedMemory(48 * 1024)
        assert shmem.NUM_BANKS == 32
        assert shmem.row_bytes == 256
        assert shmem.num_rows == 192

    def test_conflict_free_access_is_one_cycle(self):
        shmem = SharedMemory()
        offsets = [lane * 8 for lane in range(32)]  # one word per bank
        assert shmem.access(offsets) == 1
        assert shmem.stats.bank_conflict_cycles == 0

    def test_bank_conflicts_serialize(self):
        shmem = SharedMemory()
        offsets = [0, 256, 512, 768]  # all map to bank 0
        assert shmem.access(offsets) == 4
        assert shmem.stats.bank_conflict_cycles == 3

    def test_out_of_range_raises(self):
        shmem = SharedMemory(1024)
        with pytest.raises(ValueError):
            shmem.access([2048])

    def test_empty_access(self):
        shmem = SharedMemory()
        assert shmem.access([]) == 0

    def test_utilization_tracks_rows(self):
        shmem = SharedMemory(48 * 1024)
        assert shmem.utilization() == 0.0
        shmem.access([0])
        shmem.access([shmem.row_bytes * 3])
        assert shmem.utilization() == pytest.approx(2 / shmem.num_rows)
