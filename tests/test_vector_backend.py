"""The ``vector`` backend: golden parity, availability gating, machinery.

The engine's one non-negotiable contract is **bit-identical output**: every
entry of ``tests/goldens/golden_stats.json`` — all schedulers, both pinned
engines — must be reproduced exactly by the vector backend (only the
``backend`` label may differ).  On top of the golden matrix, targeted parity
cases cover the configurations the fixtures do not: Figure 12 machine
variants, launch-geometry overrides, multi-SM machines, cycle-budget
truncation and non-unit issue width (which disables batching entirely).

Availability is registry-level: ``import repro`` and ``repro list`` work
without numpy, and only *selecting* the engine raises
:class:`repro.backends.BackendUnavailableError`.
"""

import json
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")  # the engine under test needs numpy

from repro.api import RunConfig, SimulationRequest, execute
from repro.backends import (
    BackendUnavailableError,
    backend_availability,
    backend_names,
    get_backend,
    resolve_backend_name,
)
from repro.gpu.config import GPUConfig
from repro.gpu.vector.trace import clear_trace_cache, trace_cache_info

GOLDEN_PATH = Path(__file__).parent / "goldens" / "golden_stats.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def _normalized(result, *, backend_label):
    payload = json.loads(json.dumps(result.to_dict(), sort_keys=True))
    payload["data"]["fields"]["backend"] = backend_label
    return payload


def _vector_result(benchmark, scheduler, run_config):
    return execute(
        SimulationRequest(benchmark, scheduler, run_config, backend="vector")
    )


# ---------------------------------------------------------------------------
# Golden parity: the full fixture matrix, bit for bit
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("key", sorted(GOLDEN["entries"]))
def test_vector_matches_golden(key):
    """The vector engine reproduces every golden entry exactly.

    The fixtures pin ``reference`` and single-SM ``lockstep`` runs (which
    are bit-identical to each other by contract), so the vector engine must
    match both — the only tolerated difference is the engine label.
    """
    benchmark, scheduler, backend = key.split("/")
    meta = GOLDEN["_meta"]
    result = _vector_result(
        benchmark, scheduler, RunConfig(scale=meta["scale"], seed=meta["seed"])
    )
    want = GOLDEN["entries"][key]
    got = _normalized(result, backend_label=want["data"]["fields"]["backend"])
    assert got == want, (
        f"{key}: vector output drifted from the golden fixture — the vector "
        "engine must stay bit-identical to the reference semantics"
    )


# ---------------------------------------------------------------------------
# Targeted parity beyond the fixture matrix
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "gpu_config",
    [
        GPUConfig.gtx480_large_l1d(),
        GPUConfig.gtx480_8way_l1d(),
        GPUConfig.gtx480_2x_dram(),
        GPUConfig.gtx480(num_sms=2),
    ],
    ids=["large-l1d", "8way-l1d", "2x-dram", "two-sms"],
)
def test_vector_matches_reference_on_machine_variants(gpu_config):
    """Figure 12 machine variants and multi-SM runs stay bit-identical."""
    config = RunConfig(scale=0.03, seed=3, gpu_config=gpu_config)
    reference = execute(SimulationRequest("ATAX", "gto", config, backend="reference"))
    vector = _vector_result("ATAX", "gto", config)
    assert _normalized(vector, backend_label="x") == _normalized(
        reference, backend_label="x"
    )


def test_vector_matches_reference_on_geometry_and_budget():
    """Launch-geometry overrides and cycle-budget truncation stay exact."""
    config = RunConfig(
        scale=0.05, seed=7, num_ctas=3, warps_per_cta=4, max_cycles=4_000
    )
    reference = execute(SimulationRequest("SYRK", "ccws", config, backend="reference"))
    vector = _vector_result("SYRK", "ccws", config)
    assert _normalized(vector, backend_label="x") == _normalized(
        reference, backend_label="x"
    )


def test_vector_matches_reference_with_wide_issue():
    """issue_width > 1 disables batching but must stay bit-identical."""
    config = RunConfig(
        scale=0.03, seed=1, gpu_config=GPUConfig.gtx480().with_overrides(issue_width=2)
    )
    reference = execute(SimulationRequest("WC", "gto", config, backend="reference"))
    vector = _vector_result("WC", "gto", config)
    assert _normalized(vector, backend_label="x") == _normalized(
        reference, backend_label="x"
    )


def test_vector_result_carries_engine_label():
    result = _vector_result("ATAX", "gto", RunConfig(scale=0.02))
    assert result.backend == "vector"
    assert result.inter_sm_dram_conflicts == 0  # serialized engines report 0


# ---------------------------------------------------------------------------
# Registration / availability
# ---------------------------------------------------------------------------
def test_vector_is_registered_with_aliases():
    assert "vector" in backend_names()
    assert resolve_backend_name("numpy") == "vector"
    assert resolve_backend_name("vectorized") == "vector"
    assert get_backend("vector").name == "vector"


def test_backend_availability_reports_all_engines():
    availability = backend_availability()
    assert set(availability) == set(backend_names())
    # numpy is installed in the test environment: every real engine is
    # available.  The chaos wrapper is the deliberate exception — it is
    # unavailable (with a configuration hint) until a fault plan is active.
    assert availability["chaos"] is not None and "fault plan" in availability["chaos"]
    assert all(reason is None
               for name, reason in availability.items() if name != "chaos")


def test_vector_unavailable_without_numpy(monkeypatch):
    """Selection (not registration) fails with a clear installation hint."""
    import repro.backends as backends

    def missing():
        raise ImportError("No module named 'numpy'")

    monkeypatch.setattr(backends, "_load_vector_backend", missing)
    # The registry still lists and resolves the name...
    assert "vector" in backend_names()
    assert resolve_backend_name("vector") == "vector"
    # ...availability explains the gap...
    reason = backend_availability()["vector"]
    assert reason is not None and "numpy" in reason
    # ...and only selection raises, with the hint in the message.
    with pytest.raises(BackendUnavailableError, match="numpy"):
        get_backend("vector")
    with pytest.raises(BackendUnavailableError):
        execute(SimulationRequest("ATAX", "gto", RunConfig(scale=0.02), backend="vector"))


def test_vector_rejects_multi_tenant_requests():
    from repro.api import MultiTenantRequest, TenantSpec

    request = MultiTenantRequest(
        tenants=(
            TenantSpec("a", "ATAX", "gto", (0,)),
            TenantSpec("b", "ATAX", "gto", (1,)),
        ),
        run_config=RunConfig(scale=0.02),
        backend="vector",
    )
    with pytest.raises(ValueError, match="lockstep"):
        execute(request)


# ---------------------------------------------------------------------------
# Trace interning
# ---------------------------------------------------------------------------
def test_traces_are_interned_across_requests():
    clear_trace_cache()
    config = RunConfig(scale=0.02, seed=11)
    _vector_result("ATAX", "gto", config)
    entries_after_first, _ = trace_cache_info()
    # A different scheduler over the same kernel reuses the same trace...
    _vector_result("ATAX", "ccws", config)
    entries_after_second, _ = trace_cache_info()
    assert entries_after_second == entries_after_first
    # ...while a different seed is a different kernel identity.
    _vector_result("ATAX", "gto", RunConfig(scale=0.02, seed=12))
    entries_after_third, _ = trace_cache_info()
    assert entries_after_third == entries_after_first + 1


def test_trace_cache_is_bounded():
    from repro.gpu.vector.trace import TRACE_CACHE_CAPACITY

    clear_trace_cache()
    for seed in range(TRACE_CACHE_CAPACITY + 3):
        _vector_result("ATAX", "gto", RunConfig(scale=0.02, seed=100 + seed))
    entries, capacity = trace_cache_info()
    assert capacity == TRACE_CACHE_CAPACITY
    assert entries <= capacity
