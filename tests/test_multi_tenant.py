"""Tests for the multi-tenant (co-located) simulation layer.

Covers the :class:`repro.api.TenantSpec` / :class:`MultiTenantRequest`
descriptors, the partitioned lock-step driver's per-tenant statistics, the
sweep-engine / result-cache integration, the co-location scenario library
and the ``repro run --tenants`` / ``--scenario`` CLI surface.

The differential parity contracts (homogeneous tenants == single-kernel
lock-step, one-tenant-one-SM == reference) live in ``tests/test_lockstep.py``;
the pinned bit-exact fixtures in ``tests/test_goldens.py``.
"""

import json

import pytest
from strategies import SMALL, pair_request

from repro.api import (
    MULTI_TENANT_SCHEMA,
    MultiTenantRequest,
    SimulationRequest,
    TenantSpec,
    execute,
)
from repro.analysis.metrics import tenant_slowdowns
from repro.cli import main, parse_tenant_specs
from repro.gpu.gpu import SimulationResult
from repro.gpu.stats import TenantStats
from repro.harness import experiments
from repro.harness.cache import ResultCache
from repro.harness.parallel import SweepError, run_jobs

PAIR = pair_request()


# ---------------------------------------------------------------------------
# Request validation and canonicalization
# ---------------------------------------------------------------------------
class TestRequestValidation:
    def test_valid_request_canonicalizes(self):
        canonical = PAIR.canonicalize()
        assert canonical.backend == "lockstep"
        assert canonical.machine_sms() == 2

    def test_alias_resolution(self):
        request = MultiTenantRequest(
            tenants=(
                TenantSpec("a", "atax", "ciao_c", (0,)),
                TenantSpec("b", "syrk", "lrr", (1,)),
            ),
            run_config=SMALL,
        ).canonicalize()
        assert request.tenants[0].benchmark == "ATAX"
        assert request.tenants[0].scheduler == "ciao-c"

    def test_overlapping_partitions_rejected(self):
        with pytest.raises(ValueError, match="assigned to both"):
            MultiTenantRequest(
                tenants=(
                    TenantSpec("a", "ATAX", "gto", (0, 1)),
                    TenantSpec("b", "SYRK", "gto", (1,)),
                ),
                run_config=SMALL,
            ).validate()

    def test_gap_in_partition_rejected_without_total_sms(self):
        with pytest.raises(ValueError, match="contiguously"):
            MultiTenantRequest(
                tenants=(
                    TenantSpec("a", "ATAX", "gto", (0,)),
                    TenantSpec("b", "SYRK", "gto", (2,)),
                ),
                run_config=SMALL,
            ).validate()

    def test_explicit_total_sms_allows_idle_sms(self):
        request = MultiTenantRequest(
            tenants=(TenantSpec("a", "ATAX", "gto", (1,)),),
            run_config=SMALL,
            total_sms=3,
        )
        request.validate()
        assert request.machine_sms() == 3

    def test_sm_ids_beyond_machine_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            MultiTenantRequest(
                tenants=(TenantSpec("a", "ATAX", "gto", (0, 5)),),
                run_config=SMALL,
                total_sms=2,
            ).validate()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MultiTenantRequest(
                tenants=(
                    TenantSpec("a", "ATAX", "gto", (0,)),
                    TenantSpec("a", "SYRK", "gto", (1,)),
                ),
                run_config=SMALL,
            ).validate()

    def test_empty_and_invalid_tenants_rejected(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            MultiTenantRequest(run_config=SMALL).validate()
        with pytest.raises(ValueError, match="owns no SMs"):
            TenantSpec("a", "ATAX", "gto", ()).validate()
        with pytest.raises(ValueError, match="invalid tenant name"):
            TenantSpec("bad,name", "ATAX", "gto", (0,)).validate()
        with pytest.raises(ValueError, match="address space"):
            TenantSpec("a", "ATAX", "gto", (0,), address_space=-1).validate()

    def test_env_backend_does_not_flip_multi_tenant(self, monkeypatch):
        # REPRO_BACKEND=reference (the CI matrix default) must not break
        # co-location: the serialized engine cannot express it.
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        assert PAIR.resolved_backend() == "lockstep"
        result = execute(
            MultiTenantRequest(
                tenants=(TenantSpec("solo", "ATAX", "gto", (0,)),),
                run_config=SMALL,
            )
        )
        assert result.backend == "lockstep"

    def test_reference_backend_rejects_multi_tenant(self):
        with pytest.raises(ValueError, match="lockstep"):
            execute(
                MultiTenantRequest(
                    tenants=(TenantSpec("solo", "ATAX", "gto", (0,)),),
                    run_config=SMALL,
                    backend="reference",
                )
            )


class TestWireFormat:
    def test_round_trip(self):
        payload = json.loads(json.dumps(PAIR.to_dict()))
        assert payload["schema"] == MULTI_TENANT_SCHEMA
        assert MultiTenantRequest.from_dict(payload) == PAIR

    def test_schema_mismatch_rejected(self):
        payload = PAIR.to_dict()
        payload["schema"] = MULTI_TENANT_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            MultiTenantRequest.from_dict(payload)

    def test_result_round_trip_preserves_per_tenant(self):
        result = execute(PAIR)
        restored = SimulationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result
        assert set(restored.per_tenant) == {"left", "right"}
        assert restored.per_tenant["left"].sm_ids == (0,)

    def test_single_kernel_results_omit_empty_per_tenant(self):
        # Schema-1 compatibility: the wire form of single-kernel results is
        # unchanged (goldens and old cache entries stay valid).
        result = execute(SimulationRequest("ATAX", "gto", SMALL))
        assert "per_tenant" not in result.to_dict()["data"]["fields"]


# ---------------------------------------------------------------------------
# Per-tenant statistics
# ---------------------------------------------------------------------------
class TestPerTenantStats:
    @pytest.fixture(scope="class")
    def result(self):
        return execute(PAIR)

    def test_breakdown_identity(self, result):
        assert set(result.per_tenant) == {"left", "right"}
        left = result.per_tenant["left"]
        assert left.benchmark == "ATAX" and left.scheduler == "gto"
        assert left.sm_ids == (0,)
        assert result.per_tenant["right"].scheduler == "ccws"

    def test_instruction_counts_sum_to_machine_total(self, result):
        assert sum(
            t.stats.instructions_issued for t in result.per_tenant.values()
        ) == result.machine.instructions_issued

    def test_conflict_attribution_sums_to_total(self, result):
        assert result.inter_sm_dram_conflicts > 0
        assert sum(
            t.inter_sm_dram_conflicts for t in result.per_tenant.values()
        ) == result.inter_sm_dram_conflicts

    def test_display_names_join_tenants(self, result):
        assert result.kernel_name == "ATAX+SYRK"
        assert result.scheduler_name == "gto+ccws"

    def test_deterministic(self, result):
        assert execute(PAIR) == result


# ---------------------------------------------------------------------------
# Sweep engine and result cache integration
# ---------------------------------------------------------------------------
class TestEngineIntegration:
    def test_run_jobs_mixes_job_types(self):
        jobs = [PAIR, SimulationRequest("ATAX", "gto", SMALL, backend="lockstep")]
        outcome = run_jobs(jobs, workers=1, cache=None)
        assert outcome.results[0].per_tenant
        assert not outcome.results[1].per_tenant
        assert outcome.stats.backend == "lockstep"

    def test_backend_fill_skips_multi_tenant_jobs(self):
        outcome = run_jobs([PAIR], workers=1, cache=None, backend="reference")
        assert outcome.results[0].backend == "lockstep"

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_jobs([PAIR], workers=1, cache=cache)
        warm = run_jobs([PAIR], workers=1, cache=cache)
        assert cold.stats.cache_hits == 0 and warm.stats.cache_hits == 1
        assert warm.results[0] == cold.results[0]
        assert warm.results[0].per_tenant["right"].benchmark == "SYRK"

    def test_unknown_benchmark_surfaces_as_sweep_error(self):
        bad = MultiTenantRequest(
            tenants=(TenantSpec("a", "NOPE", "gto", (0,)),), run_config=SMALL
        )
        with pytest.raises(SweepError):
            run_jobs([bad], workers=1, cache=None)

    def test_parallel_workers_match_in_process(self):
        other = MultiTenantRequest(
            tenants=(
                TenantSpec("x", "SYRK", "gto", (0,), address_space=1),
                TenantSpec("y", "WC", "gto", (1,), address_space=2),
            ),
            run_config=SMALL,
        )
        sequential = run_jobs([PAIR, other], workers=1, cache=None)
        parallel = run_jobs([PAIR, other], workers=2, cache=None)
        assert sequential.results == parallel.results


# ---------------------------------------------------------------------------
# Scenario library and the interference experiment
# ---------------------------------------------------------------------------
class TestScenarioLibrary:
    def test_library_shape(self):
        names = experiments.colocation_scenario_names()
        assert "thrash-vs-compute" in names
        assert len(names) >= 4

    @pytest.mark.parametrize("name", experiments.colocation_scenario_names())
    def test_every_scenario_is_well_formed(self, name):
        request = experiments.colocation_scenario(name)
        canonical = request.canonicalize()
        assert canonical.backend == "lockstep"
        # Tenants model separate processes: distinct address spaces.
        spaces = [t.address_space for t in canonical.tenants]
        assert len(set(spaces)) == len(spaces)
        assert request.cache_key() != PAIR.cache_key()

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            experiments.colocation_scenario("nope")

    def test_isolated_request_keeps_machine_size(self):
        request = experiments.colocation_scenario("asymmetric-split")
        isolated = request.isolated_request("narrow")
        assert isolated.machine_sms() == request.machine_sms()
        assert [t.name for t in isolated.tenants] == ["narrow"]

    def test_pinned_thrash_vs_compute_shows_interference(self):
        """Acceptance: the pinned cache-thrasher + compute-bound pair slows
        both tenants beyond their isolated runs, with per-tenant DRAM
        conflict attribution — all derived from one experiment call (the
        same path ``repro run --scenario thrash-vs-compute`` prints)."""
        out = experiments.colocation_interference(
            scenario="thrash-vs-compute", workers=1, cache=None
        )
        assert set(out["per_tenant"]) == {"thrash", "compute"}
        for row in out["per_tenant"].values():
            assert row["slowdown"] > 1.0
            assert row["inter_sm_dram_conflicts"] > 0
        assert out["inter_sm_dram_conflicts"] == sum(
            row["inter_sm_dram_conflicts"] for row in out["per_tenant"].values()
        )
        shares = [row["conflict_share"] for row in out["per_tenant"].values()]
        assert sum(shares) == pytest.approx(1.0)

    def test_slowdown_metric_against_hand_rolled_baselines(self):
        request = experiments.colocation_scenario("thrash-vs-compute")
        colocated = execute(request)
        isolated = {
            t.name: execute(request.isolated_request(t.name)) for t in request.tenants
        }
        report = tenant_slowdowns(colocated, isolated)
        for name, row in report.items():
            assert row["colocated_cycles"] == colocated.per_tenant[name].finish_cycle
            assert row["slowdown"] == pytest.approx(
                row["colocated_cycles"] / row["isolated_cycles"]
            )


# ---------------------------------------------------------------------------
# Slowdown metric edge cases (synthetic results, no simulation)
# ---------------------------------------------------------------------------
class TestSlowdownEdgeCases:
    """``tenant_slowdowns`` on hand-built results: degenerate inputs stay
    finite (no NaNs, no ZeroDivisionError) and busy spans cancel launch
    offsets exactly."""

    @staticmethod
    def _result(tenants):
        """A synthetic co-located result from {name: (finish, launch, conflicts)}."""
        return SimulationResult(
            kernel_name="synthetic",
            scheduler_name="gto",
            per_tenant={
                name: TenantStats(
                    name=name,
                    finish_cycle=finish,
                    launch_cycle=launch,
                    inter_sm_dram_conflicts=conflicts,
                )
                for name, (finish, launch, conflicts) in tenants.items()
            },
        )

    def test_empty_per_tenant_yields_empty_report(self):
        assert tenant_slowdowns(self._result({}), {}) == {}

    def test_exact_parity_slowdown_is_one(self):
        # Different launch offsets, identical busy spans: exactly 1.0.
        colocated = self._result({"a": (1500, 500, 0)})
        isolated = {"a": self._result({"a": (1300, 300, 0)})}
        row = tenant_slowdowns(colocated, isolated)["a"]
        assert row["slowdown"] == 1.0
        assert row["colocated_cycles"] == 1000.0
        assert row["isolated_cycles"] == 1000.0

    def test_zero_conflicts_share_is_zero_not_nan(self):
        colocated = self._result({"a": (100, 0, 0), "b": (200, 0, 0)})
        isolated = {
            "a": self._result({"a": (100, 0, 0)}),
            "b": self._result({"b": (150, 0, 0)}),
        }
        report = tenant_slowdowns(colocated, isolated)
        for row in report.values():
            assert row["conflict_share"] == 0.0
            assert row["inter_sm_dram_conflicts"] == 0.0

    def test_zero_isolated_cycles_reports_zero_slowdown(self):
        colocated = self._result({"a": (100, 0, 0)})
        isolated = {"a": self._result({"a": (700, 700, 0)})}
        assert tenant_slowdowns(colocated, isolated)["a"]["slowdown"] == 0.0

    def test_single_kernel_baseline_uses_machine_clock(self):
        from repro.gpu.stats import SMStats

        colocated = self._result({"a": (800, 0, 3)})
        baseline = SimulationResult(
            kernel_name="ATAX", scheduler_name="gto", per_sm=[SMStats(cycles=400)]
        )
        row = tenant_slowdowns(colocated, {"a": baseline})["a"]
        assert row["isolated_cycles"] == 400.0
        assert row["slowdown"] == 2.0
        assert row["conflict_share"] == 1.0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestCLI:
    def test_parse_tenant_specs(self):
        tenants = parse_tenant_specs("SM:0-1,compute=2DCONV/ciao_c:2")
        assert tenants[0].name == "SM" and tenants[0].sm_ids == (0, 1)
        assert tenants[1].name == "compute"
        assert tenants[1].scheduler == "ciao-c"  # alias canonicalised
        assert [t.address_space for t in tenants] == [1, 2]

    def test_parse_tenant_specs_dedupes_names(self):
        tenants = parse_tenant_specs("ATAX:0,ATAX:1")
        assert [t.name for t in tenants] == ["ATAX", "ATAX-2"]

    def test_parse_tenant_specs_launch_cycles(self):
        tenants = parse_tenant_specs("SM:0-1@250,2DCONV/ciao_c:2")
        assert tenants[0].launch_cycle == 250
        assert tenants[0].sm_ids == (0, 1)
        assert tenants[1].launch_cycle == 0  # @CYCLE defaults to 0

    @pytest.mark.parametrize("spec", ["ATAX", "ATAX:x-y", "ATAX:3-1", ":0",
                                      "ATAX:0-", "ATAX:-1", "ATAX:0@",
                                      "ATAX:0@-5", "ATAX:0@x"])
    def test_parse_tenant_specs_rejects_garbage(self, spec):
        with pytest.raises(ValueError):
            parse_tenant_specs(spec)

    def test_scenario_pinned_seed_reaches_the_cli_run(self, capsys, monkeypatch):
        # A scenario's pinned seed must survive a bare CLI invocation (the
        # --seed default is None on `repro run`, not 1).
        import dataclasses

        pinned = dataclasses.replace(
            experiments.COLOCATION_SCENARIOS["thrash-vs-compute"],
            name="pinned-seed",
            scale=0.05,
            seed=7,
        )
        monkeypatch.setitem(experiments.COLOCATION_SCENARIOS, "pinned-seed", pinned)
        rc = main(["run", "--scenario", "pinned-seed", "--no-cache", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["seed"] == 7 and data["scale"] == pytest.approx(0.05)

    def test_run_tenants_json(self, capsys):
        rc = main(["run", "--tenants", "ATAX:0,SYRK/ccws:1", "--scale", "0.05",
                   "--no-cache", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["backend"] == "lockstep"
        assert [row["tenant"] for row in data["tenants"]] == ["ATAX", "SYRK"]
        assert data["inter_sm_dram_conflicts"] == sum(
            row["dram_conflicts"] for row in data["tenants"]
        )

    def test_run_scenario_reports_slowdown(self, capsys):
        rc = main(["run", "--scenario", "thrash-vs-compute", "--no-cache", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"] == "thrash-vs-compute"
        assert data["scale"] == pytest.approx(0.1)  # the scenario's pinned scale
        for row in data["tenants"]:
            assert row["slowdown"] > 1.0
            assert row["dram_conflicts"] > 0

    def test_run_tenants_staggered_json(self, capsys):
        rc = main(["run", "--tenants", "ATAX:0@200,SYRK/ccws:1", "--scale", "0.05",
                   "--no-cache", "--json", "--isolated"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        staggered = data["tenants"][0]
        assert staggered["launch"] == 200
        # Slowdown compares busy spans, so the dormant prefix cancels.
        assert data["per_tenant"]["ATAX"]["colocated_cycles"] == (
            staggered["cycles"] - 200
        )

    def test_run_tenants_isolated_table(self, capsys):
        rc = main(["run", "--tenants", "SM:0,2DCONV:1", "--isolated",
                   "--scale", "0.1", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "slowdown" in out and "inter-SM DRAM conflicts" in out

    def test_list_scenarios(self, capsys):
        assert main(["list", "--scenarios"]) == 0
        out = capsys.readouterr().out
        for name in experiments.colocation_scenario_names():
            assert name in out

    def test_list_mentions_scenarios(self, capsys):
        assert main(["list"]) == 0
        assert "thrash-vs-compute" in capsys.readouterr().out

    def test_errors_exit_cleanly(self, capsys):
        assert main(["run", "--tenants", "ATAX:0", "--scenario", "x"]) == 2
        assert main(["run", "ATAX", "--tenants", "ATAX:0", "--no-cache"]) == 2
        assert main(["run", "--no-cache"]) == 2
        assert main(["run", "ATAX", "--isolated", "--no-cache"]) == 2
        assert main(["run", "--tenants", "ATAX:0,SYRK:0", "--no-cache"]) == 2
        assert main(["run", "--tenants", "garbage", "--no-cache"]) == 2
        assert main(["run", "--scenario", "nope", "--no-cache"]) == 2
