"""Shared hypothesis strategies and wire-format helpers for the suite.

Importable as ``from strategies import ...`` — pytest's default import mode
puts ``tests/`` on ``sys.path`` for test modules.  One home for the request
builders that used to be copy-pasted across ``test_run_batch.py``,
``test_properties.py`` and ``test_multi_tenant.py``, and the building
blocks of the differential fuzz harness (``test_differential_fuzz.py``)
and the scenario tests (``test_scenarios.py``).

Every strategy samples *small* workloads (scale 0.02–0.05, tiny seed
pools): each drawn example simulates in milliseconds, so hypothesis can
afford real example counts (the profiles live in the root ``conftest.py``).
"""

import json

from hypothesis import strategies as st

from repro.api import MultiTenantRequest, RunConfig, SimulationRequest, TenantSpec

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - CI installs numpy
    HAVE_NUMPY = False

#: Engines a single-kernel request may pin (vector only when numpy exists).
SINGLE_KERNEL_BACKENDS = ("reference", "vector") if HAVE_NUMPY else ("reference",)

#: Small benchmark/scheduler pools covering the main workload classes
#: (LWS thrasher, SWS, irregular MapReduce) and scheduler mechanisms.
FUZZ_BENCHMARKS = ("ATAX", "SYRK", "WC")
FUZZ_SCHEDULERS = ("gto", "lrr", "ccws")

#: Pinned tiny sizing shared by the multi-tenant and scenario tests.
SMALL = RunConfig(scale=0.05, seed=1)


def pair_request(**overrides) -> MultiTenantRequest:
    """The canonical two-tenant co-location request the suite pins."""
    fields = {
        "tenants": (
            TenantSpec("left", "ATAX", "gto", (0,), address_space=1),
            TenantSpec("right", "SYRK", "ccws", (1,), address_space=2),
        ),
        "run_config": SMALL,
    }
    fields.update(overrides)
    return MultiTenantRequest(**fields)


def result_dicts(results):
    """JSON-normalised ``to_dict`` forms, comparable with plain ``==``."""
    return [json.loads(json.dumps(r.to_dict(), sort_keys=True)) for r in results]


def strip_backend(payloads):
    """Blank the backend field so cross-engine payloads compare equal."""
    for payload in payloads:
        payload["data"]["fields"]["backend"] = ""
    return payloads


def run_configs(*, scale=0.02, max_seed=3):
    """``RunConfig`` strategy at a pinned scale with a tiny seed pool."""
    return st.builds(
        RunConfig,
        scale=st.just(scale),
        seed=st.integers(min_value=1, max_value=max_seed),
    )


def simulation_requests(
    *,
    benchmarks=("ATAX", "SYRK"),
    schedulers=("gto", "lrr"),
    scale=0.02,
    max_seed=3,
    backends=(None, *SINGLE_KERNEL_BACKENDS),
):
    """Single-kernel request strategy (run_batch / differential-fuzz input)."""
    return st.builds(
        SimulationRequest,
        benchmark=st.sampled_from(list(benchmarks)),
        scheduler=st.sampled_from(list(schedulers)),
        run_config=run_configs(scale=scale, max_seed=max_seed),
        backend=st.sampled_from(list(backends)),
    )


@st.composite
def sm_partitions(draw, max_sms=8):
    """A random disjoint SM partition of a small machine into tenants."""
    num_sms = draw(st.integers(min_value=1, max_value=max_sms))
    sm_ids = draw(st.permutations(list(range(num_sms))))
    num_tenants = draw(st.integers(min_value=1, max_value=num_sms))
    if num_tenants == 1:
        cuts = []
    else:
        cuts = sorted(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=num_sms - 1),
                    unique=True,
                    min_size=num_tenants - 1,
                    max_size=num_tenants - 1,
                )
            )
        )
    bounds = [0, *cuts, num_sms]
    return [
        tuple(sorted(sm_ids[lo:hi])) for lo, hi in zip(bounds, bounds[1:])
    ]


@st.composite
def multi_tenant_requests(draw, *, max_sms=8, scale=0.05, stagger_span=2000):
    """A valid multi-tenant request: random partition, mix, launch offsets.

    Half the examples launch simultaneously (the classic path), the other
    half stagger tenant arrivals within ``stagger_span`` cycles.
    """
    partition = draw(sm_partitions(max_sms=max_sms))
    staggered = draw(st.booleans())
    tenants = []
    for index, sm_ids in enumerate(partition):
        launch = (
            draw(st.integers(min_value=0, max_value=stagger_span - 1))
            if staggered
            else 0
        )
        tenants.append(
            TenantSpec(
                name=f"t{index}",
                benchmark=draw(st.sampled_from(FUZZ_BENCHMARKS)),
                scheduler=draw(st.sampled_from(FUZZ_SCHEDULERS)),
                sm_ids=sm_ids,
                address_space=index,
                launch_cycle=launch,
            )
        )
    return MultiTenantRequest(
        tenants=tuple(tenants),
        run_config=RunConfig(
            scale=scale, seed=draw(st.integers(min_value=1, max_value=1000))
        ),
    )
