"""Unit tests for instructions, warps and CTAs."""

import pytest

from repro.gpu.cta import CTA, KernelLaunch
from repro.gpu.instruction import Instruction, InstructionKind
from repro.gpu.warp import Warp, WarpState


def make_warp(instructions, wid=0, cta_id=0, **kwargs):
    return Warp(wid=wid, cta_id=cta_id, instructions=iter(instructions), **kwargs)


class TestInstruction:
    def test_constructors(self):
        assert Instruction.alu().kind is InstructionKind.ALU
        assert Instruction.load([0]).is_load
        assert Instruction.store([0]).is_store
        assert Instruction.shared_load([0]).is_shared_memory
        assert Instruction.barrier().kind is InstructionKind.BARRIER
        assert Instruction.exit().kind is InstructionKind.EXIT

    def test_memory_needs_addresses(self):
        with pytest.raises(ValueError):
            Instruction(InstructionKind.LOAD)
        with pytest.raises(ValueError):
            Instruction(InstructionKind.SHARED_STORE)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Instruction(InstructionKind.ALU, latency=-1)

    def test_classification(self):
        load = Instruction.load([1, 2])
        assert load.is_global_memory and load.is_memory and not load.is_shared_memory
        sld = Instruction.shared_load([0])
        assert sld.is_memory and not sld.is_global_memory


class TestWarp:
    def test_peek_and_advance(self):
        warp = make_warp([Instruction.alu(), Instruction.exit()])
        assert warp.peek().kind is InstructionKind.ALU
        assert warp.advance().kind is InstructionKind.ALU
        assert warp.advance().kind is InstructionKind.EXIT

    def test_exhausted_stream_synthesises_exit(self):
        warp = make_warp([])
        assert warp.peek().kind is InstructionKind.EXIT

    def test_issuable_conditions(self):
        warp = make_warp([Instruction.alu()], max_pending_loads=2)
        assert warp.is_issuable(0)
        warp.pending_loads = 2
        assert not warp.is_issuable(0)
        warp.pending_loads = 1
        assert warp.is_issuable(0)
        warp.active = False
        assert warp.is_ready(0) and not warp.is_issuable(0)
        warp.active = True
        warp.at_barrier = True
        assert not warp.is_issuable(0)
        warp.at_barrier = False
        warp.ready_at = 10
        assert not warp.is_issuable(5)
        assert warp.is_issuable(10)

    def test_states(self):
        warp = make_warp([Instruction.alu()])
        assert warp.state is WarpState.READY
        warp.pending_loads = warp.max_pending_loads
        assert warp.state is WarpState.WAITING_MEMORY
        warp.pending_loads = 0
        warp.active = False
        assert warp.state is WarpState.THROTTLED
        warp.retire()
        assert warp.state is WarpState.FINISHED
        assert not warp.isolated

    def test_note_issue_counts_global_accesses(self):
        warp = make_warp([])
        warp.note_issue(Instruction.load([0]), now=3)
        warp.note_issue(Instruction.alu(), now=4)
        assert warp.instructions_issued == 2
        assert warp.global_accesses == 1
        assert warp.last_issue_cycle == 4


class TestCTA:
    def _cta_with_warps(self, n=3):
        cta = CTA(cta_id=0)
        warps = [make_warp([Instruction.alu()], wid=i) for i in range(n)]
        for warp in warps:
            cta.add_warp(warp)
        return cta, warps

    def test_barrier_releases_when_all_arrive(self):
        cta, warps = self._cta_with_warps(3)
        assert cta.arrive_at_barrier(warps[0]) == []
        assert cta.arrive_at_barrier(warps[1]) == []
        released = cta.arrive_at_barrier(warps[2])
        assert len(released) == 3
        assert all(not w.at_barrier for w in warps)
        assert cta.barriers_completed == 1

    def test_finished_warps_do_not_block_barrier(self):
        cta, warps = self._cta_with_warps(3)
        warps[2].retire()
        cta.arrive_at_barrier(warps[0])
        released = cta.arrive_at_barrier(warps[1])
        assert len(released) == 2

    def test_release_if_unblocked_after_exit(self):
        cta, warps = self._cta_with_warps(2)
        cta.arrive_at_barrier(warps[0])
        warps[1].retire()
        released = cta.release_if_unblocked()
        assert warps[0] in released

    def test_is_finished(self):
        cta, warps = self._cta_with_warps(2)
        assert not cta.is_finished()
        for warp in warps:
            warp.retire()
        assert cta.is_finished()


class TestKernelLaunch:
    def test_validation(self):
        launch = KernelLaunch("k", num_ctas=2, warps_per_cta=4, stream_factory=lambda c, w, g: iter([]))
        launch.validate()
        assert launch.total_warps() == 8
        with pytest.raises(ValueError):
            KernelLaunch("k", 0, 4, lambda c, w, g: iter([])).validate()
        with pytest.raises(ValueError):
            KernelLaunch("k", 1, 1, lambda c, w, g: iter([]), shared_mem_per_cta=-1).validate()


class TestBarrierWaiterCounter:
    """CTA.num_at_barrier mirrors the at_barrier flags (O(1) SM check)."""

    def _cta_with_warps(self, n=3):
        cta = CTA(cta_id=0)
        warps = [make_warp([Instruction.alu()], wid=i) for i in range(n)]
        for warp in warps:
            cta.add_warp(warp)
        return cta, warps

    def test_counter_tracks_arrivals_and_release(self):
        cta, warps = self._cta_with_warps(3)
        cta.arrive_at_barrier(warps[0])
        cta.arrive_at_barrier(warps[1])
        assert cta.num_at_barrier == 2
        cta.arrive_at_barrier(warps[2])  # releases everyone
        assert cta.num_at_barrier == 0
        assert all(not w.at_barrier for w in warps)

    def test_counter_after_release_if_unblocked(self):
        cta, warps = self._cta_with_warps(2)
        cta.arrive_at_barrier(warps[0])
        assert cta.num_at_barrier == 1
        warps[1].retire()
        cta.release_if_unblocked()
        assert cta.num_at_barrier == 0

    def test_interned_address_free_instructions(self):
        # Frozen, address-free instructions are shared instances.
        assert Instruction.alu() is Instruction.alu()
        assert Instruction.barrier() is Instruction.barrier()
        assert Instruction.exit() is Instruction.exit()
        assert Instruction.alu(4) is Instruction.alu(4)
        assert Instruction.alu(4) is not Instruction.alu()
        # Address-carrying instructions stay distinct objects.
        assert Instruction.load([0]) is not Instruction.load([0])
