"""Unit tests for the baseline warp schedulers."""

import pytest

from repro.gpu.instruction import Instruction
from repro.gpu.warp import Warp
from repro.sched import (
    BestSWLScheduler,
    CCWSScheduler,
    GTOScheduler,
    LooseRoundRobinScheduler,
    StatPCALScheduler,
    TwoLevelScheduler,
    create_scheduler,
    scheduler_names,
)
from repro.sched.registry import scheduler_factory, uses_shared_cache
from repro.mem.victim_tag_array import VTAHit


def make_warp(wid, assigned_at=0):
    return Warp(wid=wid, cta_id=0, instructions=iter([]), assigned_at=assigned_at)


class FakeStats:
    def __init__(self):
        self.throttle_events = 0
        self.reactivate_events = 0


class FakeMemory:
    def __init__(self, utilization=0.0):
        self._util = utilization

    def dram_utilization(self, elapsed):
        return self._util


class FakeSM:
    """Minimal stand-in for the SM the schedulers attach to."""

    def __init__(self, warps, utilization=0.0):
        self.warps = warps
        self.stats = FakeStats()
        self.memory = FakeMemory(utilization)
        self.shared_cache = None


class TestRegistry:
    def test_all_names_constructible(self):
        for name in scheduler_names():
            assert create_scheduler(name) is not None

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            create_scheduler("nope")

    def test_uses_shared_cache(self):
        assert uses_shared_cache("ciao-p")
        assert uses_shared_cache("ciao-c")
        assert not uses_shared_cache("ciao-t")
        assert not uses_shared_cache("gto")

    def test_factory(self):
        factory = scheduler_factory("gto")
        a, b = factory(), factory()
        assert a is not b


class TestGTO:
    def test_oldest_selected_first(self):
        sched = GTOScheduler()
        warps = [make_warp(2, assigned_at=5), make_warp(1, assigned_at=0)]
        assert sched.select(warps, 0).wid == 1

    def test_greedy_sticks_to_last_issued(self):
        sched = GTOScheduler()
        warps = [make_warp(0), make_warp(1)]
        sched.notify_issue(warps[1], Instruction.alu(), 0)
        assert sched.select(warps, 1).wid == 1

    def test_greedy_reset_on_retire(self):
        sched = GTOScheduler()
        warps = [make_warp(0), make_warp(1)]
        sched.notify_issue(warps[1], Instruction.alu(), 0)
        sched.on_warp_retired(warps[1], 1)
        assert sched.select(warps, 2).wid == 0

    def test_empty_selection(self):
        assert GTOScheduler().select([], 0) is None


class TestLRRAndTwoLevel:
    def test_lrr_round_robin_order(self):
        sched = LooseRoundRobinScheduler()
        warps = [make_warp(i) for i in range(3)]
        picked = [sched.select(warps, t).wid for t in range(6)]
        assert picked == [0, 1, 2, 0, 1, 2]

    def test_two_level_prefers_active_group(self):
        sched = TwoLevelScheduler(group_size=2)
        warps = [make_warp(i) for i in range(4)]
        first = sched.select(warps, 0)
        assert first.wid in (0, 1)
        # When the active group has no issuable warp, switch groups.
        later = sched.select([warps[2], warps[3]], 1)
        assert later.wid in (2, 3)

    def test_two_level_invalid_group(self):
        with pytest.raises(ValueError):
            TwoLevelScheduler(group_size=0)


class TestBestSWL:
    def test_limit_applied_on_attach(self):
        warps = [make_warp(i) for i in range(6)]
        sm = FakeSM(warps)
        sched = BestSWLScheduler(warp_limit=2)
        sched.attach(sm)
        active = [w for w in warps if w.active]
        assert len(active) == 2
        assert {w.wid for w in active} == {0, 1}
        assert sm.stats.throttle_events == 4

    def test_limit_reapplied_after_retirement(self):
        warps = [make_warp(i) for i in range(4)]
        sm = FakeSM(warps)
        sched = BestSWLScheduler(warp_limit=2)
        sched.attach(sm)
        warps[0].retire()
        sched.on_warp_retired(warps[0], 10)
        active = [w for w in warps if not w.finished and w.active]
        assert len(active) == 2

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            BestSWLScheduler(warp_limit=0)


class TestCCWS:
    def _vta_hit(self, wid, evictor=7):
        return VTAHit(wid=wid, block=1, evictor_wid=evictor)

    def test_score_bumped_on_vta_hit(self):
        warps = [make_warp(i) for i in range(4)]
        sm = FakeSM(warps)
        sched = CCWSScheduler()
        sched.attach(sm)
        sched.notify_global_access(warps[0], False, self._vta_hit(0), "l1d", 0)
        assert sched.score(0) > sched.score(1)

    def test_high_scores_push_low_score_warps_below_cutoff(self):
        warps = [make_warp(i) for i in range(8)]
        sm = FakeSM(warps)
        sched = CCWSScheduler(base_score=100, score_bump=400, update_interval=1)
        sched.attach(sm)
        for _ in range(4):
            sched.notify_global_access(warps[0], False, self._vta_hit(0), "l1d", 0)
            sched.notify_global_access(warps[1], False, self._vta_hit(1), "l1d", 0)
        sched.on_cycle(10)
        throttled = [w for w in warps if not w.active]
        assert throttled, "some warps should be throttled once scores stack up"
        # The top-scoring warp always survives the cutoff; low-score warps
        # are pushed below it and lose issue rights.
        assert warps[0].active, "the highest-score warp keeps running"
        assert any(not w.active for w in warps[2:]), "low-locality warps are throttled"

    def test_scores_decay_back_to_base(self):
        warps = [make_warp(0)]
        sm = FakeSM(warps)
        sched = CCWSScheduler(decay_per_update=50, update_interval=1)
        sched.attach(sm)
        sched.notify_global_access(warps[0], False, self._vta_hit(0), "l1d", 0)
        for now in range(1, 10):
            sched.on_cycle(now)
        assert sched.score(0) == pytest.approx(sched.base_score)

    def test_retired_warp_removed_from_stack(self):
        warps = [make_warp(i) for i in range(2)]
        sm = FakeSM(warps)
        sched = CCWSScheduler()
        sched.attach(sm)
        warps[0].retire()
        sched.on_warp_retired(warps[0], 5)
        assert 0 not in sched._scores


class TestStatPCAL:
    def test_tokens_assigned_to_oldest(self):
        warps = [make_warp(i, assigned_at=i) for i in range(6)]
        sm = FakeSM(warps)
        sched = StatPCALScheduler(token_count=2)
        sched.attach(sm)
        assert sched.holds_token(0) and sched.holds_token(1)
        assert not sched.holds_token(5)

    def test_non_token_warps_bypass_when_bandwidth_available(self):
        warps = [make_warp(i) for i in range(4)]
        sm = FakeSM(warps, utilization=0.1)
        sched = StatPCALScheduler(token_count=1, update_interval=1)
        sched.attach(sm)
        sched.on_cycle(1)
        assert sched.should_bypass_l1(warps[3], 1)
        assert not sched.should_bypass_l1(warps[0], 1)

    def test_non_token_warps_throttled_when_bandwidth_saturated(self):
        warps = [make_warp(i) for i in range(4)]
        sm = FakeSM(warps, utilization=0.99)
        sched = StatPCALScheduler(token_count=1, update_interval=1)
        sched.attach(sm)
        sched.on_cycle(1)
        assert not sched.should_bypass_l1(warps[3], 1)
        assert not warps[3].active
        assert warps[0].active

    def test_token_handover_on_retire(self):
        warps = [make_warp(i, assigned_at=i) for i in range(3)]
        sm = FakeSM(warps)
        sched = StatPCALScheduler(token_count=1)
        sched.attach(sm)
        warps[0].retire()
        sched.on_warp_retired(warps[0], 1)
        assert sched.holds_token(1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StatPCALScheduler(token_count=0)
        with pytest.raises(ValueError):
            StatPCALScheduler(bandwidth_threshold=0.0)
