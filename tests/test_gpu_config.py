"""Unit tests for the machine configuration (Table I and Fig. 12 variants)."""

import pytest

from repro.gpu.config import GPUConfig
from repro.mem.dram import DRAMConfig


class TestGPUConfig:
    def test_table1_defaults(self):
        config = GPUConfig.gtx480()
        assert config.chip_sms == 15
        assert config.max_threads_per_sm == 1536
        assert config.max_warps_per_sm == 48
        assert config.warp_size == 32
        assert config.l1d.size_bytes == 16 * 1024
        assert config.shared_memory_bytes == 48 * 1024
        assert config.l2.size_bytes == 768 * 1024
        assert config.vta.entries_per_warp == 8
        assert config.vta.num_warps == 48

    def test_validation(self):
        GPUConfig.gtx480().validate()
        with pytest.raises(ValueError):
            GPUConfig(num_sms=0).validate()
        with pytest.raises(ValueError):
            GPUConfig(issue_width=0).validate()
        with pytest.raises(ValueError):
            GPUConfig(max_threads_per_sm=1000).validate()  # not multiple of 32

    def test_fig12a_large_l1d_variant(self):
        config = GPUConfig.gtx480_large_l1d()
        assert config.l1d.size_bytes == 48 * 1024
        assert config.shared_memory_bytes == 16 * 1024

    def test_fig12a_8way_variant(self):
        config = GPUConfig.gtx480_8way_l1d()
        assert config.l1d.associativity == 8
        assert config.l1d.size_bytes == 16 * 1024

    def test_fig12b_2x_dram_variant(self):
        config = GPUConfig.gtx480_2x_dram()
        assert config.dram.bytes_per_cycle == pytest.approx(
            2 * DRAMConfig.gtx480().bytes_per_cycle
        )

    def test_with_overrides(self):
        config = GPUConfig.gtx480().with_overrides(num_sms=2)
        assert config.num_sms == 2
        # original untouched
        assert GPUConfig.gtx480().num_sms == 1
