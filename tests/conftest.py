"""Shared test fixtures: keep integrity side effects out of the checkout.

Corrupt-entry tests quarantine damaged artifacts; without this fixture
they would land in ``.repro/quarantine`` under the working directory.
"""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_quarantine(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_QUARANTINE_DIR", str(tmp_path / "quarantine"))
