"""Tests for the perf harness (repro.harness.bench)."""

import json

import pytest

from repro.harness import bench as bench_mod
from repro.harness.bench import (
    BENCH_SCHEMA,
    BenchCase,
    bench_matrix,
    compare_reports,
    load_report,
    record_bench,
    run_bench,
    run_case,
    write_report,
)
from repro.harness.ledger import read_ledger, summarize_ledger

#: A deliberately tiny case so the whole module stays fast.
TINY = BenchCase(benchmark="ATAX", scheduler="gto", scale=0.02, seed=1)


class TestMatrix:
    def test_standard_matrix_shape(self):
        cases = bench_matrix()
        assert len(cases) == len(bench_mod.STANDARD_BENCHMARKS) * len(
            bench_mod.STANDARD_SCHEDULERS
        )
        assert all(c.backend == "reference" for c in cases)
        assert all(c.scale == bench_mod.STANDARD_SCALE for c in cases)

    def test_quick_matrix_is_a_smoke_subset(self):
        quick = bench_matrix(quick=True)
        assert len(quick) < len(bench_matrix())
        assert all(c.scale == bench_mod.QUICK_SCALE for c in quick)

    def test_overrides(self):
        cases = bench_matrix(
            benchmarks=["SYRK"], schedulers=["lrr"], scale=0.1, backend="lockstep"
        )
        assert cases == [
            BenchCase(benchmark="SYRK", scheduler="lrr", backend="lockstep", scale=0.1)
        ]

    def test_quick_matrix_gates_vector_when_available(self):
        """The pinned quick matrix carries a vector smoke case (numpy present)."""
        pytest.importorskip("numpy")
        quick = bench_matrix(quick=True)
        vector_cases = [c for c in quick if c.backend == "vector"]
        assert len(vector_cases) == 1
        assert vector_cases[0].scenario is None
        # A quick matrix already *on* the vector backend does not duplicate it.
        all_vector = bench_matrix(quick=True, backend="vector")
        assert sum(1 for c in all_vector if c.backend == "vector") == len(
            all_vector
        ) - 1  # every grid case + the lockstep co-location scenario

    def test_quick_matrix_omits_vector_when_unavailable(self, monkeypatch):
        import repro.backends as backends

        def missing():
            raise ImportError("No module named 'numpy'")

        monkeypatch.setattr(backends, "_load_vector_backend", missing)
        quick = bench_matrix(quick=True)
        assert all(c.backend != "vector" for c in quick)


class TestRun:
    def test_run_case_measures_cycles_per_second(self):
        measured = run_case(TINY)
        assert measured["cycles"] > 0
        assert measured["wall_seconds"] > 0
        assert measured["cycles_per_second"] == pytest.approx(
            measured["cycles"] / measured["wall_seconds"], rel=1e-3
        )
        assert measured["backend"] == "reference"

    def test_run_case_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            run_case(TINY, repeats=0)

    def test_run_bench_report_envelope(self):
        report = run_bench([TINY], warmup=False)
        assert report["schema"] == BENCH_SCHEMA
        assert report["kind"] == "BenchReport"
        assert len(report["cases"]) == 1
        aggregate = report["aggregate"]
        assert aggregate["cycles"] == report["cases"][0]["cycles"]
        assert aggregate["cycles_per_second"] > 0

    def test_run_bench_requires_cases(self):
        with pytest.raises(ValueError):
            run_bench([])


class TestReportIO:
    def test_write_and_load_report(self, tmp_path):
        report = run_bench([TINY], warmup=False)
        path = write_report(report, tmp_path)
        assert path.name == f"BENCH_{report['rev']}.json"
        assert load_report(path)["aggregate"] == report["aggregate"]

    def test_load_report_rejects_foreign_payloads(self, tmp_path):
        bogus = tmp_path / "BENCH_x.json"
        bogus.write_text(json.dumps({"kind": "SomethingElse"}))
        with pytest.raises(ValueError):
            load_report(bogus)
        bogus.write_text(json.dumps({"kind": "BenchReport", "schema": 999}))
        with pytest.raises(ValueError):
            load_report(bogus)

    def test_record_bench_appends_ledger_line(self, tmp_path):
        report = run_bench([TINY], warmup=False)
        ledger = tmp_path / "ledger.jsonl"
        assert record_bench(report, path=ledger) == ledger
        entries = read_ledger(ledger)
        assert len(entries) == 1
        assert entries[0]["kind"] == "bench"
        assert entries[0]["cycles_per_second"] == report["aggregate"]["cycles_per_second"]

    def test_summarize_ledger_separates_bench_from_sweeps(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        report = run_bench([TINY], warmup=False)
        record_bench(report, path=ledger)
        record_bench(report, path=ledger)
        summary = summarize_ledger(read_ledger(ledger))
        assert summary["bench_runs"] == 2
        assert summary["sweeps"] == 0  # bench entries are not sweeps
        assert summary["bench_latest_cycles_per_second"] > 0
        assert summary["bench_best_cycles_per_second"] >= (
            summary["bench_latest_cycles_per_second"]
        )


class TestBaselineGate:
    def _report_with_cps(self, cps):
        case = {
            "benchmark": "ATAX", "scheduler": "gto", "backend": "reference",
            "scale": 0.02, "seed": 1,
            "wall_seconds": 1.0, "cycles": int(cps), "cycles_per_second": cps,
        }
        return {
            "schema": BENCH_SCHEMA, "kind": "BenchReport", "rev": "x",
            "cases": [case],
            "aggregate": {"wall_seconds": 1.0, "cycles": int(cps), "cycles_per_second": cps},
        }

    def test_no_regression_within_tolerance(self):
        current, baseline = self._report_with_cps(80.0), self._report_with_cps(100.0)
        assert compare_reports(current, baseline, tolerance=0.30) == []

    def test_regression_beyond_tolerance_is_reported(self):
        current, baseline = self._report_with_cps(60.0), self._report_with_cps(100.0)
        problems = compare_reports(current, baseline, tolerance=0.30)
        assert problems and any("ATAX/gto" in p for p in problems)

    def test_unmatched_cases_are_ignored(self):
        current = self._report_with_cps(10.0)
        baseline = self._report_with_cps(100.0)
        baseline["cases"][0]["benchmark"] = "SYRK"  # no overlap
        assert compare_reports(current, baseline) == []

    def test_bad_tolerance_rejected(self):
        report = self._report_with_cps(1.0)
        with pytest.raises(ValueError):
            compare_reports(report, report, tolerance=1.5)

    def test_case_deltas_reports_speedups(self):
        current, baseline = self._report_with_cps(150.0), self._report_with_cps(100.0)
        deltas = bench_mod.case_deltas(current, baseline)
        assert len(deltas) == 1
        assert deltas[0]["speedup"] == pytest.approx(1.5)
        assert deltas[0]["delta_pct"] == pytest.approx(50.0)
        assert deltas[0]["baseline_cycles_per_second"] == 100.0

    def test_case_deltas_tolerates_cases_missing_from_baseline(self):
        """New cases (e.g. a vector row) get None fields, never an error."""
        current = self._report_with_cps(150.0)
        current["cases"][0]["backend"] = "vector"  # the baseline predates it
        baseline = self._report_with_cps(100.0)
        deltas = bench_mod.case_deltas(current, baseline)
        assert deltas[0]["baseline_cycles_per_second"] is None
        assert deltas[0]["speedup"] is None
        # ...and the regression gate ignores the unmatched case entirely.
        assert compare_reports(current, baseline) == []

    def test_checked_in_ci_baseline_is_loadable(self):
        from pathlib import Path

        baseline = load_report(
            Path(__file__).parent.parent / "benchmarks" / "bench_baseline.json"
        )
        assert baseline["cases"], "CI baseline must pin at least one case"
        keys = {(c["benchmark"], c["scheduler"]) for c in baseline["cases"]}
        # The baseline must cover the quick matrix, else the CI gate is void.
        for benchmark in bench_mod.QUICK_BENCHMARKS:
            for scheduler in bench_mod.QUICK_SCHEDULERS:
                assert (benchmark, scheduler) in keys
