"""Tests for the ``repro`` command-line interface."""

import json

import pytest

from repro.cli import REPRODUCE_TARGETS, build_parser, main
from repro.harness import experiments


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["run", "ATAX"],
            ["sweep", "-b", "ATAX", "-s", "gto"],
            ["reproduce", "fig8"],
            ["cache"],
            ["list"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_every_reproduce_target_maps_to_an_experiment(self):
        for target, fn_name in REPRODUCE_TARGETS.items():
            assert hasattr(experiments, fn_name), (target, fn_name)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ATAX" in out and "ciao-c" in out and "fig8" in out

    def test_list_backends_shows_availability(self, capsys):
        assert main(["list", "--backends"]) == 0
        out = capsys.readouterr().out
        for name in ("reference", "lockstep", "vector"):
            assert name in out
        # The core engines are always available; vector is flagged if and
        # only if numpy is missing (some CI legs run without it on purpose).
        try:
            import numpy  # noqa: F401

            assert "unavailable" not in out
        except ImportError:
            assert "vector (unavailable:" in out

    def test_list_backends_flags_unavailable_engines(self, capsys, monkeypatch):
        import repro.backends as backends

        def missing():
            raise ImportError("No module named 'numpy'")

        monkeypatch.setattr(backends, "_load_vector_backend", missing)
        assert main(["list", "--backends"]) == 0
        out = capsys.readouterr().out
        assert "vector (unavailable:" in out and "numpy" in out
        # Selecting the unavailable engine fails cleanly, not with a traceback.
        rc = main(["run", "ATAX", "gto", "--scale", "0.02", "--backend", "vector"])
        assert rc == 2
        assert "numpy" in capsys.readouterr().err

    def test_run_json(self, capsys):
        rc = main(["run", "ATAX", "gto", "ciao_c",
                   "--scale", "0.05", "--no-cache", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["benchmark"] == "ATAX"
        schedulers = [row["scheduler"] for row in data["rows"]]
        assert schedulers == ["gto", "ciao-c"]  # alias canonicalised
        assert all(row["ipc"] > 0 for row in data["rows"])

    def test_sweep_json(self, capsys):
        rc = main(["sweep", "-b", "ATAX", "SYRK", "-s", "gto", "ciao-c",
                   "--scale", "0.05", "--no-cache", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["benchmarks"] == ["ATAX", "SYRK"]
        assert data["baseline"] == "gto"
        assert data["normalized_ipc"]["ATAX"]["gto"] == pytest.approx(1.0)

    def test_sweep_selector(self, capsys):
        rc = main(["sweep", "-b", "memory-intensive", "-s", "gto",
                   "--scale", "0.03", "--no-cache", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert "GESUMMV" in data["benchmarks"] and len(data["benchmarks"]) == 7

    def test_sweep_seed_per_job_is_deterministic(self, capsys):
        argv = ["sweep", "-b", "ATAX", "-s", "gto", "--scale", "0.05",
                "--seed-per-job", "--no-cache", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_reproduce_table(self, capsys):
        rc = main(["reproduce", "table1"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_sms"] == 15

    def test_reproduce_to_file(self, tmp_path, capsys):
        out = tmp_path / "fig1b.json"
        rc = main(["reproduce", "fig1b", "--scale", "0.05", "--no-cache",
                   "--out", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert set(data["rows"]) == {"best-swl", "ccws"}

    def test_reproduce_unknown_figure(self, capsys):
        assert main(["reproduce", "fig99"]) == 2

    def test_reproduce_forwards_seed_scale_workers(self, monkeypatch, capsys):
        seen = {}

        def fake(**kwargs):
            seen.update(kwargs)
            return {"ok": True}

        monkeypatch.setattr(experiments, "fig1_bestswl_vs_ccws", fake)
        assert main(["reproduce", "fig1b", "--seed", "7", "--scale", "0.2",
                     "--workers", "2", "--no-cache"]) == 0
        assert seen["seed"] == 7
        assert seen["scale"] == pytest.approx(0.2)
        assert seen["workers"] == 2
        assert seen["cache"] is None

    def test_unknown_benchmark_exits_cleanly(self, capsys):
        assert main(["run", "NOPE", "--no-cache"]) == 2

    def test_cache_info_and_clear(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache"]) == 0
        assert str(tmp_path) in capsys.readouterr().out
        assert main(["cache", "--clear"]) == 0
        assert "removed 0" in capsys.readouterr().out
