"""Tests for the ``repro`` command-line interface."""

import json

import pytest

from repro.cli import REPRODUCE_TARGETS, build_parser, main
from repro.harness import experiments


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["run", "ATAX"],
            ["sweep", "-b", "ATAX", "-s", "gto"],
            ["reproduce", "fig8"],
            ["cache"],
            ["list"],
            ["serve", "--port", "0", "--workers", "1"],
            ["submit", "ATAX", "gto", "--scale", "0.1"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_every_reproduce_target_maps_to_an_experiment(self):
        for target, fn_name in REPRODUCE_TARGETS.items():
            assert hasattr(experiments, fn_name), (target, fn_name)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ATAX" in out and "ciao-c" in out and "fig8" in out

    def test_list_backends_shows_availability(self, capsys):
        assert main(["list", "--backends"]) == 0
        out = capsys.readouterr().out
        for name in ("reference", "lockstep", "vector", "chaos"):
            assert name in out
        # The chaos wrapper is *expected* to be unavailable until a fault
        # plan is configured; its listing must say so and point at the knob.
        assert "chaos (unavailable:" in out and "fault plan" in out
        # The core engines are always available; vector is flagged if and
        # only if numpy is missing (some CI legs run without it on purpose).
        core = [line for line in out.splitlines()
                if not line.startswith("chaos")]
        try:
            import numpy  # noqa: F401

            assert all("unavailable" not in line for line in core)
        except ImportError:
            assert "vector (unavailable:" in out

    def test_list_backends_flags_unavailable_engines(self, capsys, monkeypatch):
        import repro.backends as backends

        def missing():
            raise ImportError("No module named 'numpy'")

        monkeypatch.setattr(backends, "_load_vector_backend", missing)
        assert main(["list", "--backends"]) == 0
        out = capsys.readouterr().out
        assert "vector (unavailable:" in out and "numpy" in out
        # Selecting the unavailable engine fails cleanly, not with a traceback.
        rc = main(["run", "ATAX", "gto", "--scale", "0.02", "--backend", "vector"])
        assert rc == 2
        assert "numpy" in capsys.readouterr().err

    def test_run_json(self, capsys):
        rc = main(["run", "ATAX", "gto", "ciao_c",
                   "--scale", "0.05", "--no-cache", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["benchmark"] == "ATAX"
        schedulers = [row["scheduler"] for row in data["rows"]]
        assert schedulers == ["gto", "ciao-c"]  # alias canonicalised
        assert all(row["ipc"] > 0 for row in data["rows"])

    def test_sweep_json(self, capsys):
        rc = main(["sweep", "-b", "ATAX", "SYRK", "-s", "gto", "ciao-c",
                   "--scale", "0.05", "--no-cache", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["benchmarks"] == ["ATAX", "SYRK"]
        assert data["baseline"] == "gto"
        assert data["normalized_ipc"]["ATAX"]["gto"] == pytest.approx(1.0)

    def test_sweep_selector(self, capsys):
        rc = main(["sweep", "-b", "memory-intensive", "-s", "gto",
                   "--scale", "0.03", "--no-cache", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert "GESUMMV" in data["benchmarks"] and len(data["benchmarks"]) == 7

    def test_sweep_seed_per_job_is_deterministic(self, capsys):
        argv = ["sweep", "-b", "ATAX", "-s", "gto", "--scale", "0.05",
                "--seed-per-job", "--no-cache", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_reproduce_table(self, capsys):
        rc = main(["reproduce", "table1"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_sms"] == 15

    def test_reproduce_to_file(self, tmp_path, capsys):
        out = tmp_path / "fig1b.json"
        rc = main(["reproduce", "fig1b", "--scale", "0.05", "--no-cache",
                   "--out", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert set(data["rows"]) == {"best-swl", "ccws"}

    def test_reproduce_unknown_figure(self, capsys):
        assert main(["reproduce", "fig99"]) == 2

    def test_reproduce_forwards_seed_scale_workers(self, monkeypatch, capsys):
        seen = {}

        def fake(**kwargs):
            seen.update(kwargs)
            return {"ok": True}

        monkeypatch.setattr(experiments, "fig1_bestswl_vs_ccws", fake)
        assert main(["reproduce", "fig1b", "--seed", "7", "--scale", "0.2",
                     "--workers", "2", "--no-cache"]) == 0
        assert seen["seed"] == 7
        assert seen["scale"] == pytest.approx(0.2)
        assert seen["workers"] == 2
        assert seen["cache"] is None

    def test_unknown_benchmark_exits_cleanly(self, capsys):
        assert main(["run", "NOPE", "--no-cache"]) == 2

    def test_cache_info_and_clear(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache"]) == 0
        assert str(tmp_path) in capsys.readouterr().out
        assert main(["cache", "--clear"]) == 0
        assert "removed 0" in capsys.readouterr().out


class TestCacheStats:
    def test_missing_ledger_explained_not_empty(self, monkeypatch, tmp_path, capsys):
        # A fresh checkout has no .repro/ at all: the command must say so
        # plainly and exit 0 instead of printing a confusing empty report.
        monkeypatch.setenv(
            "REPRO_LEDGER_PATH", str(tmp_path / "nope" / "ledger.jsonl")
        )
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "no bench ledger yet" in out
        assert "repro sweep" in out  # the hint tells the user how to create one

    def test_existing_but_empty_ledger_explained(self, monkeypatch, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        path.write_text("")
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        assert main(["cache", "stats"]) == 0
        assert "has no entries yet" in capsys.readouterr().out

    def test_serve_sessions_summarised(self, monkeypatch, tmp_path, capsys):
        import json as json_mod

        path = tmp_path / "ledger.jsonl"
        row = {
            "kind": "serve", "ts": 1.0, "requests": 5, "hits": 1,
            "coalesced": 1, "executed": 3, "failed": 0, "rejected": 0,
            "batches": 2, "uptime_seconds": 9.0, "backend": "reference",
        }
        path.write_text(json_mod.dumps(row) + "\n")
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "serve sessions  : 1" in out
        assert "5 requests" in out and "1 coalesced" in out
        # A serve-only ledger has no sweeps: the recent-sweeps table must
        # be omitted, not crash on an empty row list.
        assert "most recent sweeps" not in out


class TestServeCli:
    def test_serve_rejects_bad_knobs(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        assert main(["serve", "--batch-max", "0"]) == 2
        assert main(["serve", "--linger", "-1"]) == 2
        assert main(["serve", "--backend", "not-a-backend"]) == 2

    def test_submit_connection_refused_is_clean(self, capsys):
        # Nothing listens on this port: the client must fail with rc 1 and
        # a message, not a traceback.
        rc = main([
            "submit", "ATAX", "gto", "--scale", "0.02",
            "--url", "http://127.0.0.1:9", "--timeout", "5",
        ])
        assert rc == 1
        assert capsys.readouterr().err

    def test_submit_hung_server_times_out_with_exit_code_3(self, capsys):
        import socket
        import threading

        # A "server" that accepts the TCP connection and then never sends a
        # byte back: the client must distinguish this from connection-refused
        # (rc 1) with a dedicated exit code so scripts can tell "hung" from
        # "down".
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        held: list = []

        def accept_and_hold():
            try:
                conn, _ = listener.accept()
                held.append(conn)  # keep it open; never respond
            except OSError:
                pass

        thread = threading.Thread(target=accept_and_hold, daemon=True)
        thread.start()
        try:
            rc = main([
                "submit", "ATAX", "gto", "--scale", "0.02",
                "--url", f"http://127.0.0.1:{port}", "--timeout", "0.5",
            ])
        finally:
            listener.close()
            for conn in held:
                conn.close()
            thread.join(timeout=5)
        assert rc == 3
        err = capsys.readouterr().err
        assert "never responded" in err and "timed out" in err

    def test_submit_round_trip_against_live_service(self, capsys):
        import asyncio
        import threading

        from repro.serve import ReproService

        service = ReproService(host="127.0.0.1", port=0, cache=None, workers=1)
        started = threading.Event()

        def run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            loop.run_until_complete(service.start())
            started.set()
            loop.run_until_complete(service.wait_closed())
            loop.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(timeout=15)
        try:
            url = f"http://127.0.0.1:{service.port}"
            rc = main([
                "submit", "ATAX", "gto", "--scale", "0.02", "--url", url,
            ])
            out = capsys.readouterr().out
            assert rc == 0
            assert "executed via job" in out and "ipc" in out
            rc = main([
                "submit", "ATAX", "gto", "--scale", "0.02",
                "--url", url, "--json",
            ])
            payload = json.loads(capsys.readouterr().out)
            assert payload["kind"] == "SimulationResult"
        finally:
            import http.client

            conn = http.client.HTTPConnection(
                "127.0.0.1", service.port, timeout=30
            )
            conn.request("POST", "/shutdown", b"")
            conn.getresponse().read()
            conn.close()
            thread.join(timeout=60)
        assert not thread.is_alive()
