"""Circuit breaker state machine + the serve queue's per-backend breakers."""

import pytest

from repro.api import SimulationRequest
from repro.harness.breaker import CircuitBreaker, CircuitOpenError
from repro.harness.parallel import RetryPolicy
from repro.harness.runner import RunConfig
from repro.serve.queue import BatchQueue


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(**kwargs):
    clock = FakeClock()
    defaults = dict(seed=7, probe_base=1.0, jitter=0.0, clock=clock)
    defaults.update(kwargs)
    return CircuitBreaker("worker:a", **defaults), clock


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_threshold_failures_trip_open(self):
        breaker, _ = make_breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_consecutive_failures(self):
        breaker, _ = make_breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = make_breaker()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(breaker.probe_delay(1) + 0.01)
        assert breaker.allow()  # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # everyone else waits on the probe

    def test_probe_success_closes(self):
        breaker, clock = make_breaker()
        breaker.record_failure()
        clock.advance(breaker.probe_delay(1) + 0.01)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_with_longer_deadline(self):
        breaker, clock = make_breaker()
        breaker.record_failure()
        first_delay = breaker.seconds_until_probe()
        clock.advance(first_delay + 0.01)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert breaker.seconds_until_probe() > first_delay

    def test_opens_survive_success(self):
        # A target that oscillates (passes a probe, then fails again) must
        # back off further each round instead of retrying at full speed.
        breaker, clock = make_breaker()
        breaker.record_failure()
        clock.advance(breaker.seconds_until_probe() + 0.01)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.opens == 1  # not reset by the success
        breaker.record_failure()
        assert breaker.opens == 2
        assert breaker.seconds_until_probe() > breaker.probe_delay(1)

    def test_seconds_until_probe_zero_when_closed(self):
        breaker, _ = make_breaker()
        assert breaker.seconds_until_probe() == 0.0


class TestProbeDelays:
    def test_deterministic_in_seed_and_key(self):
        a = CircuitBreaker("w", seed=7, probe_base=0.5)
        b = CircuitBreaker("w", seed=7, probe_base=0.5)
        assert [a.probe_delay(n) for n in range(1, 5)] == [
            b.probe_delay(n) for n in range(1, 5)
        ]

    def test_jitter_varies_with_seed(self):
        a = CircuitBreaker("w", seed=7, probe_base=0.5)
        b = CircuitBreaker("w", seed=8, probe_base=0.5)
        assert a.probe_delay(1) != b.probe_delay(1)

    def test_exponential_growth_capped(self):
        breaker = CircuitBreaker(
            "w", seed=1, probe_base=1.0, probe_factor=2.0, probe_max=4.0,
            jitter=0.0,
        )
        assert breaker.probe_delay(1) == 1.0
        assert breaker.probe_delay(2) == 2.0
        assert breaker.probe_delay(3) == 4.0
        assert breaker.probe_delay(10) == 4.0  # capped

    def test_jitter_bounded(self):
        breaker = CircuitBreaker("w", seed=3, probe_base=1.0, jitter=0.5)
        delay = breaker.probe_delay(1)
        assert 1.0 <= delay <= 1.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"probe_base": -1.0},
            {"probe_factor": 0.5},
            {"jitter": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker("w", **kwargs)


class TestBatchQueueBreakers:
    """The serve dispatcher's per-backend breakers (worker-thread body)."""

    def request(self):
        return SimulationRequest(
            "ATAX", "gto", RunConfig(scale=0.05, seed=1), backend="reference"
        )

    def queue(self, **kwargs):
        # backoff_base doubles as the breaker's probe_base: keep it large so
        # an opened circuit stays open for the rest of the test instead of
        # instantly admitting a half-open probe.
        kwargs.setdefault("retry", RetryPolicy(max_attempts=1, backoff_base=30.0))
        return BatchQueue(breaker_threshold=2, **kwargs)

    def test_unattributed_failures_open_the_backend_circuit(self, monkeypatch):
        calls = []

        def boom(requests, cache=None):
            calls.append(len(requests))
            raise RuntimeError("engine crashed")

        monkeypatch.setattr("repro.serve.queue.run_batch", boom)
        queue = self.queue()
        for _ in range(2):  # threshold = 2
            (result, error), = queue._execute_batch([self.request()])
            assert result is None
            assert isinstance(error, RuntimeError)
        assert queue.breaker_states() == {"reference": "open"}

        # Open circuit: requests are refused without touching the engine.
        (result, error), = queue._execute_batch([self.request()])
        assert result is None
        assert isinstance(error, CircuitOpenError)
        assert len(calls) == 2

    def test_probe_success_recloses(self, monkeypatch):
        monkeypatch.setattr(
            "repro.serve.queue.run_batch",
            lambda requests, cache=None: (_ for _ in ()).throw(
                RuntimeError("down")
            ),
        )
        queue = self.queue()
        for _ in range(2):
            queue._execute_batch([self.request()])
        breaker = queue._breakers["reference"]
        assert breaker.state == "open"
        # Force the probe window open and let the backend recover.
        breaker._probe_at = 0.0
        monkeypatch.setattr(
            "repro.serve.queue.run_batch",
            lambda requests, cache=None: ["recovered"] * len(requests),
        )
        (result, error), = queue._execute_batch([self.request()])
        assert error is None
        assert result == "recovered"
        assert queue.breaker_states() == {"reference": "closed"}

    def test_success_does_not_create_breakers_noise(self, monkeypatch):
        monkeypatch.setattr(
            "repro.serve.queue.run_batch",
            lambda requests, cache=None: ["ok"] * len(requests),
        )
        queue = self.queue()
        (result, error), = queue._execute_batch([self.request()])
        assert (result, error) == ("ok", None)
        assert queue.breaker_states() == {"reference": "closed"}

    def test_breaker_threshold_validated(self):
        with pytest.raises(ValueError):
            BatchQueue(breaker_threshold=0)
