"""Tests for seeded fault injection and sweep recovery.

Covers the chaos backend (``repro.harness.faults``) and the resilience
paths in the sweep engine it exists to exercise: retry with backoff,
``on_error="skip"`` failure slots, and worker-crash recovery (the
``BrokenProcessPool`` contract — recover under ``retry`` or raise a
``SweepError`` naming the lost job, never a bare pool traceback).
"""

import pytest

from repro.backends import BackendUnavailableError, get_backend
from repro.harness.faults import (
    FAULT_KINDS,
    ChaosBackend,
    ChaosUnconfiguredError,
    FaultPlan,
    InjectedFault,
    active_plan,
    configure_chaos,
    fault_key_for,
)
from repro.harness.parallel import (
    JobFailure,
    RetryPolicy,
    SweepError,
    SweepJob,
    run_jobs,
)
from repro.harness.runner import RunConfig

SMALL = RunConfig(scale=0.02, seed=1)

# A fast retry policy for tests: no real backoff sleeps.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def clean_chaos(monkeypatch):
    """Every test starts and ends with no active fault plan."""
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    configure_chaos(None)
    yield
    configure_chaos(None)


def _jobs(backend=None, benchmarks=("SYRK", "ATAX"), schedulers=("gto", "ciao-c")):
    return [
        SweepJob(b, s, SMALL, backend=backend)
        for b in benchmarks
        for s in schedulers
    ]


class TestFaultPlan:
    def test_schedule_is_deterministic(self):
        a = FaultPlan(seed=7, rate=0.5)
        b = FaultPlan(seed=7, rate=0.5)
        draws = [(f"key{i}", attempt) for i in range(50) for attempt in (1, 2)]
        assert [a.fault_for(k, n) for k, n in draws] == \
            [b.fault_for(k, n) for k, n in draws]
        # A different seed reshuffles the schedule (some draw must differ).
        c = FaultPlan(seed=8, rate=0.5)
        assert [a.fault_for(k, n) for k, n in draws] != \
            [c.fault_for(k, n) for k, n in draws]

    def test_rate_bounds(self):
        silent = FaultPlan(seed=1, rate=0.0)
        assert all(silent.fault_for(f"k{i}", 1) is None for i in range(20))
        noisy = FaultPlan(seed=1, rate=1.0)
        kinds = {noisy.fault_for(f"k{i}", 1) for i in range(20)}
        assert kinds <= set(FAULT_KINDS) and None not in kinds

    def test_only_attempts_gates_the_schedule(self):
        plan = FaultPlan(seed=1, rate=1.0, kinds=("fail",), only_attempts=(1,))
        assert plan.fault_for("k", 1) == "fail"
        assert plan.fault_for("k", 2) is None

    def test_scheduled_kinds_counts(self):
        plan = FaultPlan(seed=1, rate=1.0, kinds=("fail",))
        counts = plan.scheduled_kinds(["a", "b"], attempts=2)
        assert counts == {"fail": 4}

    def test_spec_round_trip(self):
        plan = FaultPlan(seed=7, rate=0.25, kinds=("fail", "hang"))
        again = FaultPlan.from_spec(plan.to_spec())
        assert (again.seed, again.rate, again.kinds) == (7, 0.25, ("fail", "hang"))
        default_kinds = FaultPlan.from_spec("3:0.1")
        assert default_kinds.kinds == FAULT_KINDS

    def test_bad_specs_and_values_rejected(self):
        for spec in ("", "7", "x:0.2", "7:y", "7:0.2:fail:extra"):
            with pytest.raises(ValueError):
                FaultPlan.from_spec(spec)
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(kinds=("explode",))

    def test_fault_key_is_stable_across_code_versions(self):
        # Fault keys use a pinned code version, so they differ from the
        # result-cache key (which fingerprints the source tree).
        job = SweepJob("ATAX", "gto", SMALL)
        assert fault_key_for(job) == fault_key_for(job)
        assert fault_key_for(job) != job.cache_key()


class TestChaosBackend:
    def test_unconfigured_is_a_clean_error(self):
        with pytest.raises(ChaosUnconfiguredError, match="fault plan"):
            ChaosBackend()
        # Through the registry the same condition is a BackendUnavailableError
        # (what `repro run --backend chaos` reports instead of a traceback).
        with pytest.raises(BackendUnavailableError, match="fault plan"):
            get_backend("chaos")

    def test_env_round_trip_configures_workers(self, monkeypatch):
        configure_chaos(FaultPlan(seed=9, rate=0.3))
        import os

        assert os.environ["REPRO_CHAOS"] == "9:0.3"
        # A fresh process would rebuild the plan from the env mirror.
        configure_chaos(None, mirror_env=False)
        monkeypatch.setenv("REPRO_CHAOS", "9:0.3")
        plan = active_plan()
        assert plan is not None and plan.seed == 9 and plan.rate == 0.3

    def test_zero_rate_is_a_transparent_wrapper(self):
        configure_chaos(FaultPlan(seed=1, rate=0.0))
        job = SweepJob("ATAX", "gto", SMALL)
        via_chaos = ChaosBackend().execute(job)
        direct = get_backend("reference").execute(job)
        assert via_chaos == direct

    def test_fail_kind_raises_injected_fault(self):
        configure_chaos(FaultPlan(seed=1, rate=1.0, kinds=("fail",)))
        with pytest.raises(InjectedFault, match="ATAX/gto"):
            ChaosBackend().execute(SweepJob("ATAX", "gto", SMALL))

    def test_crash_downgraded_in_main_process(self):
        configure_chaos(FaultPlan(seed=1, rate=1.0, kinds=("crash",)))
        with pytest.raises(InjectedFault, match="downgraded"):
            ChaosBackend().execute(SweepJob("ATAX", "gto", SMALL))

    def test_self_delegation_refused(self):
        configure_chaos(FaultPlan(seed=1, rate=0.0, delegate="chaos"))
        with pytest.raises(ValueError, match="delegate"):
            ChaosBackend().execute(SweepJob("ATAX", "gto", SMALL))


class TestSweepRecovery:
    """The resilience layer recovering from injected faults."""

    def _fault_free(self):
        return run_jobs(_jobs(), workers=1, cache=None)

    def test_retry_recovers_bit_identical_in_process(self):
        reference = self._fault_free()
        # Every job fails exactly once (attempt 1), then succeeds.
        configure_chaos(
            FaultPlan(seed=1, rate=1.0, kinds=("fail",), only_attempts=(1,))
        )
        chaotic = run_jobs(
            _jobs(backend="chaos"), workers=1, cache=None,
            on_error="retry", retry=FAST_RETRY,
        )
        assert chaotic.ok
        assert chaotic.results == reference.results  # bit-identical recovery
        assert chaotic.stats.retried == len(reference.results)
        assert chaotic.stats.failed == 0

    def test_retry_recovers_bit_identical_in_pool(self):
        reference = self._fault_free()
        configure_chaos(
            FaultPlan(seed=1, rate=1.0, kinds=("fail",), only_attempts=(1,))
        )
        chaotic = run_jobs(
            _jobs(backend="chaos"), workers=2, cache=None,
            on_error="retry", retry=FAST_RETRY,
        )
        assert chaotic.ok
        assert chaotic.results == reference.results
        assert chaotic.stats.failed == 0 and chaotic.stats.retried >= 1

    def test_skip_mode_yields_failures_in_submission_order(self):
        # rate=1.0 with no attempt gate: every attempt of every job fails.
        configure_chaos(FaultPlan(seed=1, rate=1.0, kinds=("fail",)))
        jobs = _jobs(backend="chaos")
        outcome = run_jobs(jobs, workers=1, cache=None, on_error="skip")
        assert not outcome.ok
        assert outcome.stats.failed == len(jobs)
        failures = outcome.failures()
        assert len(failures) == len(jobs)
        for job, slot in zip(jobs, outcome.results):
            assert isinstance(slot, JobFailure)
            assert slot.benchmark_name == job.benchmark_name
            assert slot.scheduler == job.scheduler
            assert slot.error_type == "InjectedFault"

    def test_raise_mode_exhausted_retries_raise_sweep_error(self):
        configure_chaos(FaultPlan(seed=1, rate=1.0, kinds=("fail",)))
        with pytest.raises(SweepError, match="SYRK"):
            run_jobs(_jobs(backend="chaos"), workers=1, cache=None)

    def test_worker_crash_recovers_under_retry(self):
        """Satellite: a BrokenProcessPool mid-sweep must be survivable."""
        reference = self._fault_free()
        configure_chaos(
            FaultPlan(seed=1, rate=1.0, kinds=("crash",), only_attempts=(1,))
        )
        chaotic = run_jobs(
            _jobs(backend="chaos"), workers=2, cache=None,
            on_error="retry", retry=FAST_RETRY,
        )
        assert chaotic.ok
        assert chaotic.results == reference.results
        assert chaotic.stats.failed == 0 and chaotic.stats.retried >= 1

    def test_worker_crash_in_raise_mode_names_the_lost_job(self):
        """Never a bare BrokenProcessPool traceback: SweepError names a job."""
        from concurrent.futures.process import BrokenProcessPool

        configure_chaos(
            FaultPlan(seed=1, rate=1.0, kinds=("crash",), only_attempts=(1,))
        )
        with pytest.raises(SweepError) as excinfo:
            run_jobs(_jobs(backend="chaos"), workers=2, cache=None,
                     on_error="raise")
        assert not isinstance(excinfo.value, BrokenProcessPool)
        # The error identifies which job the pool died under.
        assert excinfo.value.job is not None
        assert excinfo.value.job.benchmark_name in ("SYRK", "ATAX")

    def test_hung_job_times_out_and_recovers(self):
        """A hang past timeout_seconds is abandoned and re-dispatched."""
        reference = self._fault_free()
        # Attempt 1 of every job hangs well past the deadline; attempt 2
        # runs clean.
        configure_chaos(
            FaultPlan(seed=1, rate=1.0, kinds=("hang",), hang_seconds=5.0,
                      only_attempts=(1,))
        )
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0,
                             timeout_seconds=1.0)
        chaotic = run_jobs(
            _jobs(backend="chaos"), workers=2, cache=None,
            on_error="retry", retry=policy,
        )
        assert chaotic.ok
        assert chaotic.results == reference.results
        assert chaotic.stats.timed_out >= 1
        assert chaotic.stats.failed == 0

    def test_straggler_duplicated_first_result_wins(self):
        reference = self._fault_free()
        jobs = _jobs(backend="chaos")
        keys = [fault_key_for(job) for job in jobs]
        # Straggler rescue needs an idle worker, so exactly ONE job may
        # hang.  The schedule is a pure function of the seed: scan for one
        # where precisely one job hangs on attempt 1 and nothing faults on
        # attempt 2 (the duplicate dispatch).
        def hangs(seed):
            plan = FaultPlan(seed=seed, rate=0.3, kinds=("hang",),
                             hang_seconds=20.0, only_attempts=(1,))
            return [k for k in keys if plan.fault_for(k, 1) == "hang"]

        seed = next(s for s in range(1, 500) if len(hangs(s)) == 1)
        configure_chaos(
            FaultPlan(seed=seed, rate=0.3, kinds=("hang",),
                      hang_seconds=20.0, only_attempts=(1,))
        )
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0,
                             straggler_seconds=0.3)
        chaotic = run_jobs(
            jobs, workers=2, cache=None, on_error="retry", retry=policy,
        )
        assert chaotic.ok
        assert chaotic.results == reference.results
        # The duplicate dispatch is accounted as a retry, and its fast
        # result won long before the 20s hang would have finished.
        assert chaotic.stats.retried >= 1
        assert chaotic.stats.wall_seconds < 15.0

    def test_worker_crash_skip_mode_still_completes_the_sweep(self):
        # Infrastructure failure is not job failure: skip mode re-dispatches
        # jobs lost to a dead worker rather than writing them off.
        reference = self._fault_free()
        configure_chaos(
            FaultPlan(seed=1, rate=1.0, kinds=("crash",), only_attempts=(1,))
        )
        outcome = run_jobs(
            _jobs(backend="chaos"), workers=2, cache=None, on_error="skip",
        )
        assert outcome.ok
        assert outcome.results == reference.results
