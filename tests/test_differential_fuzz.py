"""Differential backend fuzzing: every engine computes the same simulation.

Hypothesis generates small single-kernel requests and runs each through
every in-tree engine — ``reference`` (serialized), ``lockstep``
(cycle-accurate multi-SM, here on the single-kernel path) and ``vector``
(numpy-batched, silently excluded when numpy is absent).  The results must
be bit-identical after blanking the backend label: that is the repo's
cross-engine parity contract, here probed over the whole request space
instead of the pinned golden matrix.

Example depth is controlled by the hypothesis profile in the root
``conftest.py`` (``ci``: 60 derandomized examples; ``deep``: 600, selected
with ``HYPOTHESIS_PROFILE=deep``), so this file deliberately sets no
``max_examples`` of its own.
"""

import dataclasses

from hypothesis import given, settings
from strategies import (
    FUZZ_BENCHMARKS,
    FUZZ_SCHEDULERS,
    HAVE_NUMPY,
    result_dicts,
    simulation_requests,
    strip_backend,
)

from repro.api import execute

ENGINES = ("reference", "lockstep") + (("vector",) if HAVE_NUMPY else ())


@settings(deadline=None)
@given(
    request=simulation_requests(
        benchmarks=FUZZ_BENCHMARKS, schedulers=FUZZ_SCHEDULERS, backends=(None,)
    )
)
def test_engines_agree_bit_for_bit(request):
    """reference == lockstep == vector on arbitrary single-kernel requests."""
    results = [
        execute(dataclasses.replace(request, backend=engine)) for engine in ENGINES
    ]
    payloads = strip_backend(result_dicts(results))
    for engine, payload in zip(ENGINES[1:], payloads[1:]):
        assert payload == payloads[0], (
            f"{engine} diverged from reference on {request.benchmark_name}/"
            f"{request.scheduler} seed {request.run_config.seed}"
        )


def test_vector_engine_participates_when_numpy_present():
    """Guard: the fuzz above really covers three engines on a full install."""
    if not HAVE_NUMPY:
        assert ENGINES == ("reference", "lockstep")
    else:
        assert "vector" in ENGINES
