"""Tests for the lock-step multi-SM backend (repro.gpu.lockstep)."""

import pytest

from repro.api import (
    MultiTenantRequest,
    RunConfig,
    SimulationRequest,
    TenantSpec,
    execute,
)
from repro.gpu.config import GPUConfig
from repro.harness.parallel import run_jobs
from repro.harness.runner import run_benchmark

SMALL = dict(scale=0.05, seed=1)


def _pair(benchmark, scheduler, **overrides):
    ref = run_benchmark(benchmark, scheduler, backend="reference", **SMALL, **overrides)
    lock = run_benchmark(benchmark, scheduler, backend="lockstep", **SMALL, **overrides)
    return ref, lock


def _without_backend(result):
    payload = result.to_dict()
    payload["data"]["fields"].pop("backend")
    return payload


class TestSingleSMParity:
    """At num_sms=1 the lock-step loop must reduce exactly to the serialized
    loop: every counter, stall, time series and interference matrix is
    bit-for-bit identical (only the recorded backend name differs)."""

    @pytest.mark.parametrize("scheduler", ["gto", "ccws", "best-swl", "ciao-c"])
    def test_bit_for_bit_across_schedulers(self, scheduler):
        ref, lock = _pair("ATAX", scheduler)
        assert _without_backend(ref) == _without_backend(lock)

    @pytest.mark.parametrize("bench", ["SYRK", "WC", "Backprop"])
    def test_bit_for_bit_across_workload_classes(self, bench):
        ref, lock = _pair(bench, "gto")
        assert _without_backend(ref) == _without_backend(lock)

    def test_parity_with_cycle_budget(self):
        ref, lock = _pair("SYRK", "gto", max_cycles=5_000)
        assert _without_backend(ref) == _without_backend(lock)

    def test_single_sm_has_no_inter_sm_conflicts(self):
        _, lock = _pair("ATAX", "gto")
        assert lock.inter_sm_dram_conflicts == 0


class TestMultiSM:
    CONFIG = RunConfig(scale=0.05, seed=1, gpu_config=GPUConfig.gtx480(num_sms=2))

    def test_lockstep_observes_inter_sm_dram_contention(self):
        result = run_benchmark("ATAX", "gto", self.CONFIG, backend="lockstep")
        assert len(result.per_sm) == 2
        assert result.inter_sm_dram_conflicts > 0

    def test_sms_finish_together_not_serially(self):
        # In the serialized mode SM1 only starts once SM0 finished, so its
        # recorded cycle count balloons; in lock step both SMs share the
        # clock and finish within a whisker of each other.
        lock = run_benchmark("ATAX", "gto", self.CONFIG, backend="lockstep")
        cycles = [stats.cycles for stats in lock.per_sm]
        assert max(cycles) < 1.05 * min(cycles)

    def test_serialized_mode_underestimates_contention(self):
        # The whole point of the lock-step engine: SMs simulated one after
        # another almost never observe another SM's in-flight DRAM bursts,
        # while interleaved SMs genuinely queue behind each other.
        ref = run_benchmark("ATAX", "gto", self.CONFIG, backend="reference")
        lock = run_benchmark("ATAX", "gto", self.CONFIG, backend="lockstep")
        assert lock.inter_sm_dram_conflicts > ref.inter_sm_dram_conflicts

    def test_lockstep_is_deterministic(self):
        a = run_benchmark("SYRK", "ccws", self.CONFIG, backend="lockstep")
        b = run_benchmark("SYRK", "ccws", self.CONFIG, backend="lockstep")
        assert a == b


def _strip_tenant_fields(result):
    """A multi-tenant result's payload minus the tenant-only decorations."""
    payload = result.to_dict()
    payload["data"]["fields"].pop("per_tenant", None)
    return payload


class TestMultiTenantParity:
    """Differential contracts of the partitioned driver.

    Tenants at the default address-space colour 0 share the kernel's
    natural addresses, so a partition in which every tenant runs the same
    kernel and scheduler must reduce *exactly* to the single-kernel paths.
    """

    @pytest.mark.parametrize("scheduler", ["gto", "ccws", "ciao-c"])
    def test_homogeneous_tenants_match_single_kernel_lockstep(self, scheduler):
        # Two tenants x one SM, same kernel/scheduler everywhere == one
        # kernel launched on a 2-SM lock-step machine, bit for bit.
        single = run_benchmark(
            "ATAX",
            scheduler,
            RunConfig(scale=0.05, seed=1, gpu_config=GPUConfig.gtx480(num_sms=2)),
            backend="lockstep",
        )
        multi = execute(
            MultiTenantRequest(
                tenants=(
                    TenantSpec("a", "ATAX", scheduler, (0,)),
                    TenantSpec("b", "ATAX", scheduler, (1,)),
                ),
                run_config=RunConfig(scale=0.05, seed=1),
            )
        )
        assert multi.per_tenant  # it really took the partitioned path
        assert _strip_tenant_fields(multi) == _strip_tenant_fields(single)

    def test_one_tenant_one_sm_matches_reference_backend(self):
        ref = run_benchmark("ATAX", "gto", backend="reference", **SMALL)
        multi = execute(
            MultiTenantRequest(
                tenants=(TenantSpec("solo", "ATAX", "gto", (0,)),),
                run_config=RunConfig(**SMALL),
            )
        )
        ref_payload = _strip_tenant_fields(ref)
        multi_payload = _strip_tenant_fields(multi)
        ref_payload["data"]["fields"].pop("backend")
        multi_payload["data"]["fields"].pop("backend")
        assert multi_payload == ref_payload

    def test_tenant_partition_changes_contention(self):
        # Same tenants, different SM split: a genuine semantic knob, so the
        # simulations must not collapse to the same outcome.
        def run(split_a, split_b):
            return execute(
                MultiTenantRequest(
                    tenants=(
                        TenantSpec("a", "ATAX", "gto", split_a, address_space=1),
                        TenantSpec("b", "SYRK", "gto", split_b, address_space=2),
                    ),
                    run_config=RunConfig(**SMALL),
                )
            )

        narrow = run((0,), (1, 2))
        wide = run((0, 1), (2,))
        assert narrow.per_tenant["a"].stats.instructions_issued < (
            wide.per_tenant["a"].stats.instructions_issued
        )

    def test_finished_tenant_goes_idle_while_others_run(self):
        # 2DCONV (compute-bound) drains long before the SM thrasher; its
        # finish_cycle must seal early while the machine keeps running.
        result = execute(
            MultiTenantRequest(
                tenants=(
                    TenantSpec("thrash", "SM", "gto", (0,), address_space=1),
                    TenantSpec("compute", "2DCONV", "gto", (1,), address_space=2),
                ),
                run_config=RunConfig(scale=0.1, seed=1),
            )
        )
        thrash = result.per_tenant["thrash"]
        compute = result.per_tenant["compute"]
        assert compute.finish_cycle < thrash.finish_cycle
        assert result.machine.cycles == thrash.finish_cycle


class TestEngineIntegration:
    def test_sweep_engine_runs_lockstep_jobs(self):
        jobs = [
            SimulationRequest("ATAX", "gto", RunConfig(**SMALL), backend="lockstep"),
            SimulationRequest("SYRK", "gto", RunConfig(**SMALL), backend="reference"),
        ]
        outcome = run_jobs(jobs, workers=1, cache=None)
        assert outcome.results[0].backend == "lockstep"
        assert outcome.results[1].backend == "reference"
        assert "lockstep" in outcome.stats.backend
        assert "reference" in outcome.stats.backend

    def test_run_jobs_backend_argument_fills_unpinned_jobs(self):
        jobs = [SimulationRequest("ATAX", "gto", RunConfig(**SMALL))]
        outcome = run_jobs(jobs, workers=1, cache=None, backend="lockstep")
        assert outcome.results[0].backend == "lockstep"

    def test_cached_lockstep_results_round_trip(self, tmp_path):
        from repro.harness.cache import ResultCache

        cache = ResultCache(tmp_path)
        jobs = [SimulationRequest("ATAX", "gto", RunConfig(**SMALL), backend="lockstep")]
        cold = run_jobs(jobs, workers=1, cache=cache)
        warm = run_jobs(jobs, workers=1, cache=cache)
        assert warm.stats.cache_hits == 1
        assert warm.results[0] == cold.results[0]
        assert warm.results[0].backend == "lockstep"

    def test_backends_never_share_cache_entries(self, tmp_path):
        from repro.harness.cache import ResultCache

        cache = ResultCache(tmp_path)
        ref_job = SimulationRequest("ATAX", "gto", RunConfig(**SMALL), backend="reference")
        lock_job = SimulationRequest("ATAX", "gto", RunConfig(**SMALL), backend="lockstep")
        run_jobs([ref_job], workers=1, cache=cache)
        outcome = run_jobs([lock_job], workers=1, cache=cache)
        assert outcome.stats.cache_hits == 0
        assert outcome.results[0].backend == "lockstep"

    def test_parallel_workers_match_in_process(self):
        jobs = [
            SimulationRequest(b, "gto", RunConfig(**SMALL), backend="lockstep")
            for b in ("ATAX", "SYRK")
        ]
        sequential = run_jobs(jobs, workers=1, cache=None)
        parallel = run_jobs(jobs, workers=2, cache=None)
        for seq, par in zip(sequential.results, parallel.results):
            assert seq == par

    def test_experiment_accepts_backend(self):
        from repro.harness import experiments

        out = experiments.fig1_bestswl_vs_ccws(
            scale=0.05, seed=1, workers=1, cache=None, backend="lockstep"
        )
        assert out["engine"]["backend"] == "lockstep"
