"""End-to-end integration tests across the full stack."""

import pytest

from repro import quick_run
from repro.gpu.config import GPUConfig
from repro.gpu.gpu import GPU
from repro.harness.runner import RunConfig, run_benchmark
from repro.sched.registry import scheduler_factory, uses_shared_cache
from repro.workloads import build_kernel, get_benchmark

SMALL = dict(scale=0.06, seed=1)


class TestQuickRun:
    def test_quick_run_api(self):
        result = quick_run("WC", "gto", scale=0.05)
        assert result.ipc > 0


class TestFullStack:
    @pytest.mark.parametrize("scheduler", ["gto", "lrr", "two-level", "ccws", "best-swl", "statpcal", "ciao-t", "ciao-p", "ciao-c"])
    def test_every_scheduler_completes_a_benchmark(self, scheduler):
        result = run_benchmark("SYRK", scheduler, **SMALL)
        stats = result.sm0
        expected = get_benchmark("SYRK").total_warps()
        assert stats.warps_retired == expected
        assert stats.instructions_issued > 0
        assert 0.0 <= stats.l1d_hit_rate <= 1.0
        assert result.ipc > 0

    @pytest.mark.parametrize("bench_name", ["ATAX", "KMN", "SS", "Hotspot", "NW"])
    def test_barrier_and_scratchpad_benchmarks_complete(self, bench_name):
        result = run_benchmark(bench_name, "ciao-c", **SMALL)
        assert result.sm0.warps_retired == get_benchmark(bench_name).total_warps()

    def test_conservation_of_instructions(self):
        """Issued warp instructions equal the sum over warps of their streams."""
        result = run_benchmark("WC", "gto", **SMALL)
        stats = result.sm0
        assert stats.instructions_issued == sum(stats.per_warp_instructions.values())

    def test_multi_sm_run(self):
        config = GPUConfig.gtx480(num_sms=2)
        gpu = GPU(config, scheduler_factory=scheduler_factory("gto"))
        kernel = build_kernel(get_benchmark("WC"), scale=0.05)
        result = gpu.run(kernel)
        assert len(result.per_sm) == 2
        assert result.machine.instructions_issued == sum(
            s.instructions_issued for s in result.per_sm
        )

    def test_fair_share_scaling_of_l2(self):
        config = GPUConfig.gtx480(num_sms=1)
        gpu = GPU(config, scheduler_factory=scheduler_factory("gto"))
        # One of fifteen SMs gets roughly 1/15th of the 768 KB L2.
        assert gpu.memory.l2.cache.config.size_bytes < 768 * 1024 / 10
        full = GPU(GPUConfig.gtx480(num_sms=1).with_overrides(chip_sms=1),
                   scheduler_factory=scheduler_factory("gto"))
        assert full.memory.l2.cache.config.size_bytes == 768 * 1024

    def test_dram_bandwidth_scale_applied(self):
        gpu_1x = GPU(GPUConfig.gtx480(), scheduler_factory=scheduler_factory("gto"))
        gpu_2x = GPU(GPUConfig.gtx480(), scheduler_factory=scheduler_factory("gto"), dram_bandwidth_scale=2.0)
        assert gpu_2x.memory.l2.dram.config.bytes_per_cycle == pytest.approx(
            2 * gpu_1x.memory.l2.dram.config.bytes_per_cycle
        )

    def test_shared_cache_only_for_ciao_p_and_c(self):
        for name in ("ciao-p", "ciao-c"):
            assert uses_shared_cache(name)
        ciao = run_benchmark("SYRK", "ciao-p", **SMALL)
        gto = run_benchmark("SYRK", "gto", **SMALL)
        assert ciao.sm0.shared_memory_utilization >= gto.sm0.shared_memory_utilization


class TestPaperDirectionalClaims:
    """Coarse directional checks of the paper's qualitative claims.

    These use small workload scales, so they assert directions / sanity
    bounds rather than the paper's exact percentages (see EXPERIMENTS.md for
    the quantitative comparison).
    """

    @pytest.fixture(scope="class")
    def syrk_results(self):
        run = dict(scale=0.15, seed=1)
        return {
            sched: run_benchmark("SYRK", sched, **run)
            for sched in ("gto", "ccws", "ciao-t", "ciao-p", "ciao-c")
        }

    def test_ciao_p_not_worse_than_gto_on_sws(self, syrk_results):
        assert syrk_results["ciao-p"].ipc >= 0.95 * syrk_results["gto"].ipc

    def test_ciao_uses_unused_shared_memory(self, syrk_results):
        assert syrk_results["ciao-p"].sm0.redirected_accesses > 0
        assert syrk_results["gto"].sm0.redirected_accesses == 0

    def test_ciao_c_not_worse_than_gto_on_sws(self, syrk_results):
        assert syrk_results["ciao-c"].ipc >= 0.9 * syrk_results["gto"].ipc

    def test_throttling_schemes_reduce_active_warps(self, syrk_results):
        gto_aw = syrk_results["gto"].sm0.active_warp_series.mean()
        ccws_aw = syrk_results["ccws"].sm0.active_warp_series.mean()
        assert ccws_aw <= gto_aw + 1e-6

    def test_compute_intensive_benchmarks_insensitive(self):
        run = dict(scale=0.1, seed=1)
        gto = run_benchmark("Gaussian", "gto", **run)
        ciao = run_benchmark("Gaussian", "ciao-c", **run)
        assert ciao.ipc == pytest.approx(gto.ipc, rel=0.1)
