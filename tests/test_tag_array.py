"""Unit tests for the generic set-associative tag array."""

import pytest

from repro.mem.tag_array import ReplacementPolicy, TagArray


@pytest.fixture
def lru_array():
    return TagArray(num_sets=4, associativity=2, policy=ReplacementPolicy.LRU)


class TestBasics:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TagArray(num_sets=0, associativity=2)
        with pytest.raises(ValueError):
            TagArray(num_sets=4, associativity=0)

    def test_initially_empty(self, lru_array):
        assert lru_array.occupancy() == 0
        assert lru_array.probe(0, 123) is None
        assert lru_array.num_lines == 8

    def test_insert_then_probe(self, lru_array):
        lru_array.insert(1, tag=42, owner_wid=3, now=0)
        line = lru_array.probe(1, 42)
        assert line is not None
        assert line.owner_wid == 3
        assert lru_array.occupancy() == 1

    def test_insert_no_eviction_when_space(self, lru_array):
        _, eviction = lru_array.insert(0, tag=1, owner_wid=0, now=0)
        assert eviction is None
        _, eviction = lru_array.insert(0, tag=2, owner_wid=1, now=1)
        assert eviction is None

    def test_lru_eviction_order(self, lru_array):
        lru_array.insert(0, tag=1, owner_wid=0, now=0)
        lru_array.insert(0, tag=2, owner_wid=1, now=1)
        # Touch tag 1 so tag 2 becomes LRU.
        assert lru_array.lookup(0, 1, now=5) is not None
        _, eviction = lru_array.insert(0, tag=3, owner_wid=2, now=6)
        assert eviction is not None
        assert eviction.tag == 2
        assert eviction.owner_wid == 1
        assert eviction.evictor_wid == 2

    def test_fifo_eviction_order(self):
        arr = TagArray(num_sets=1, associativity=2, policy=ReplacementPolicy.FIFO)
        arr.insert(0, tag=1, owner_wid=0, now=0)
        arr.insert(0, tag=2, owner_wid=1, now=1)
        arr.lookup(0, 1, now=5)  # should NOT matter for FIFO
        _, eviction = arr.insert(0, tag=3, owner_wid=2, now=6)
        assert eviction.tag == 1

    def test_reserved_lines_are_not_victims(self, lru_array):
        lru_array.insert(0, tag=1, owner_wid=0, now=0, reserve=True)
        lru_array.insert(0, tag=2, owner_wid=0, now=1, reserve=True)
        assert lru_array.find_victim(0) is None
        with pytest.raises(RuntimeError):
            lru_array.insert(0, tag=3, owner_wid=0, now=2)

    def test_invalidate(self, lru_array):
        lru_array.insert(2, tag=9, owner_wid=0, now=0)
        assert lru_array.invalidate(2, 9)
        assert lru_array.probe(2, 9) is None
        assert not lru_array.invalidate(2, 9)

    def test_invalidate_all(self, lru_array):
        for i in range(4):
            lru_array.insert(i, tag=i, owner_wid=0, now=i)
        lru_array.invalidate_all()
        assert lru_array.occupancy() == 0

    def test_dirty_writeback_reported(self, lru_array):
        lru_array.insert(0, tag=1, owner_wid=0, now=0, dirty=True)
        lru_array.insert(0, tag=2, owner_wid=0, now=1)
        _, eviction = lru_array.insert(0, tag=3, owner_wid=1, now=2)
        assert eviction is not None and eviction.dirty
