"""Unit tests for the workload registry and synthetic kernel models."""

import itertools

import pytest

from repro.gpu.instruction import InstructionKind
from repro.workloads import (
    MEMORY_INTENSIVE_BENCHMARKS,
    all_benchmarks,
    benchmark_names,
    benchmarks_by_class,
    build_kernel,
    get_benchmark,
)
from repro.workloads.registry import TABLE_II_ROWS, benchmarks_by_suite
from repro.workloads.spec import BenchmarkSpec, ModelParams, WorkloadClass
from repro.workloads.synthetic import SyntheticKernelModel
from repro.workloads import patterns


class TestRegistry:
    def test_all_21_benchmarks_present(self):
        assert len(all_benchmarks()) == 21
        assert len(set(benchmark_names())) == 21

    def test_table2_paper_values(self):
        atax = get_benchmark("ATAX")
        assert atax.apki == 64 and atax.nwrp == 2 and not atax.uses_barriers
        assert atax.workload_class is WorkloadClass.LWS
        ss = get_benchmark("SS")
        assert ss.fsmem == pytest.approx(0.50) and ss.nwrp == 48
        hotspot = get_benchmark("Hotspot")
        assert hotspot.apki == 1 and hotspot.workload_class is WorkloadClass.CI
        backprop = get_benchmark("Backprop")
        assert backprop.fsmem == pytest.approx(0.13) and backprop.nwrp == 36

    def test_case_insensitive_lookup(self):
        assert get_benchmark("atax") is get_benchmark("ATAX")
        with pytest.raises(KeyError):
            get_benchmark("NOPE")

    def test_class_partition_is_complete(self):
        total = sum(len(benchmarks_by_class(cls)) for cls in WorkloadClass)
        assert total == 21
        assert len(benchmarks_by_class(WorkloadClass.LWS)) == 5
        assert len(benchmarks_by_class(WorkloadClass.SWS)) == 8
        assert len(benchmarks_by_class(WorkloadClass.CI)) == 8

    def test_suites(self):
        assert len(benchmarks_by_suite("PolyBench")) == 8
        assert len(benchmarks_by_suite("Mars")) == 6
        assert len(benchmarks_by_suite("Rodinia")) == 7

    def test_memory_intensive_subset(self):
        for name in MEMORY_INTENSIVE_BENCHMARKS:
            assert get_benchmark(name).workload_class in (WorkloadClass.LWS, WorkloadClass.SWS)

    def test_table_rows_shape(self):
        rows = TABLE_II_ROWS()
        assert len(rows) == 21
        assert set(rows[0]) >= {"Benchmark", "APKI", "Nwrp", "Fsmem", "Bar.", "Class"}

    def test_all_specs_validate(self):
        for spec in all_benchmarks():
            spec.validate()

    def test_shared_mem_per_cta_respects_fsmem(self):
        for spec in all_benchmarks():
            per_cta = spec.shared_mem_per_cta()
            assert per_cta * spec.num_ctas <= int(spec.fsmem * 48 * 1024) + 128 * spec.num_ctas
            assert per_cta % 128 == 0


class TestSyntheticModel:
    def test_kernel_launch_geometry(self):
        spec = get_benchmark("SYRK")
        kernel = build_kernel(spec, scale=0.1)
        assert kernel.num_ctas == spec.num_ctas
        assert kernel.warps_per_cta == spec.warps_per_cta
        kernel.validate()

    def test_streams_are_deterministic(self):
        spec = get_benchmark("ATAX")
        model_a = SyntheticKernelModel(spec, scale=0.05, seed=3)
        model_b = SyntheticKernelModel(spec, scale=0.05, seed=3)
        a = list(itertools.islice(model_a._warp_stream(0, 0, 0), 100))
        b = list(itertools.islice(model_b._warp_stream(0, 0, 0), 100))
        assert [i.kind for i in a] == [i.kind for i in b]
        assert [i.addresses for i in a] == [i.addresses for i in b]

    def test_different_seed_changes_stream(self):
        spec = get_benchmark("ATAX")
        a = list(itertools.islice(SyntheticKernelModel(spec, scale=0.05, seed=1)._warp_stream(0, 0, 0), 200))
        b = list(itertools.islice(SyntheticKernelModel(spec, scale=0.05, seed=2)._warp_stream(0, 0, 0), 200))
        assert [i.addresses for i in a] != [i.addresses for i in b]

    def test_stream_terminates_with_exit(self):
        spec = get_benchmark("WC")
        model = SyntheticKernelModel(spec, scale=0.05)
        instrs = list(model._warp_stream(0, 0, 0))
        assert instrs[-1].kind is InstructionKind.EXIT
        assert len(instrs) >= 50

    def test_memory_fraction_roughly_respected(self):
        spec = get_benchmark("SYRK")
        model = SyntheticKernelModel(spec, scale=1.0, seed=5)
        instrs = list(model._warp_stream(0, 0, 0))
        mem = sum(1 for i in instrs if i.is_global_memory)
        frac = mem / len(instrs)
        assert abs(frac - spec.model.mem_fraction) < 0.08

    def test_barrier_emission_for_barrier_benchmarks(self):
        spec = get_benchmark("KMN")
        model = SyntheticKernelModel(spec, scale=0.5)
        kinds = [i.kind for i in model._warp_stream(0, 0, 0)]
        assert InstructionKind.BARRIER in kinds
        spec_nobar = get_benchmark("ATAX")
        kinds = [i.kind for i in SyntheticKernelModel(spec_nobar, scale=0.5)._warp_stream(0, 0, 0)]
        assert InstructionKind.BARRIER not in kinds

    def test_scratchpad_instructions_for_fsmem_benchmarks(self):
        spec = get_benchmark("SS")
        model = SyntheticKernelModel(spec, scale=1.0)
        kinds = [i.kind for i in model._warp_stream(0, 0, 0)]
        assert InstructionKind.SHARED_LOAD in kinds or InstructionKind.SHARED_STORE in kinds

    def test_aggressor_has_larger_tile(self):
        spec = get_benchmark("SYRK")
        model = SyntheticKernelModel(spec)
        period = spec.model.aggressor_period
        assert model._tile_blocks(period - 1) > model._tile_blocks(0)

    def test_two_phase_atax_reduces_memory_late(self):
        spec = get_benchmark("ATAX")
        model = SyntheticKernelModel(spec, scale=1.0, seed=11)
        instrs = list(model._warp_stream(0, 0, 0))
        half = len(instrs) // 2
        early = sum(1 for i in instrs[: half // 2] if i.is_global_memory) / (half // 2)
        late = sum(1 for i in instrs[-half // 2 :] if i.is_global_memory) / (half // 2)
        assert late < early

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            SyntheticKernelModel(get_benchmark("ATAX"), scale=0)

    def test_geometry_overrides(self):
        model = SyntheticKernelModel(get_benchmark("ATAX"), num_ctas=2, warps_per_cta=4)
        kernel = model.kernel_launch()
        assert kernel.total_warps() == 8


class TestPatterns:
    def test_tiled_reuse_addresses_stay_in_tile(self):
        gen = patterns.tiled_reuse_accesses(0x1000, tile_blocks=4, chunk_blocks=2, chunk_repeats=2)
        for lanes in itertools.islice(gen, 50):
            assert all(0x1000 <= a < 0x1000 + 4 * 128 for a in lanes)

    def test_streaming_never_repeats_within_length(self):
        gen = patterns.streaming_accesses(0, length_blocks=100)
        blocks = [lanes[0] // 128 for lanes in itertools.islice(gen, 100)]
        assert len(set(blocks)) == 100

    def test_irregular_respects_footprint(self):
        import random

        gen = patterns.irregular_accesses(random.Random(0), 0, footprint_blocks=16, blocks_per_access=2)
        for lanes in itertools.islice(gen, 100):
            assert all(a < 16 * 128 for a in lanes)

    def test_stencil_touches_neighbouring_rows(self):
        gen = patterns.stencil_accesses(0, row_blocks=2, num_rows=4, halo_rows=1, sweeps=1)
        blocks = {lanes[0] // 128 for lanes in itertools.islice(gen, 30)}
        assert len(blocks) > 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            next(patterns.tiled_reuse_accesses(0, 0))
        with pytest.raises(ValueError):
            next(patterns.streaming_accesses(0, 0))


class TestStreamProcessDeterminism:
    def test_streams_stable_across_hash_randomization(self):
        """Workload streams must not depend on PYTHONHASHSEED.

        The per-warp RNG used to be keyed with ``hash(spec.name)``, which is
        randomized per process and silently made every simulation
        irreproducible across interpreter invocations (breaking golden
        fixtures and cross-process cache reuse).  Two subprocesses with
        different hash seeds must now produce identical streams.
        """
        import os
        import subprocess
        import sys
        from pathlib import Path

        code = (
            "from repro.workloads.registry import get_benchmark\n"
            "from repro.workloads.synthetic import SyntheticKernelModel\n"
            "m = SyntheticKernelModel(get_benchmark('ATAX'), scale=0.02, seed=3)\n"
            "stream = m._warp_stream(0, 0, 0)\n"
            "sig = [(i.kind.value, i.addresses[:2]) for _, i in zip(range(40), stream)]\n"
            "print(sig)\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = set()
        for hash_seed in ("1", "2"):
            env = {**os.environ, "PYTHONHASHSEED": hash_seed, "PYTHONPATH": src}
            proc = subprocess.run(
                [sys.executable, "-c", code], env=env, capture_output=True, text=True
            )
            assert proc.returncode == 0, proc.stderr
            outputs.add(proc.stdout)
        assert len(outputs) == 1
