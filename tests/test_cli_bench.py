"""CLI tests for the ``repro bench`` subcommand (exit codes, JSON, files)."""

import json

from repro.cli import build_parser, main
from repro.harness.bench import BENCH_SCHEMA

#: A tiny ad-hoc matrix so each invocation runs in well under a second.
TINY = ["bench", "-b", "ATAX", "-s", "gto", "--scale", "0.02"]


class TestParser:
    def test_bench_subcommand_exists(self):
        args = build_parser().parse_args(["bench", "--quick"])
        assert callable(args.func)
        assert args.quick

    def test_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.tolerance == 0.30
        assert args.repeat == 1
        assert args.out == "."
        assert not args.quick and not args.json and not args.no_write

    def test_help_mentions_the_contract(self, capsys):
        """Help text audit: the knobs the docs promise are all advertised."""
        parser = build_parser()
        bench_parser = None
        for action in parser._subparsers._group_actions:
            bench_parser = action.choices.get("bench")
        assert bench_parser is not None
        text = bench_parser.format_help()
        for needle in ("--quick", "--baseline", "--tolerance", "--backend",
                       "--repeat", "--out", "--json", "cycles/sec"):
            assert needle in text, needle


class TestExitCodes:
    def test_success_writes_report_and_returns_zero(self, tmp_path, capsys):
        rc = main([*TINY, "--out", str(tmp_path), "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == BENCH_SCHEMA
        assert data["regressions"] == []
        reports = list(tmp_path.glob("BENCH_*.json"))
        assert len(reports) == 1
        assert json.loads(reports[0].read_text())["kind"] == "BenchReport"

    def test_no_write_skips_the_report_file(self, tmp_path, capsys):
        rc = main([*TINY, "--out", str(tmp_path), "--no-write"])
        assert rc == 0
        assert list(tmp_path.glob("BENCH_*.json")) == []

    def test_regression_against_baseline_exits_one(self, tmp_path, capsys):
        # First run establishes a baseline; a doctored copy demanding 100x
        # the measured throughput must then trip the gate.
        assert main([*TINY, "--out", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        baseline_path = tmp_path / "baseline.json"
        for case in report["cases"]:
            case["cycles_per_second"] *= 100.0
        report["aggregate"]["cycles_per_second"] *= 100.0
        report.pop("report_path", None); report.pop("baseline", None)
        report.pop("regressions", None)
        baseline_path.write_text(json.dumps(report))
        rc = main([*TINY, "--out", str(tmp_path), "--baseline", str(baseline_path),
                   "--json"])
        assert rc == 1
        data = json.loads(capsys.readouterr().out)
        assert data["regressions"]

    def test_matching_baseline_passes(self, tmp_path, capsys):
        assert main([*TINY, "--out", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        report.pop("report_path", None); report.pop("baseline", None)
        report.pop("regressions", None)
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(report))
        rc = main([*TINY, "--no-write", "--baseline", str(baseline_path),
                   "--tolerance", "0.9"])
        assert rc == 0

    def test_json_includes_per_case_deltas_vs_baseline(self, tmp_path, capsys):
        """--json carries cycles/sec speedups per case, not just pass/fail."""
        assert main([*TINY, "--out", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        for key in ("report_path", "baseline", "regressions", "deltas"):
            report.pop(key, None)
        # Halve the baseline throughput so the measured run shows ~2x.
        for case in report["cases"]:
            case["cycles_per_second"] /= 2.0
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(report))
        rc = main([*TINY, "--no-write", "--baseline", str(baseline_path), "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["deltas"] and len(data["deltas"]) == len(data["cases"])
        delta = data["deltas"][0]
        assert delta["baseline_cycles_per_second"] is not None
        assert delta["speedup"] is not None and delta["speedup"] > 1.0
        assert delta["delta_pct"] is not None

    def test_json_deltas_mark_cases_new_to_the_baseline(self, tmp_path, capsys):
        """A case the baseline predates reports None fields, no gate trip."""
        assert main([*TINY, "--out", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        for key in ("report_path", "baseline", "regressions", "deltas"):
            report.pop(key, None)
        # A backend name no measurement can resolve to: never matches,
        # whatever REPRO_BACKEND the suite itself runs under.
        report["cases"][0]["backend"] = "retired-engine"
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(report))
        rc = main([*TINY, "--no-write", "--baseline", str(baseline_path), "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["regressions"] == []
        assert data["deltas"][0]["baseline_cycles_per_second"] is None
        assert data["deltas"][0]["speedup"] is None

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "nope.json"
        rc = main([*TINY, "--no-write", "--baseline", str(bad)])
        assert rc == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_unknown_backend_exits_two(self, tmp_path, capsys):
        rc = main([*TINY, "--no-write", "--backend", "warp-drive"])
        assert rc == 2

    def test_unknown_benchmark_exits_two(self, capsys):
        rc = main(["bench", "-b", "NOPE", "-s", "gto", "--scale", "0.02",
                   "--no-write"])
        assert rc == 2

    def test_table_output_shows_aggregate(self, tmp_path, capsys):
        rc = main([*TINY, "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles/sec" in out and "aggregate:" in out

    def test_bad_repeat_exits_two(self, capsys):
        rc = main([*TINY, "--no-write", "--repeat", "0"])
        assert rc == 2
        assert "--repeat" in capsys.readouterr().err

    def test_bad_tolerance_exits_two(self, capsys):
        rc = main([*TINY, "--no-write", "--tolerance", "1.5"])
        assert rc == 2
        assert "--tolerance" in capsys.readouterr().err
