"""Property-based tests (hypothesis) for core data structures and invariants."""

import functools
import random

from hypothesis import given, settings
from hypothesis import strategies as st
from strategies import multi_tenant_requests

from repro.core.config import CIAOParameters
from repro.core.interference import InterferenceDetector
from repro.gpu.coalescer import Coalescer
from repro.harness.reporting import geometric_mean
from repro.mem.address import BLOCK_SIZE, AddressMapping
from repro.mem.cache import AccessOutcome, Cache, CacheConfig
from repro.mem.hashing import ipoly_set_index, xor_set_index
from repro.mem.mshr import MSHRFile, MSHRTarget
from repro.mem.victim_tag_array import VTAConfig, VictimTagArray

addresses = st.integers(min_value=0, max_value=2**40 - 1)


@settings(max_examples=200)
@given(addresses, st.sampled_from([16, 32, 64, 128, 768]))
def test_set_index_always_in_range(address, num_sets):
    """Every hash maps every block into [0, num_sets)."""
    block = address // BLOCK_SIZE
    assert 0 <= xor_set_index(block, num_sets) < num_sets
    assert 0 <= ipoly_set_index(block, num_sets) < num_sets


@settings(max_examples=200)
@given(addresses)
def test_address_decomposition_is_consistent(address):
    """tag/set/offset are stable and the offset stays within the line."""
    mapping = AddressMapping(num_sets=32, line_size=128)
    tag, set_index, offset = mapping.decompose(address)
    assert 0 <= offset < 128
    assert 0 <= set_index < 32
    # Same block -> same tag and set regardless of the offset.
    tag2, set2, _ = mapping.decompose((address // 128) * 128)
    assert (tag, set_index) == (tag2, set2)


@settings(max_examples=50)
@given(st.lists(addresses, min_size=1, max_size=32))
def test_coalescer_covers_all_lanes_exactly(lanes):
    """Coalesced blocks cover every lane address and contain no duplicates."""
    coalescer = Coalescer()
    blocks = coalescer.coalesce(lanes)
    assert len(blocks) == len(set(blocks))
    assert {a // BLOCK_SIZE for a in lanes} == set(blocks)
    assert 1 <= len(blocks) <= len(lanes)


@settings(max_examples=50, deadline=None)
@given(st.lists(addresses, min_size=1, max_size=200), st.integers(0, 3))
def test_cache_never_exceeds_capacity_and_hits_after_fill(accesses, seed):
    """Occupancy never exceeds 1.0 and a filled block always hits next."""
    cache = Cache(CacheConfig(name="t", size_bytes=4096, associativity=4))
    rng = random.Random(seed)
    for address in accesses:
        result = cache.access(address, wid=rng.randrange(4), is_write=False, now=0)
        if result.outcome is AccessOutcome.MISS:
            cache.fill(result.block, 1)
            followup = cache.access(address, wid=0, is_write=False, now=2)
            assert followup.outcome is AccessOutcome.HIT
        assert 0.0 <= cache.occupancy() <= 1.0
    total = cache.stats.hits + cache.stats.misses
    assert total >= len(accesses)


@settings(max_examples=50)
@given(
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 500), st.integers(0, 7)), max_size=200)
)
def test_vta_occupancy_bounded(events):
    """The per-warp victim tag sets never exceed their configured capacity."""
    vta = VictimTagArray(VTAConfig(entries_per_warp=8, num_warps=8))
    for owner, block, evictor in events:
        vta.record_eviction(owner, block, evictor)
        assert vta.occupancy(owner) <= 8


@settings(max_examples=50)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
def test_mshr_occupancy_and_merging_invariants(blocks):
    """MSHR occupancy stays bounded and merged entries keep one per block."""
    mshr = MSHRFile(num_entries=8, max_merged=4)
    for i, block in enumerate(blocks):
        mshr.allocate(block, MSHRTarget(wid=i % 48, request_id=i), now=i)
        assert mshr.occupancy <= 8
        assert len(set(mshr.outstanding_blocks())) == mshr.occupancy


@settings(max_examples=100)
@given(
    st.lists(st.tuples(st.integers(0, 47), st.integers(0, 47)), min_size=1, max_size=500),
    st.integers(1, 100000),
    st.integers(1, 48),
)
def test_detector_irs_non_negative_and_counts_match(events, instructions, warps):
    """IRS is non-negative and cumulative counts equal the recorded events."""
    detector = InterferenceDetector(CIAOParameters.paper_defaults())
    for victim, aggressor in events:
        detector.record_vta_hit(victim, aggressor)
    total = sum(detector.vta_hit_counts.values())
    assert total == len(events)
    for victim, _ in events:
        assert detector.irs(victim, instructions, warps) >= 0.0
        entry = detector.interference_list[victim]
        assert 0 <= entry.counter <= detector.params.saturating_counter_max


@settings(max_examples=100)
@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
def test_geometric_mean_bounds(values):
    """The geometric mean lies between the minimum and maximum value."""
    mean = geometric_mean(values)
    assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


# ---------------------------------------------------------------------------
# Multi-tenant invariants
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(multi_tenant_requests())
def test_multi_tenant_request_round_trips_for_random_partitions(request):
    """to_dict/from_dict is the identity for arbitrary valid partitions,
    simultaneous and staggered launches alike."""
    import json

    from repro.api import MultiTenantRequest

    request.validate()  # the strategy only builds valid partitions
    assert MultiTenantRequest.from_dict(request.to_dict()) == request
    wire = json.loads(json.dumps(request.to_dict()))
    assert MultiTenantRequest.from_dict(wire) == request


@functools.lru_cache(maxsize=None)
def _colocated_result(names=("alpha", "beta", "gamma")):
    """One small pinned co-located run, shared by the invariants below."""
    from repro.api import MultiTenantRequest, RunConfig, TenantSpec, execute

    benchmarks = ("ATAX", "SYRK", "WC")
    request = MultiTenantRequest(
        tenants=tuple(
            TenantSpec(name, benchmarks[i], "gto", (i,), address_space=i + 1)
            for i, name in enumerate(names)
        ),
        run_config=RunConfig(scale=0.05, seed=1),
    )
    return execute(request)


def test_per_tenant_counts_sum_to_global_totals():
    """Tenant instruction/conflict counts partition the machine totals, and
    the machine clock is the slowest tenant's finish cycle."""
    result = _colocated_result()
    per_tenant = result.per_tenant.values()
    assert sum(t.stats.instructions_issued for t in per_tenant) == (
        result.machine.instructions_issued
    )
    assert sum(t.stats.global_memory_instructions for t in per_tenant) == (
        result.machine.global_memory_instructions
    )
    assert sum(t.stats.warps_retired for t in per_tenant) == (
        result.machine.warps_retired
    )
    assert sum(t.inter_sm_dram_conflicts for t in per_tenant) == (
        result.inter_sm_dram_conflicts
    )
    assert max(t.finish_cycle for t in per_tenant) == result.machine.cycles
    assert max(t.stats.cycles for t in per_tenant) == result.machine.cycles


def test_tenant_results_invariant_under_label_permutation():
    """Renaming tenants (fixed SM assignment) only relabels the breakdown."""
    base = _colocated_result(("alpha", "beta", "gamma"))
    renamed = _colocated_result(("zeta", "yankee", "xray"))
    mapping = {"alpha": "zeta", "beta": "yankee", "gamma": "xray"}
    assert [s.cycles for s in base.per_sm] == [s.cycles for s in renamed.per_sm]
    assert base.per_sm == renamed.per_sm
    assert base.machine == renamed.machine
    assert base.inter_sm_dram_conflicts == renamed.inter_sm_dram_conflicts
    for old, new in mapping.items():
        a, b = base.per_tenant[old], renamed.per_tenant[new]
        assert a.stats == b.stats
        assert a.sm_ids == b.sm_ids
        assert a.finish_cycle == b.finish_cycle
        assert a.inter_sm_dram_conflicts == b.inter_sm_dram_conflicts


@settings(max_examples=100)
@given(addresses, st.sampled_from([16, 32, 64, 128, 768]))
def test_specialized_set_hashes_match_generic(address, num_sets):
    """specialize_set_hash closures are bit-identical to the generic hashes."""
    from repro.mem.hashing import (
        ipoly_set_index,
        linear_set_index,
        specialize_set_hash,
        xor_set_index,
    )

    block = address // BLOCK_SIZE
    for generic in (xor_set_index, linear_set_index, ipoly_set_index):
        specialized = specialize_set_hash(generic, num_sets)
        assert specialized(block) == generic(block, num_sets), (generic.__name__, num_sets)
