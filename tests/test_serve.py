"""Tests for the serving layer (``repro.serve``).

The end-to-end class drives a real ``ReproService`` over real sockets (an
event loop on a background thread, ``http.client`` on this one), pinning
the PR's acceptance contract: N identical + M distinct concurrent requests
produce exactly M simulations, every response is byte-identical to a direct
``execute()``, and the ``/stats`` books reconcile
(hits + coalesced + executed == requests served).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.api import (
    JobRecord,
    JobState,
    MultiTenantRequest,
    RunConfig,
    SimulationRequest,
    TenantSpec,
    execute,
)
from repro.harness.cache import ResultCache
from repro.harness.faults import FaultPlan, configure_chaos
from repro.harness.parallel import RetryPolicy
from repro.serve import (
    BatchQueue,
    Coalescer,
    QueuedJob,
    ReproService,
    ServiceStats,
    canonical_json,
    decode_request_payload,
)

SMALL = RunConfig(scale=0.02, seed=1)


def direct_bytes(request) -> bytes:
    """What ``/simulate`` must answer: canonical JSON of a direct run."""
    return canonical_json(execute(request).to_dict())


class ServiceHandle:
    """A live service on a background event-loop thread."""

    def __init__(self, **kwargs):
        kwargs.setdefault("host", "127.0.0.1")
        kwargs.setdefault("port", 0)
        self.service = ReproService(**kwargs)
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(timeout=15), "service failed to start"

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.service.start())
        self._started.set()
        self._loop.run_until_complete(self.service.wait_closed())
        self._loop.close()

    # -- client side ---------------------------------------------------
    def request(self, method: str, path: str, body: bytes | None = None):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.service.port, timeout=120
        )
        try:
            conn.request(method, path, body=body)
            response = conn.getresponse()
            data = response.read()
            headers = {k.lower(): v for k, v in response.getheaders()}
            return response.status, headers, data
        finally:
            conn.close()

    def simulate(self, request):
        payload = json.dumps(request.to_dict()).encode()
        return self.request("POST", "/simulate", payload)

    def stats(self) -> dict:
        status, _, body = self.request("GET", "/stats")
        assert status == 200
        return json.loads(body)

    def shutdown(self, *, timeout: float = 60.0) -> None:
        if self._thread.is_alive():
            status, _, _ = self.request("POST", "/shutdown", b"")
            assert status == 200
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), "service did not drain"


@pytest.fixture
def service_factory():
    handles: list[ServiceHandle] = []

    def start(**kwargs) -> ServiceHandle:
        handle = ServiceHandle(**kwargs)
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        try:
            handle.shutdown()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# End-to-end over real sockets
# ---------------------------------------------------------------------------
class TestServiceEndToEnd:
    def test_healthz(self, service_factory):
        handle = service_factory()
        status, _, body = handle.request("GET", "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_simulate_matches_direct_execute(self, service_factory):
        handle = service_factory()
        request = SimulationRequest("ATAX", "gto", SMALL)
        status, headers, body = handle.simulate(request)
        assert status == 200
        assert headers["x-repro-source"] == "executed"
        assert headers["x-repro-cache-key"] == request.cache_key()
        assert body == direct_bytes(request)

    def test_cache_hit_served_instantly(self, service_factory, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        handle = service_factory(cache=cache)
        request = SimulationRequest("ATAX", "gto", SMALL)
        first = handle.simulate(request)
        second = handle.simulate(request)
        assert first[1]["x-repro-source"] == "executed"
        assert second[1]["x-repro-source"] == "cache"
        assert first[2] == second[2] == direct_bytes(request)
        stats = handle.stats()
        assert stats["hits"] == 1 and stats["executed"] == 1

    def test_acceptance_n_identical_plus_m_distinct(self, service_factory, tmp_path):
        """N identical + M distinct concurrent requests -> M simulations."""
        cache = ResultCache(tmp_path / "cache")
        # The generous linger holds the first batch open long enough that
        # every identical arrival overlaps the in-flight leader.
        handle = service_factory(cache=cache, linger=0.25, workers=2)
        identical = SimulationRequest("ATAX", "gto", SMALL)
        distinct = [
            identical,  # the leader of the identical group
            SimulationRequest("SYRK", "gto", SMALL),
            SimulationRequest("ATAX", "lrr", SMALL),
        ]
        n_identical, requests = 4, []
        requests += [identical] * (n_identical - 1)
        requests += distinct
        m_distinct = len(distinct)

        outcomes = [None] * len(requests)

        def submit(slot: int) -> None:
            outcomes[slot] = handle.simulate(requests[slot])

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(len(requests))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert all(outcome is not None for outcome in outcomes)
        assert all(status == 200 for status, _, _ in outcomes)

        # Exactly M simulations ran; the N-1 extra identical requests were
        # coalesced onto the in-flight leader or served from the cache.
        stats = handle.stats()
        assert stats["executed"] == m_distinct
        assert stats["coalesced"] + stats["hits"] == n_identical - 1
        assert stats["requests"] == len(requests)
        # The books reconcile: every request answered exactly one way.
        assert stats["hits"] + stats["coalesced"] + stats["executed"] \
            == stats["served"] == stats["requests"]
        assert stats["reconciles"] is True

        # Byte-identity: responses equal a direct execute(), and the
        # identical group's responses match each other exactly.
        by_request = {}
        for request, (_, _, body) in zip(requests, outcomes):
            by_request.setdefault(request.cache_key(), set()).add(body)
        assert all(len(bodies) == 1 for bodies in by_request.values())
        for request in distinct:
            assert direct_bytes(request) in by_request[request.cache_key()]

    def test_multi_tenant_request_served(self, service_factory):
        handle = service_factory()
        request = MultiTenantRequest(
            tenants=(
                TenantSpec("a", "ATAX", "gto", sm_ids=(0,)),
                TenantSpec("b", "SYRK", "gto", sm_ids=(1,), address_space=1),
            ),
            run_config=SMALL,
        )
        status, headers, body = handle.simulate(request)
        assert status == 200
        payload = json.loads(body)
        assert payload["kind"] == "SimulationResult"
        assert body == direct_bytes(request)

    def test_bad_payloads_rejected_not_crashed(self, service_factory):
        handle = service_factory()
        cases = [
            b"this is not json",
            json.dumps({"kind": "SomethingElse"}).encode(),
            json.dumps({"kind": "SimulationRequest", "schema": 999}).encode(),
            json.dumps(
                SimulationRequest("NOPE-NOT-A-BENCHMARK", "gto", SMALL).to_dict()
            ).encode(),
        ]
        for body in cases:
            status, _, response = handle.request("POST", "/simulate", body)
            assert status == 400, response
        stats = handle.stats()
        assert stats["rejected"] == len(cases)
        assert stats["requests"] == 0  # none of them ever became a job
        # The server is still healthy afterwards.
        assert handle.request("GET", "/healthz")[0] == 200

    def test_unknown_path_and_wrong_method(self, service_factory):
        handle = service_factory()
        assert handle.request("GET", "/nope")[0] == 404
        assert handle.request("POST", "/healthz", b"")[0] == 405
        assert handle.request("GET", "/simulate")[0] == 405

    def test_jobs_endpoint_tracks_lifecycle(self, service_factory):
        handle = service_factory()
        request = SimulationRequest("ATAX", "gto", SMALL)
        _, headers, _ = handle.simulate(request)
        job_id = headers["x-repro-job"]
        status, _, body = handle.request("GET", f"/jobs/{job_id}")
        assert status == 200
        record = JobRecord.from_dict(json.loads(body))
        assert record.state is JobState.DONE
        assert record.source == "executed"
        assert record.cache_key == request.cache_key()
        assert record.benchmark == "ATAX" and record.scheduler == "gto"
        status, _, body = handle.request("GET", "/jobs")
        assert status == 200
        listed = json.loads(body)["jobs"]
        assert any(j["data"]["fields"]["job_id"] == job_id for j in listed)
        assert handle.request("GET", "/jobs/unknown-id")[0] == 404

    def test_graceful_drain_finishes_inflight_work(self, service_factory):
        handle = service_factory(linger=0.3)
        request = SimulationRequest("ATAX", "gto", SMALL)
        outcome = []

        def submit() -> None:
            outcome.append(handle.simulate(request))

        thread = threading.Thread(target=submit)
        thread.start()
        # Let the request land in the (lingering) queue, then drain.
        import time

        time.sleep(0.1)
        handle.shutdown()
        thread.join(timeout=300)
        assert outcome and outcome[0][0] == 200
        assert outcome[0][2] == direct_bytes(request)
        # The listener is closed: new connections are refused.
        with pytest.raises(OSError):
            handle.request("GET", "/healthz")

    def test_simulation_failure_reported_and_reconciled(self, service_factory):
        handle = service_factory()
        # Valid names (the cache-key pass accepts it) but a geometry that
        # fails at materialisation time, inside the engine.
        bad = SimulationRequest("ATAX", "gto", RunConfig(scale=0.02, num_ctas=0))
        status, _, body = handle.simulate(bad)
        assert status == 500
        error = json.loads(body)["error"]
        assert bad.cache_key() in error  # BatchExecutionError attribution
        good = SimulationRequest("ATAX", "gto", SMALL)
        assert handle.simulate(good)[0] == 200
        stats = handle.stats()
        assert stats["failed"] == 1 and stats["executed"] == 1
        assert stats["requests"] == 2 and stats["reconciles"] is True


class TestResilienceEndToEnd:
    """Acceptance: an injected batch timeout and a shed request, with the
    /stats books still reconciling exactly."""

    def test_timeout_and_shed_reconcile(self, service_factory):
        import time

        # Every simulation on this service hangs far past the batch
        # deadline, so the first dispatched batch is guaranteed to time out.
        configure_chaos(
            FaultPlan(seed=1, rate=1.0, kinds=("hang",), hang_seconds=30.0)
        )
        try:
            handle = service_factory(
                backend="chaos",
                linger=0.5,
                workers=1,
                retry=RetryPolicy(max_attempts=1, timeout_seconds=0.3),
                max_queue_depth=1,
            )
            slow = SimulationRequest("ATAX", "gto", SMALL)
            outcomes = []

            def submit() -> None:
                outcomes.append(handle.simulate(slow))

            thread = threading.Thread(target=submit)
            thread.start()
            # Wait for the slow request to park in the lingering queue ...
            deadline = time.time() + 10
            while handle.service.queue.depth == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert handle.service.queue.depth == 1
            # ... so a distinct arrival finds the queue at capacity and is
            # shed with 503 + Retry-After instead of piling up.
            status, headers, body = handle.simulate(
                SimulationRequest("SYRK", "gto", SMALL)
            )
            assert status == 503
            assert int(headers["retry-after"]) >= 1
            assert "at its limit" in json.loads(body)["error"]

            # The parked request eventually dispatches, hangs, and fails
            # against the 0.3s per-batch deadline.
            thread.join(timeout=60)
            assert outcomes and outcomes[0][0] == 500
            assert "deadline" in json.loads(outcomes[0][2])["error"]

            stats = handle.stats()
            assert stats["requests"] == 2
            assert stats["shed"] == 1
            assert stats["failed"] == 1
            assert stats["timed_out"] == 1
            assert stats["executed"] == 0
            # Extended invariant:
            # hits + coalesced + executed + failed + shed == requests.
            assert stats["hits"] + stats["coalesced"] + stats["executed"] \
                + stats["failed"] + stats["shed"] == stats["requests"]
            assert stats["reconciles"] is True
            handle.shutdown()
        finally:
            configure_chaos(None)

    def test_batch_retry_recovers_a_transient_failure(self, service_factory):
        # Attempt 1 of the lone request fails; the queue's bounded retry
        # re-runs the batch and attempt 2 succeeds — the client sees 200.
        configure_chaos(
            FaultPlan(seed=1, rate=1.0, kinds=("fail",), only_attempts=(1,))
        )
        try:
            handle = service_factory(
                backend="chaos",
                retry=RetryPolicy(max_attempts=3, backoff_base=0.0,
                                  jitter=0.0),
            )
            request = SimulationRequest("ATAX", "gto", SMALL)
            status, _, body = handle.simulate(request)
            assert status == 200
            stats = handle.stats()
            assert stats["executed"] == 1 and stats["failed"] == 0
            assert stats["retried"] >= 1
            assert stats["reconciles"] is True
        finally:
            configure_chaos(None)


# ---------------------------------------------------------------------------
# Unit coverage of the pieces
# ---------------------------------------------------------------------------
class TestBatchQueueDrain:
    """Satellite: drain must surface worker exceptions, not discard them."""

    def _job(self, benchmark="ATAX"):
        request = SimulationRequest(benchmark, "gto", SMALL)
        return QueuedJob(
            request=request,
            cache_key=request.cache_key(),
            record=JobRecord.for_request(
                request, job_id=f"j-{benchmark}", cache_key=request.cache_key()
            ),
        )

    def test_drain_surfaces_worker_exceptions(self):
        async def scenario():
            def exploding_hook(outcomes, wall):
                raise RuntimeError("stats hook exploded")

            queue = BatchQueue(workers=1, linger=0.0,
                               on_batch_done=exploding_hook)
            queue.start()
            queue.put(self._job())
            return await queue.drain()

        summary = asyncio.run(scenario())
        assert summary["drain_errors"] == 1
        assert "stats hook exploded" in summary["errors"][0]
        assert summary["abandoned_batches"] == 0

    def test_clean_drain_reports_zero_errors(self):
        async def scenario():
            queue = BatchQueue(workers=1, linger=0.0)
            queue.start()
            queue.put(self._job())
            return await queue.drain()

        summary = asyncio.run(scenario())
        assert summary == {"drain_errors": 0, "abandoned_batches": 0,
                           "errors": []}

    def test_timed_out_batch_is_abandoned_and_counted(self):
        configure_chaos(
            FaultPlan(seed=1, rate=1.0, kinds=("hang",), hang_seconds=30.0)
        )
        try:
            failures = []

            async def scenario():
                queue = BatchQueue(
                    workers=1, linger=0.0,
                    retry=RetryPolicy(max_attempts=1, timeout_seconds=0.2),
                    on_job_done=lambda job, result, error:
                        failures.append((job, error)),
                )
                queue.start()
                request = SimulationRequest("ATAX", "gto", SMALL,
                                            backend="chaos")
                queue.put(QueuedJob(
                    request=request,
                    cache_key=request.cache_key(),
                    record=JobRecord.for_request(
                        request, job_id="j-hang",
                        cache_key=request.cache_key(),
                    ),
                ))
                return await queue.drain()

            summary = asyncio.run(scenario())
            assert summary["abandoned_batches"] == 1
            assert summary["drain_errors"] == 0
            assert len(failures) == 1
            job, error = failures[0]
            assert "deadline" in str(error)
        finally:
            configure_chaos(None)


class TestCoalescer:
    def test_single_flight_lease(self):
        async def scenario():
            coalescer = Coalescer()
            future, leader = coalescer.lease("k1")
            assert leader
            again, follower_leads = coalescer.lease("k1")
            assert again is future and not follower_leads
            assert len(coalescer) == 1 and coalescer.inflight("k1")
            coalescer.resolve("k1", "value")
            assert len(coalescer) == 0
            assert await future == "value"
            # A later lease starts a fresh flight.
            _, leader_again = coalescer.lease("k1")
            assert leader_again

        asyncio.run(scenario())

    def test_failure_propagates_to_all_waiters(self):
        async def scenario():
            coalescer = Coalescer()
            future, _ = coalescer.lease("k1")
            coalescer.fail("k1", RuntimeError("boom"))
            with pytest.raises(RuntimeError, match="boom"):
                await future

        asyncio.run(scenario())


class TestServiceStats:
    def test_reconciliation_invariant(self):
        stats = ServiceStats()
        for _ in range(3):
            stats.record_request()
        stats.record_hit()
        stats.record_coalesced()
        stats.record_batch([("reference", 1000)], wall_seconds=0.5)
        assert stats.reconciles()
        snapshot = stats.snapshot(queue_depth=2, inflight=1)
        assert snapshot["served"] == 3 and snapshot["queue_depth"] == 2
        assert snapshot["per_backend"]["reference"]["executed"] == 1
        assert snapshot["per_backend"]["reference"]["cycles_per_second"] == 2000.0

    def test_rejects_do_not_unbalance_the_books(self):
        stats = ServiceStats()
        stats.record_rejected()
        assert stats.reconciles()
        entry = stats.ledger_entry()
        assert entry["kind"] == "serve" and entry["rejected"] == 1

    def test_batch_wall_split_across_backends(self):
        stats = ServiceStats()
        stats.record_batch(
            [("reference", 100), ("vector", 300)], wall_seconds=1.0
        )
        assert stats.per_backend["reference"].wall_seconds == 0.5
        assert stats.per_backend["vector"].cycles == 300
        assert stats.executed == 2 and stats.batches == 1


class TestRequestDecoding:
    def test_dispatches_both_kinds(self):
        single = SimulationRequest("ATAX", "gto", SMALL)
        assert decode_request_payload(single.to_dict()) == single
        multi = MultiTenantRequest(
            tenants=(TenantSpec("a", "ATAX", "gto", sm_ids=(0,)),),
            run_config=SMALL,
        )
        assert decode_request_payload(multi.to_dict()) == multi

    def test_rejects_unknown_kind_and_non_mapping(self):
        with pytest.raises(ValueError, match="kind"):
            decode_request_payload({"kind": "Nope"})
        with pytest.raises(ValueError, match="object"):
            decode_request_payload([1, 2, 3])


class TestJobLifecycle:
    def test_legal_transitions(self):
        record = JobRecord.for_request(
            SimulationRequest("ATAX", "gto", SMALL),
            job_id="j1",
            cache_key="k",
        )
        assert record.state is JobState.QUEUED
        record.advance(JobState.RUNNING)
        record.advance(JobState.DONE, source="executed", finished_at=1.0)
        assert record.source == "executed" and record.finished_at == 1.0

    def test_cache_hits_skip_running(self):
        record = JobRecord.for_request(
            SimulationRequest("ATAX", "gto", SMALL), job_id="j2", cache_key="k"
        )
        record.advance(JobState.DONE, source="cache")
        assert record.state is JobState.DONE

    def test_illegal_transitions_rejected(self):
        record = JobRecord.for_request(
            SimulationRequest("ATAX", "gto", SMALL), job_id="j3", cache_key="k"
        )
        record.advance(JobState.FAILED, error="boom")
        with pytest.raises(ValueError, match="illegal job transition"):
            record.advance(JobState.RUNNING)
        with pytest.raises(ValueError, match="illegal job transition"):
            record.advance(JobState.DONE)
