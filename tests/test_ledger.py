"""Tests for the bench ledger (repro.harness.ledger)."""

import json

from repro.api import RunConfig, SimulationRequest
from repro.harness.ledger import (
    keys_digest,
    ledger_enabled,
    ledger_path,
    merge_ledger_entries,
    read_ledger,
    record_sweep,
    summarize_ledger,
    sweep_entry,
)
from repro.harness.parallel import SweepStats, run_jobs

SMALL = RunConfig(scale=0.05, seed=1)


class TestRecording:
    def test_record_and_read(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        stats = SweepStats(jobs=4, cache_hits=1, executed=3, workers=2,
                           wall_seconds=1.5, backend="reference")
        assert record_sweep(stats, path=path) == path
        entries = read_ledger(path)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["jobs"] == 4
        assert entry["cache_hits"] == 1
        assert entry["executed"] == 3
        assert entry["workers"] == 2
        assert entry["backend"] == "reference"
        assert entry["ts"] > 0

    def test_appends(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        for _ in range(3):
            record_sweep(SweepStats(jobs=1, executed=1), path=path)
        assert len(read_ledger(path)) == 3

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        record_sweep(SweepStats(jobs=1, executed=1), path=path)
        with open(path, "a") as fh:
            fh.write("not json\n")
        record_sweep(SweepStats(jobs=2, executed=2), path=path)
        entries = read_ledger(path)
        assert [e["jobs"] for e in entries] == [1, 2]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_ledger(tmp_path / "absent.jsonl") == []


class TestEnvironmentControl:
    def test_disabled_by_conftest_env(self):
        # The suite runs with REPRO_LEDGER=0 (see conftest.py).
        assert not ledger_enabled()
        assert record_sweep(SweepStats(jobs=1)) is None

    def test_enabled_with_custom_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "1")
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(tmp_path / "custom.jsonl"))
        assert ledger_enabled()
        assert ledger_path() == tmp_path / "custom.jsonl"
        assert record_sweep(SweepStats(jobs=1)) == tmp_path / "custom.jsonl"
        assert len(read_ledger()) == 1


class TestSweepIntegration:
    def test_every_sweep_is_recorded(self, tmp_path, monkeypatch):
        path = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", "1")
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        jobs = [SimulationRequest("ATAX", "gto", SMALL)]
        run_jobs(jobs, workers=1, cache=None)
        run_jobs(jobs, workers=1, cache=None)
        entries = read_ledger(path)
        assert len(entries) == 2
        assert all(e["jobs"] == 1 and e["executed"] == 1 for e in entries)
        assert all(e["backend"] == "reference" for e in entries)
        assert all(e["wall_seconds"] > 0 for e in entries)

    def test_warm_sweep_shows_in_ledger(self, tmp_path, monkeypatch):
        from repro.harness.cache import ResultCache

        path = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", "1")
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        cache = ResultCache(tmp_path / "cache")
        jobs = [SimulationRequest("ATAX", "gto", SMALL)]
        run_jobs(jobs, workers=1, cache=cache)   # cold
        run_jobs(jobs, workers=1, cache=cache)   # warm
        cold, warm = read_ledger(path)
        assert cold["cache_hits"] == 0 and warm["cache_hits"] == 1
        summary = summarize_ledger([cold, warm])
        assert summary["sweeps"] == 2
        assert summary["cold_sweeps"] == 1
        assert summary["warm_sweeps"] == 1
        assert summary["hit_rate"] == 0.5


class TestSummary:
    def test_summary_shape(self):
        entries = [
            {"jobs": 4, "cache_hits": 0, "cache_hit_rate": 0.0,
             "wall_seconds": 8.0, "backend": "reference"},
            {"jobs": 4, "cache_hits": 4, "cache_hit_rate": 1.0,
             "wall_seconds": 0.1, "backend": "lockstep"},
        ]
        summary = summarize_ledger(entries)
        assert summary["jobs"] == 8
        assert summary["cache_hits"] == 4
        assert summary["mean_cold_wall_seconds"] == 8.0
        assert summary["mean_warm_wall_seconds"] == 0.1
        assert summary["sweeps_by_backend"] == {"reference": 1, "lockstep": 1}

    def test_empty_summary(self):
        summary = summarize_ledger([])
        assert summary["sweeps"] == 0
        assert summary["hit_rate"] == 0.0

    def test_entries_are_json_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        record_sweep(SweepStats(jobs=1, executed=1, backend="reference"), path=path)
        line = path.read_text().strip()
        assert json.loads(line)["backend"] == "reference"


class TestMergeDedup:
    def test_coordinator_retry_rows_count_once(self):
        """A re-dispatched shard delivers the *same* sweep row twice; the
        merge must drop the duplicate or summarize_ledger double-counts
        that worker's jobs (the historic bug)."""
        row = sweep_entry(
            SweepStats(jobs=4, executed=4, backend="reference"),
            keys=["a" * 32, "b" * 32],
        )
        other = sweep_entry(
            SweepStats(jobs=2, executed=2, backend="reference"),
            keys=["c" * 32],
        )
        merged = merge_ledger_entries([[row, other], [dict(row)]])
        assert merged == [row, other]
        assert summarize_ledger(merged)["jobs"] == 6

    def test_keys_digest_ignores_order_and_duplicates(self):
        assert keys_digest(["b" * 32, "a" * 32]) == keys_digest(
            ["a" * 32, "b" * 32, "a" * 32]
        )
        assert keys_digest(["a" * 32]) != keys_digest(["b" * 32])

    def test_rows_without_identity_are_kept_verbatim(self):
        # Legacy sweep rows (no keys_digest) and serve drain rows describe
        # sessions, not re-mergeable work units: never dropped.
        legacy = {"jobs": 1, "cache_hits": 0}
        serve = {"kind": "serve", "requests": 9}
        merged = merge_ledger_entries([[legacy, serve], [dict(legacy)]])
        assert merged == [legacy, serve, legacy]

    def test_bench_rows_dedup_by_rev_and_ts(self):
        bench = {"kind": "bench", "rev": "abc123", "ts": 1.0, "best_sps": 5.0}
        merged = merge_ledger_entries([[bench], [dict(bench)],
                                       [{**bench, "ts": 2.0}]])
        assert merged == [bench, {**bench, "ts": 2.0}]
