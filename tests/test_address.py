"""Unit tests for address decomposition and set-index hashing."""

import pytest

from repro.mem.address import (
    BLOCK_SIZE,
    AddressMapping,
    block_address,
    block_base,
    ilog2,
    is_power_of_two,
)
from repro.mem.hashing import get_set_hash, ipoly_set_index, linear_set_index, xor_set_index


class TestHelpers:
    def test_block_address(self):
        assert block_address(0) == 0
        assert block_address(127) == 0
        assert block_address(128) == 1
        assert block_address(BLOCK_SIZE * 10 + 5) == 10

    def test_block_base(self):
        assert block_base(130) == 128
        assert block_base(127) == 0

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(768)

    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(128) == 7
        with pytest.raises(ValueError):
            ilog2(768)


class TestAddressMapping:
    def test_decompose_power_of_two(self):
        mapping = AddressMapping(num_sets=32, line_size=128)
        tag, set_index, offset = mapping.decompose(0x1234 * 128 + 5)
        assert offset == 5
        assert tag == 0x1234
        assert set_index == 0x1234 % 32

    def test_decompose_non_power_of_two_sets(self):
        # The GTX 480 L2 has 768 sets.
        mapping = AddressMapping(num_sets=768, line_size=128)
        address = 12345 * 128 + 17
        assert mapping.byte_offset(address) == 17
        assert mapping.set_index(address) == 12345 % 768

    def test_block_round_trip(self):
        mapping = AddressMapping(num_sets=32, line_size=128)
        for block in (0, 1, 17, 12345):
            assert mapping.block(mapping.block_to_byte(block)) == block

    def test_custom_hash_is_used(self):
        mapping = AddressMapping(num_sets=32, line_size=128, set_hash=lambda b, n: 7)
        assert mapping.set_index(0xDEADBEEF) == 7


class TestHashes:
    @pytest.mark.parametrize("num_sets", [16, 32, 64, 768])
    @pytest.mark.parametrize("hash_name", ["linear", "xor", "ipoly"])
    def test_hash_in_range(self, num_sets, hash_name):
        fn = get_set_hash(hash_name)
        for block in range(0, 100000, 997):
            assert 0 <= fn(block, num_sets) < num_sets

    def test_linear_matches_modulo(self):
        assert linear_set_index(100, 32) == 100 % 32
        assert linear_set_index(100, 768) == 100 % 768

    def test_xor_spreads_power_of_two_strides(self):
        # Blocks separated by exactly num_sets collide under linear indexing
        # but should spread under XOR hashing.
        num_sets = 32
        linear_sets = {linear_set_index(i * num_sets, num_sets) for i in range(64)}
        xor_sets = {xor_set_index(i * num_sets, num_sets) for i in range(64)}
        assert len(linear_sets) == 1
        assert len(xor_sets) > 8

    def test_xor_deterministic(self):
        assert xor_set_index(123456, 32) == xor_set_index(123456, 32)

    def test_ipoly_mixes_bits(self):
        values = {ipoly_set_index(b, 64) for b in range(0, 64 * 64, 64)}
        assert len(values) > 16

    def test_unknown_hash_raises(self):
        with pytest.raises(KeyError):
            get_set_hash("bogus")
