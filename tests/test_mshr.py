"""Unit tests for the MSHR file."""

import pytest

from repro.mem.mshr import MSHRFile, MSHRTarget


@pytest.fixture
def mshr():
    return MSHRFile(num_entries=4, max_merged=2)


def target(wid=0, rid=0):
    return MSHRTarget(wid=wid, request_id=rid)


class TestMSHR:
    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            MSHRFile(num_entries=0)
        with pytest.raises(ValueError):
            MSHRFile(max_merged=0)

    def test_allocate_new_entry(self, mshr):
        entry, is_new = mshr.allocate(100, target(1, 1), now=0)
        assert is_new and entry is not None
        assert entry.block == 100
        assert mshr.occupancy == 1
        assert mshr.stats.allocations == 1

    def test_merge_same_block(self, mshr):
        mshr.allocate(100, target(1, 1), now=0)
        entry, is_new = mshr.allocate(100, target(2, 2), now=1)
        assert not is_new
        assert entry.num_targets == 2
        assert mshr.occupancy == 1
        assert mshr.stats.merges == 1

    def test_merge_limit(self, mshr):
        mshr.allocate(100, target(1, 1), now=0)
        mshr.allocate(100, target(2, 2), now=1)
        entry, is_new = mshr.allocate(100, target(3, 3), now=2)
        assert entry is None and not is_new
        assert mshr.stats.full_stalls == 1

    def test_capacity_limit(self, mshr):
        for block in range(4):
            mshr.allocate(block, target(0, block), now=0)
        entry, _ = mshr.allocate(99, target(0, 99), now=1)
        assert entry is None
        assert not mshr.can_allocate(99)
        assert mshr.can_allocate(0)  # existing block still mergeable

    def test_fill_releases_entry(self, mshr):
        mshr.allocate(100, target(1, 1), now=0)
        entry = mshr.fill(100)
        assert entry is not None
        assert entry.targets[0].wid == 1
        assert mshr.occupancy == 0
        assert mshr.fill(100) is None

    def test_destination_and_shared_slot(self, mshr):
        entry, _ = mshr.allocate(7, target(0, 0), now=0, destination="shared", shared_slot=12)
        assert entry.destination == "shared"
        assert entry.shared_slot == 12

    def test_outstanding_for_warp(self, mshr):
        mshr.allocate(1, target(3, 1), now=0)
        mshr.allocate(2, target(3, 2), now=0)
        mshr.allocate(3, target(4, 3), now=0)
        assert mshr.outstanding_for_warp(3) == 2
        assert mshr.outstanding_for_warp(4) == 1
        assert mshr.outstanding_for_warp(9) == 0

    def test_outstanding_blocks_order(self, mshr):
        mshr.allocate(5, target(), now=0)
        mshr.allocate(6, target(), now=1)
        assert mshr.outstanding_blocks() == [5, 6]

    def test_peak_occupancy(self, mshr):
        for block in range(3):
            mshr.allocate(block, target(), now=0)
        mshr.fill(0)
        assert mshr.stats.peak_occupancy == 3
