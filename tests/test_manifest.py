"""Tests for sweep checkpoint manifests (repro.harness.manifest)."""

import json

import pytest

from repro.harness.cache import ResultCache
from repro.harness.faults import FaultPlan, configure_chaos
from repro.harness.manifest import (
    ManifestEntry,
    append_outcome,
    load_manifest,
    merge_manifests,
    summarize_manifest,
)
from repro.harness.parallel import SweepJob, run_jobs
from repro.harness.runner import RunConfig

SMALL = RunConfig(scale=0.02, seed=1)


def entry(key, status, **kwargs):
    return ManifestEntry(key=key, status=status, **kwargs)


class TestManifestFile:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "sweep.manifest"
        append_outcome(path, entry("k1", "done", attempts=2, benchmark="ATAX",
                                   scheduler="gto", backend="reference"))
        append_outcome(path, entry("k2", "failed", error="boom"))
        entries = load_manifest(path)
        assert set(entries) == {"k1", "k2"}
        assert entries["k1"].status == "done" and entries["k1"].attempts == 2
        assert entries["k2"].error == "boom"

    def test_bad_status_rejected(self):
        with pytest.raises(ValueError, match="bad manifest status"):
            entry("k", "exploded")

    def test_done_wins_over_later_failure(self, tmp_path):
        # Merged partial runs can interleave lines arbitrarily; a completed
        # result (durable in the cache) must never be forced to re-run by a
        # stray failure line.
        path = tmp_path / "m.manifest"
        append_outcome(path, entry("k", "failed"))
        append_outcome(path, entry("k", "done"))
        append_outcome(path, entry("k", "timeout"))
        assert load_manifest(path)["k"].status == "done"

    def test_latest_wins_among_non_done(self, tmp_path):
        path = tmp_path / "m.manifest"
        append_outcome(path, entry("k", "failed"))
        append_outcome(path, entry("k", "timeout"))
        assert load_manifest(path)["k"].status == "timeout"

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "m.manifest"
        append_outcome(path, entry("k1", "done"))
        with open(path, "a") as fh:
            fh.write("{not json\n")
            fh.write(json.dumps({"schema": 999, "key": "k2", "status": "done"}) + "\n")
            fh.write(json.dumps({"schema": 1, "key": "k3", "status": "nope"}) + "\n")
        entries = load_manifest(path)
        assert set(entries) == {"k1"}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_manifest(tmp_path / "nope.manifest") == {}

    def test_merge_manifests_is_a_keyed_union(self, tmp_path):
        a, b = tmp_path / "a.manifest", tmp_path / "b.manifest"
        append_outcome(a, entry("k1", "done"))
        append_outcome(a, entry("k2", "failed"))
        append_outcome(b, entry("k2", "done"))   # done wins across files
        append_outcome(b, entry("k3", "timeout"))
        merged = merge_manifests([a, b])
        assert {k: e.status for k, e in merged.items()} == {
            "k1": "done", "k2": "done", "k3": "timeout",
        }

    def test_summarize_counts(self, tmp_path):
        path = tmp_path / "m.manifest"
        append_outcome(path, entry("k1", "done", attempts=2))
        append_outcome(path, entry("k2", "failed", attempts=3))
        summary = summarize_manifest(load_manifest(path))
        assert summary["done"] == 1 and summary["failed"] == 1
        assert summary["keys"] == 2 and summary["attempts"] == 5


class TestConcurrentAppends:
    def test_two_process_appends_all_land(self, tmp_path):
        """Several coordinator processes (a local sweep and a distributed
        one, say) may append to one manifest concurrently.  Single-line
        O_APPEND writes keep every record intact: nothing interleaves,
        nothing is lost."""
        import multiprocessing

        path = tmp_path / "m.manifest"
        n = 50

        def writer(prefix: str) -> None:
            for i in range(n):
                append_outcome(path, ManifestEntry(
                    key=f"{prefix}{i}", status="done",
                    benchmark="ATAX", scheduler="gto",
                ))

        ctx = multiprocessing.get_context()
        procs = [ctx.Process(target=writer, args=(p,)) for p in ("a", "b")]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        entries = load_manifest(path)
        assert set(entries) == {f"{p}{i}" for p in ("a", "b") for i in range(n)}
        assert all(e.status == "done" for e in entries.values())

    def test_torn_tail_from_killed_writer_is_skipped(self, tmp_path):
        """A writer killed mid-line (SIGKILLed worker, full disk) leaves a
        torn tail; loading skips it and done-wins still applies to every
        complete line."""
        path = tmp_path / "m.manifest"
        append_outcome(path, entry("k1", "failed"))
        append_outcome(path, entry("k1", "done"))
        append_outcome(path, entry("k2", "done"))
        with open(path, "a") as fh:
            fh.write('{"schema": 1, "key": "k3", "sta')  # no newline: torn
        entries = load_manifest(path)
        assert set(entries) == {"k1", "k2"}
        assert entries["k1"].status == "done"


class TestSweepResume:
    """Acceptance: resuming executes only the not-yet-done jobs."""

    def _jobs(self, benchmarks=("SYRK", "ATAX"), backend=None):
        return [
            SweepJob(b, s, SMALL, backend=backend)
            for b in benchmarks
            for s in ("gto", "ciao-c")
        ]

    def test_resume_skips_done_work(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        manifest = tmp_path / "sweep.manifest"
        first = run_jobs(self._jobs(), workers=1, cache=cache,
                         manifest=manifest)
        assert first.stats.executed == 4
        assert summarize_manifest(load_manifest(manifest))["done"] == 4
        # Same sweep again: everything is done; nothing re-executes.
        again = run_jobs(self._jobs(), workers=1, cache=cache,
                         manifest=manifest)
        assert again.stats.executed == 0 and again.stats.cache_hits == 4
        assert again.results == first.results

    def test_resume_runs_only_the_missing_jobs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        manifest = tmp_path / "sweep.manifest"
        run_jobs(self._jobs(benchmarks=("SYRK",)), workers=1, cache=cache,
                 manifest=manifest)
        # A superset sweep over the same manifest executes only the 2 new
        # jobs; the 2 done ones come straight from the cache.
        superset = run_jobs(self._jobs(benchmarks=("SYRK", "ATAX")),
                            workers=1, cache=cache, manifest=manifest)
        assert superset.stats.executed == 2
        assert superset.stats.cache_hits == 2
        assert summarize_manifest(load_manifest(manifest))["done"] == 4

    def test_done_without_cached_result_is_re_run(self, tmp_path):
        # The manifest stores statuses, not results: a done key whose cache
        # entry is gone (cache-less resume) must re-run, not crash.
        manifest = tmp_path / "sweep.manifest"
        jobs = self._jobs(benchmarks=("SYRK",))
        run_jobs(jobs, workers=1, cache=None, manifest=manifest)
        resumed = run_jobs(jobs, workers=1, cache=None, manifest=manifest)
        assert resumed.stats.executed == 2  # nothing to serve results from

    def test_failed_entries_are_retried_on_resume(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        manifest = tmp_path / "sweep.manifest"
        jobs = self._jobs(benchmarks=("SYRK",), backend="chaos")
        configure_chaos(FaultPlan(seed=1, rate=1.0, kinds=("fail",)))
        try:
            broken = run_jobs(jobs, workers=1, cache=cache,
                              on_error="skip", manifest=manifest)
            assert broken.stats.failed == 2
            assert summarize_manifest(load_manifest(manifest))["failed"] == 2
            # Faults cleared (rate 0): the resume re-runs exactly the two
            # failed jobs and flips their manifest lines to done.
            configure_chaos(FaultPlan(seed=1, rate=0.0))
            fixed = run_jobs(jobs, workers=1, cache=cache,
                             on_error="skip", manifest=manifest)
            assert fixed.ok and fixed.stats.executed == 2
            summary = summarize_manifest(load_manifest(manifest))
            assert summary["done"] == 2 and summary["failed"] == 0
        finally:
            configure_chaos(None)


class TestSweepResumeCli:
    def test_cli_resume_accounting(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        # conftest.py disables the result cache for hermeticity; resume
        # accounting needs it, pointed at a tmp dir.
        monkeypatch.setenv("REPRO_RESULT_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(tmp_path / "ledger.jsonl"))
        manifest = str(tmp_path / "sweep.manifest")
        argv = ["sweep", "-b", "SYRK", "ATAX", "-s", "gto",
                "--scale", "0.02", "--json"]
        assert main(argv + ["--manifest", manifest]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["executed"] == 2
        assert main(argv + ["--resume", manifest]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["executed"] == 0 and second["cache_hits"] == 2
        assert second["raw_ipc"] == first["raw_ipc"]
