"""Calibration helper: print normalised IPC per scheduler for a few benchmarks.

Not part of the library API; used during development to tune the workload
models so the scheduler ordering matches the paper's Figure 8.  Runs the
whole grid through the parallel sweep engine, so ``--workers`` fans the
runs out and repeated invocations on unchanged code are served from the
result cache.

Run:  python scripts/calibrate.py [benchmarks...] [--scale S] [--workers N]
"""

import argparse
import sys

from repro.harness.parallel import SweepJob, run_jobs
from repro.harness.reporting import format_sweep_stats, format_table, geometric_mean
from repro.harness.runner import RunConfig

SCHEDULERS = ["gto", "ccws", "best-swl", "statpcal", "ciao-t", "ciao-p", "ciao-c"]


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("benchmarks", nargs="*", default=["ATAX", "SYRK", "Backprop", "Gaussian"])
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()

    config = RunConfig(scale=args.scale, seed=args.seed)
    jobs = [
        SweepJob(bench, sched, config)
        for bench in args.benchmarks
        for sched in SCHEDULERS
    ]
    outcome = run_jobs(jobs, workers=args.workers,
                       cache=None if args.no_cache else "auto")

    per_bench: dict[str, dict[str, object]] = {}
    for job, result in outcome:
        per_bench.setdefault(job.benchmark_name, {})[job.scheduler] = result

    rows = []
    norm_rows = {}
    for bench in args.benchmarks:
        results = per_bench[bench]
        base = results["gto"].ipc or 1e-9
        norm = {s: results[s].ipc / base for s in SCHEDULERS}
        norm_rows[bench] = norm
        row = {"bench": bench}
        row.update({s: norm[s] for s in SCHEDULERS})
        rows.append(row)
        print(f"--- {bench}")
        for s in SCHEDULERS:
            stats = results[s].sm0
            print(f"    {s:9s} ipc={results[s].ipc:.1f} l1={stats.l1d_hit_rate:.2f} "
                  f"sh={stats.shared_cache_hit_rate:.2f} vta={stats.vta_hits} "
                  f"aw={stats.active_warp_series.mean():.0f}")
    print()
    print(format_table(rows, float_format="{:.2f}"))
    print()
    gmeans = {s: geometric_mean(norm_rows[b][s] for b in norm_rows) for s in SCHEDULERS}
    print("geomean:", {s: round(v, 2) for s, v in gmeans.items()})
    print(format_sweep_stats(outcome.stats))
    return 0


if __name__ == "__main__":
    sys.exit(main())
