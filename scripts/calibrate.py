"""Calibration helper: print normalised IPC per scheduler for a few benchmarks.

Not part of the library API; used during development to tune the workload
models so the scheduler ordering matches the paper's Figure 8.
Run:  python scripts/calibrate.py [benchmarks...] [--scale S]
"""

import argparse
import sys
import time

from repro.harness.reporting import format_table, geometric_mean
from repro.harness.runner import run_benchmark

SCHEDULERS = ["gto", "ccws", "best-swl", "statpcal", "ciao-t", "ciao-p", "ciao-c"]


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("benchmarks", nargs="*", default=["ATAX", "SYRK", "Backprop", "Gaussian"])
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    rows = []
    norm_rows = {}
    for bench in args.benchmarks:
        per_sched = {}
        extra = {}
        for sched in SCHEDULERS:
            t0 = time.time()
            result = run_benchmark(bench, sched, scale=args.scale, seed=args.seed)
            wall = time.time() - t0
            per_sched[sched] = result.ipc
            stats = result.sm0
            extra[sched] = (stats.l1d_hit_rate, stats.shared_cache_hit_rate, stats.vta_hits,
                            stats.active_warp_series.mean(), wall)
        base = per_sched["gto"] or 1e-9
        norm = {s: per_sched[s] / base for s in SCHEDULERS}
        norm_rows[bench] = norm
        row = {"bench": bench}
        row.update({s: norm[s] for s in SCHEDULERS})
        rows.append(row)
        detail = {s: f"ipc={per_sched[s]:.1f} l1={extra[s][0]:.2f} sh={extra[s][1]:.2f} vta={extra[s][2]} aw={extra[s][3]:.0f} t={extra[s][4]:.1f}s" for s in SCHEDULERS}
        print(f"--- {bench}")
        for s in SCHEDULERS:
            print(f"    {s:9s} {detail[s]}")
    print()
    print(format_table(rows, float_format="{:.2f}"))
    print()
    gmeans = {s: geometric_mean(norm_rows[b][s] for b in norm_rows) for s in SCHEDULERS}
    print("geomean:", {s: round(v, 2) for s, v in gmeans.items()})
    return 0


if __name__ == "__main__":
    sys.exit(main())
