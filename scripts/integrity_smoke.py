#!/usr/bin/env python
"""CI smoke test for the end-to-end result integrity layer.

Two stages, both hermetic (throwaway cache / manifest / quarantine dirs):

1. **fsck + quarantine.**  Runs a small cached sweep through the CLI, then
   damages the artifacts on disk — one bit flipped inside a cache entry's
   pickle, the manifest's last line torn mid-write — and asserts
   ``repro cache fsck`` detects both (exit 1), quarantines the corrupt
   entry with a reason sidecar instead of silently unlinking it, that
   ``--repair`` strips the torn line after preserving the original bytes
   in quarantine (exit 0), that ``repro sweep --resume`` still completes
   afterwards with zero failures, and that a final fsck scan is clean.

2. **Worker audits vs the ``corrupt`` chaos kind.**  Boots two ``repro
   worker`` subprocesses; one is a deliberate liar — it runs ``--backend
   chaos`` with ``REPRO_CHAOS=7:1.0:corrupt``, so every result it returns
   has one seeded bit flipped *before* the shipped digest is computed
   (transport checks pass; only re-execution can expose the lie).  A
   sharded sweep over the reference half of the golden matrix with
   ``audit_rate=0.25`` must still complete bit-identical to the committed
   fixtures: the handshake audit catches the liar, its outcomes are
   discarded and re-dispatched (visible in the manifest), and the final
   results match ``tests/goldens/golden_stats.json`` byte for byte.

Standalone and stdlib-only, usable without installing the package::

    python scripts/integrity_smoke.py

Exit code 0 on success, 1 on any failed assertion or timeout.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

STARTUP_TIMEOUT = 30.0
SWEEP_TIMEOUT = 600.0

BENCHMARKS = ["ATAX", "BICG"]
SCHEDULERS = ["gto", "ccws"]
SCALE = "0.05"

PROCS: list[subprocess.Popen] = []


def fail(message: str):
    print(f"INTEGRITY SMOKE FAILURE: {message}", file=sys.stderr)
    for proc in PROCS:
        if proc.poll() is None:
            proc.kill()
    sys.exit(1)


def sweep(extra: list[str], env: dict) -> dict:
    run = subprocess.run(
        [sys.executable, "-m", "repro", "sweep",
         "-b", *BENCHMARKS, "-s", *SCHEDULERS,
         "--scale", SCALE, "--json", *extra],
        cwd=ROOT, env=env, capture_output=True, text=True,
        timeout=SWEEP_TIMEOUT,
    )
    if run.returncode != 0:
        fail(f"sweep {extra} failed (rc={run.returncode}): {run.stderr[:800]}")
    return json.loads(run.stdout)


def boot_worker(env: dict, name: str, extra: list[str]) -> int:
    worker = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--port", "0", *extra],
        cwd=ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    PROCS.append(worker)
    assert worker.stdout is not None
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while time.monotonic() < deadline:
        line = worker.stdout.readline()
        if not line:
            fail(f"worker {name} exited early (rc={worker.poll()})")
        print(f"[{name}] {line.rstrip()}")
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            return int(match.group(1))
    fail(f"worker {name} never announced its port")
    raise AssertionError  # unreachable


def stage_fsck(tmp: Path, env: dict) -> None:
    from repro.cli import main as cli_main

    cache_dir = Path(env["REPRO_CACHE_DIR"])
    quarantine = Path(env["REPRO_QUARANTINE_DIR"])
    manifest = tmp / "sweep.manifest"
    n_jobs = len(BENCHMARKS) * len(SCHEDULERS)

    books = sweep(["--manifest", str(manifest)], env)
    if books["failed"] != 0 or books["executed"] != n_jobs:
        fail(f"seed sweep books are wrong: {books['executed']=} "
             f"{books['failed']=}")
    print(f"seeded {n_jobs} cached results + manifest")

    # Damage 1: one bit flipped in the middle of a cache entry's pickle.
    victim = next(iter(sorted(cache_dir.glob("*/*.pkl"))), None)
    if victim is None:
        fail(f"no cache entries under {cache_dir}")
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0x40
    victim.write_bytes(bytes(blob))
    # Damage 2: the manifest's last line torn mid-write.
    manifest.write_bytes(manifest.read_bytes()[:-20])
    print(f"damaged: bit flip in {victim.name}, torn manifest tail")

    rc = cli_main(["cache", "fsck", "--manifest", str(manifest)])
    if rc != 1:
        fail(f"fsck on damaged artifacts exited {rc}, want 1")
    quarantined = list(quarantine.glob("*.quarantined"))
    if not quarantined:
        fail("fsck found damage but quarantined nothing")
    reasons = list(quarantine.glob("*.reason.json"))
    if not reasons:
        fail("quarantined entries are missing their reason sidecars")
    print(f"fsck detected the damage (exit 1), quarantined "
          f"{len(quarantined)} artifact(s) with reasons")

    rc = cli_main(["cache", "fsck", "--manifest", str(manifest), "--repair"])
    if rc != 0:
        fail(f"fsck --repair exited {rc}, want 0")
    before = len(quarantined)
    if len(list(quarantine.glob("*.quarantined"))) <= before - 1:
        fail("--repair should preserve damaged bytes in quarantine")
    print("fsck --repair rewrote the manifest and exited 0")

    # The repaired manifest still resumes: the torn row's job (and the
    # quarantined entry's) re-run, nothing fails, books reconcile.
    books = sweep(["--resume", str(manifest)], env)
    if books["failed"] != 0 or books["executed"] + books["cache_hits"] != n_jobs:
        fail(f"post-repair resume books are wrong: {books['executed']=} "
             f"{books['cache_hits']=} {books['failed']=}")
    if books["executed"] < 1:
        fail("resume re-executed nothing; the damage cost no work?")
    print(f"post-repair resume ok: {books['executed']} re-executed, "
          f"{books['cache_hits']} from cache, 0 failed")

    rc = cli_main(["cache", "fsck", "--manifest", str(manifest)])
    if rc != 0:
        fail(f"final fsck exited {rc}, want 0 (clean)")
    print("final fsck clean (exit 0)")


def stage_audit(tmp: Path, env: dict) -> None:
    from repro.api import RunConfig, SimulationRequest
    from repro.harness.distributed import WorkerRef, run_distributed
    from repro.harness.parallel import RetryPolicy
    from repro.serve.http import canonical_json

    golden = json.loads(
        (ROOT / "tests" / "goldens" / "golden_stats.json").read_text()
    )
    meta = golden["_meta"]
    jobs, want = [], []
    for key, envelope in sorted(golden["entries"].items()):
        bench, sched, backend = key.split("/")
        if backend != "reference":
            continue
        # backend=None resolves to the reference engine on the honest
        # worker — and lets the liar's `--backend chaos` override bite.
        jobs.append(SimulationRequest(
            bench, sched, RunConfig(scale=meta["scale"], seed=meta["seed"]),
        ))
        want.append(canonical_json(envelope))

    worker_env = dict(env, REPRO_RESULT_CACHE="0")
    liar_env = dict(worker_env, REPRO_CHAOS="7:1.0:corrupt")
    honest_port = boot_worker(worker_env, "honest", [])
    liar_port = boot_worker(liar_env, "liar", ["--backend", "chaos"])
    print(f"workers up: honest:{honest_port}, liar:{liar_port} "
          "(every liar result carries one seeded bit flip)")

    manifest = tmp / "audited.manifest"
    outcome = run_distributed(
        jobs,
        [WorkerRef("127.0.0.1", honest_port), WorkerRef("127.0.0.1", liar_port)],
        cache=None, manifest=manifest, audit_rate=0.25,
        retry=RetryPolicy(max_attempts=10, backoff_base=0.01),
    )
    stats = outcome.stats
    print(f"audited sweep: failed={stats.failed} audited={stats.audited} "
          f"audit_failures={stats.audit_failures} retried={stats.retried}")
    if not outcome.ok or stats.failed:
        fail(f"{stats.failed} job(s) failed despite the honest worker")
    if stats.audit_failures < 1:
        fail("the liar was never caught (audit_failures == 0) — is "
             "REPRO_CHAOS reaching the worker?")
    if stats.retried < 1:
        fail("discarded outcomes were never re-dispatched")

    got = [canonical_json(result.to_dict()) for _, result in outcome]
    if got != want:
        divergent = [jobs[i].benchmark_name + "/" + jobs[i].scheduler
                     for i in range(len(jobs)) if got[i] != want[i]]
        fail(f"results diverged from the golden fixtures: {divergent}")
    print(f"bit-identical to the golden matrix: {len(jobs)} jobs OK")

    rows = [json.loads(line)
            for line in manifest.read_text().splitlines() if line.strip()]
    if not any("audit mismatch" in (row.get("error") or "") for row in rows):
        fail("the manifest records no audit mismatch row")
    print("manifest shows the audit-triggered re-dispatch")

    for proc in PROCS:
        proc.kill()


def main() -> int:
    tmp_holder = tempfile.TemporaryDirectory(prefix="repro-integrity-smoke-")
    tmp = Path(tmp_holder.name)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_RESULT_CACHE"] = "1"
    env["REPRO_CACHE_DIR"] = str(tmp / "cache")
    env["REPRO_QUARANTINE_DIR"] = str(tmp / "quarantine")
    env["REPRO_LEDGER"] = "0"
    # Keep fsck's default ledger scan off any checkout-local .repro/ state.
    env["REPRO_LEDGER_PATH"] = str(tmp / "bench_ledger.jsonl")
    env.pop("REPRO_CHAOS", None)
    env.pop("REPRO_BACKEND", None)
    # The in-process CLI calls (fsck) read the same environment.
    os.environ.update({k: env[k] for k in (
        "REPRO_RESULT_CACHE", "REPRO_CACHE_DIR", "REPRO_QUARANTINE_DIR",
        "REPRO_LEDGER", "REPRO_LEDGER_PATH",
    )})

    stage_fsck(tmp, env)
    stage_audit(tmp, env)
    print("INTEGRITY SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
