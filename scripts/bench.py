#!/usr/bin/env python
"""Standalone launcher for the perf harness (``repro bench``).

Usable without installing the package — this is the CI entry point::

    python scripts/bench.py --quick --out bench-out \
        --baseline benchmarks/bench_baseline.json

All arguments are forwarded to ``repro bench`` (see ``repro bench --help``
and docs/PERFORMANCE.md).  Exit codes: 0 ok, 1 throughput regression
against the baseline, 2 usage / argument errors.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
