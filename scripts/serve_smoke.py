#!/usr/bin/env python
"""CI smoke test for the serving layer (``repro serve``).

Boots ``repro serve`` as a real subprocess on an ephemeral port, then:

1. submits a duplicate pair of identical requests concurrently and asserts
   exactly one simulation ran (``/stats`` coalesce counter == 1,
   executed == 1) with both response bodies bit-identical;
2. exercises the ``repro submit`` client against the live server;
3. asserts the ``/stats`` books reconcile
   (hits + coalesced + executed == requests served);
4. exercises graceful shutdown: ``POST /shutdown`` must drain and exit 0
   with the final "drained:" summary on stdout.

Standalone and stdlib-only, usable without installing the package::

    python scripts/serve_smoke.py

Exit code 0 on success, 1 on any failed assertion or timeout.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.api import RunConfig, SimulationRequest  # noqa: E402

STARTUP_TIMEOUT = 30.0
SHUTDOWN_TIMEOUT = 60.0


def fail(message: str, server: subprocess.Popen | None = None):
    print(f"SMOKE FAILURE: {message}", file=sys.stderr)
    if server is not None and server.poll() is None:
        server.kill()
    sys.exit(1)


def request(port: int, method: str, path: str, body: bytes | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        data = response.read()
        headers = {k.lower(): v for k, v in response.getheaders()}
        return response.status, headers, data
    finally:
        conn.close()


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    # The generous linger guarantees the duplicate pair overlaps in flight,
    # so the second request *must* coalesce rather than racing a cache hit.
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--no-cache", "--linger", "0.5", "--workers", "1",
        ],
        cwd=ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )

    # Parse the announce line for the ephemeral port.
    port = None
    deadline = time.monotonic() + STARTUP_TIMEOUT
    assert server.stdout is not None
    while time.monotonic() < deadline:
        line = server.stdout.readline()
        if not line:
            fail(f"server exited early (rc={server.poll()})", server)
        print(f"[serve] {line.rstrip()}")
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        fail("server never announced its port", server)

    status, _, _ = request(port, "GET", "/healthz")
    if status != 200:
        fail(f"/healthz answered {status}", server)

    payload = json.dumps(
        SimulationRequest("ATAX", "gto", RunConfig(scale=0.05)).to_dict()
    ).encode()

    # -- 1. the duplicate pair ------------------------------------------
    outcomes: list = [None, None]

    def submit(slot: int) -> None:
        outcomes[slot] = request(port, "POST", "/simulate", payload)

    threads = [threading.Thread(target=submit, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    if any(outcome is None for outcome in outcomes):
        fail("a /simulate request never completed", server)
    (status_a, headers_a, body_a), (status_b, headers_b, body_b) = outcomes
    if status_a != 200 or status_b != 200:
        fail(f"/simulate answered {status_a}/{status_b}: "
             f"{body_a[:200]!r} {body_b[:200]!r}", server)
    if body_a != body_b:
        fail("duplicate requests returned different bytes", server)
    sources = sorted((headers_a["x-repro-source"], headers_b["x-repro-source"]))
    if sources != ["coalesced", "executed"]:
        fail(f"expected one executed + one coalesced, got {sources}", server)
    print(f"duplicate pair ok: {len(body_a)} identical bytes, sources {sources}")

    # -- 2. the repro submit client -------------------------------------
    submit_cmd = subprocess.run(
        [
            sys.executable, "-m", "repro", "submit", "SYRK", "gto",
            "--scale", "0.05", "--url", f"http://127.0.0.1:{port}", "--json",
        ],
        cwd=ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    if submit_cmd.returncode != 0:
        fail(f"repro submit failed (rc={submit_cmd.returncode}): "
             f"{submit_cmd.stderr[:500]}", server)
    if json.loads(submit_cmd.stdout).get("kind") != "SimulationResult":
        fail("repro submit did not print a result wire form", server)
    print("repro submit ok")

    # -- 3. the books reconcile -----------------------------------------
    status, _, body = request(port, "GET", "/stats")
    if status != 200:
        fail(f"/stats answered {status}", server)
    stats = json.loads(body)
    expected = {"requests": 3, "hits": 0, "coalesced": 1, "executed": 2, "failed": 0}
    actual = {key: stats.get(key) for key in expected}
    if actual != expected:
        fail(f"stats do not reconcile: expected {expected}, got {actual}", server)
    if not stats.get("reconciles"):
        fail(f"/stats reports reconciles={stats.get('reconciles')}", server)
    print(f"stats ok: {actual}")

    # -- 4. graceful shutdown -------------------------------------------
    status, _, body = request(port, "POST", "/shutdown", b"")
    if status != 200:
        fail(f"/shutdown answered {status}: {body[:200]!r}", server)
    try:
        rc = server.wait(timeout=SHUTDOWN_TIMEOUT)
    except subprocess.TimeoutExpired:
        fail("server did not exit after /shutdown", server)
    tail = server.stdout.read() or ""
    for line in tail.splitlines():
        print(f"[serve] {line}")
    if rc != 0:
        fail(f"server exited rc={rc} after graceful drain", server)
    if "drained:" not in tail:
        fail("server never printed its drain summary", server)
    print("graceful shutdown ok")
    print("SERVE SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
