#!/usr/bin/env python
"""CI smoke test for the distributed sweep layer (``repro worker`` +
``repro sweep --workers-at``).

Boots two ``repro worker`` subprocesses on ephemeral ports, then:

1. runs a sharded sweep across both with a checkpoint manifest, SIGKILLs
   one worker as soon as the first outcome lands (mid-sweep), and asserts
   the sweep still exits 0 with every job done — the coordinator must
   re-dispatch the dead worker's chunks onto the survivor;
2. asserts the merged results are bit-identical to a plain single-machine
   ``repro sweep`` over the same matrix (the exactness gate);
3. asserts the manifest shows the recovery: all jobs done, with the
   re-dispatched ones settling on attempt >= 2;
4. resumes the finished manifest against the surviving worker alone and
   asserts nothing re-executes (``--resume`` works across machines);
5. exercises graceful worker shutdown: ``POST /shutdown`` must drain and
   exit 0 with the final "drained:" summary on stdout.

Standalone and stdlib-only, usable without installing the package::

    python scripts/distributed_smoke.py

Exit code 0 on success, 1 on any failed assertion or timeout.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

STARTUP_TIMEOUT = 30.0
SWEEP_TIMEOUT = 600.0
SHUTDOWN_TIMEOUT = 60.0

BENCHMARKS = ["ATAX", "BICG", "MVT", "GESUMMV"]
SCHEDULERS = ["gto", "ccws", "ciao-c"]
SCALE = "0.05"

PROCS: list[subprocess.Popen] = []


def fail(message: str):
    print(f"SMOKE FAILURE: {message}", file=sys.stderr)
    for proc in PROCS:
        if proc.poll() is None:
            proc.kill()
    sys.exit(1)


def request(port: int, method: str, path: str, body: bytes | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def boot_worker(env: dict, name: str) -> tuple[subprocess.Popen, int]:
    worker = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--port", "0"],
        cwd=ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    PROCS.append(worker)
    assert worker.stdout is not None
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while time.monotonic() < deadline:
        line = worker.stdout.readline()
        if not line:
            fail(f"worker {name} exited early (rc={worker.poll()})")
        print(f"[{name}] {line.rstrip()}")
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            return worker, int(match.group(1))
    fail(f"worker {name} never announced its port")
    raise AssertionError  # unreachable


def sweep_cmd(extra: list[str]) -> list[str]:
    return [
        sys.executable, "-m", "repro", "sweep",
        "-b", *BENCHMARKS, "-s", *SCHEDULERS,
        "--scale", SCALE, "--json", *extra,
    ]


def main() -> int:
    tmp = tempfile.TemporaryDirectory(prefix="repro-dist-smoke-")
    cache_dir = Path(tmp.name) / "cache"
    manifest = Path(tmp.name) / "sweep.manifest"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    # One shared result cache: the workers and the coordinator all see it,
    # so the resume step can serve every done job without re-dispatching.
    env["REPRO_RESULT_CACHE"] = "1"
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["REPRO_LEDGER"] = "0"

    worker_a, port_a = boot_worker(env, "worker-a")
    worker_b, port_b = boot_worker(env, "worker-b")
    for name, port in (("worker-a", port_a), ("worker-b", port_b)):
        status, body = request(port, "GET", "/healthz")
        if status != 200 or json.loads(body).get("status") != "ok":
            fail(f"{name} /healthz answered {status}: {body[:200]!r}")
    print(f"workers healthy on ports {port_a}, {port_b}")

    # -- 1. sharded sweep, one worker SIGKILLed mid-flight --------------
    def kill_b_after_first_outcome() -> None:
        deadline = time.monotonic() + SWEEP_TIMEOUT
        while time.monotonic() < deadline:
            try:
                if manifest.stat().st_size > 0:
                    break
            except OSError:
                pass
            time.sleep(0.005)
        worker_b.send_signal(signal.SIGKILL)
        print("[smoke] SIGKILLed worker-b after first manifest line")

    killer = threading.Thread(target=kill_b_after_first_outcome, daemon=True)
    killer.start()
    sharded = subprocess.run(
        sweep_cmd([
            "--workers-at", f"127.0.0.1:{port_a},127.0.0.1:{port_b}",
            "--chunk-size", "1", "--manifest", str(manifest),
        ]),
        cwd=ROOT, env=env, capture_output=True, text=True,
        timeout=SWEEP_TIMEOUT,
    )
    killer.join(timeout=SWEEP_TIMEOUT)
    if sharded.returncode != 0:
        fail(f"sharded sweep failed (rc={sharded.returncode}): "
             f"{sharded.stderr[:800]}")
    dist = json.loads(sharded.stdout)
    n_jobs = len(BENCHMARKS) * len(SCHEDULERS)
    if dist["failed"] != 0 or dist["executed"] + dist["cache_hits"] != n_jobs:
        fail(f"sharded sweep books are wrong: {dist['executed']=} "
             f"{dist['cache_hits']=} {dist['failed']=}")
    if dist["retried"] < 1:
        fail("coordinator never re-dispatched after the worker kill "
             f"(retried={dist['retried']})")
    print(f"sharded sweep ok: {dist['executed']} executed, "
          f"{dist['retried']} re-dispatch(es) after the kill")

    # -- 2. bit-identical to a single-machine sweep ---------------------
    local_env = dict(env, REPRO_RESULT_CACHE="0")  # force a fresh compute
    local = subprocess.run(
        sweep_cmd([]), cwd=ROOT, env=local_env,
        capture_output=True, text=True, timeout=SWEEP_TIMEOUT,
    )
    if local.returncode != 0:
        fail(f"local sweep failed (rc={local.returncode}): {local.stderr[:800]}")
    want = json.loads(local.stdout)
    if dist["raw_ipc"] != want["raw_ipc"]:
        fail("sharded sweep is NOT bit-identical to the local sweep:\n"
             f"  sharded: {dist['raw_ipc']}\n  local:   {want['raw_ipc']}")
    print(f"exactness ok: {n_jobs} jobs bit-identical to the local sweep")

    # -- 3. the manifest shows the recovery -----------------------------
    from repro.harness.manifest import load_manifest  # noqa: E402

    entries = load_manifest(manifest)
    if len(entries) != n_jobs:
        fail(f"manifest has {len(entries)} keys, expected {n_jobs}")
    if not all(e.status == "done" for e in entries.values()):
        fail("manifest contains non-done outcomes: "
             f"{ {k: e.status for k, e in entries.items() if e.status != 'done'} }")
    redispatched = sum(1 for e in entries.values() if e.attempts >= 2)
    if redispatched < 1:
        fail("manifest shows no attempt >= 2: the re-dispatch left no trace")
    print(f"manifest ok: {n_jobs} done, {redispatched} settled on attempt >= 2")

    # -- 4. resume across machines: nothing re-executes -----------------
    resumed = subprocess.run(
        sweep_cmd([
            "--workers-at", f"127.0.0.1:{port_a}",
            "--resume", str(manifest),
        ]),
        cwd=ROOT, env=env, capture_output=True, text=True,
        timeout=SWEEP_TIMEOUT,
    )
    if resumed.returncode != 0:
        fail(f"resume sweep failed (rc={resumed.returncode}): "
             f"{resumed.stderr[:800]}")
    again = json.loads(resumed.stdout)
    if again["executed"] != 0 or again["cache_hits"] != n_jobs:
        fail(f"resume re-ran work: executed={again['executed']}, "
             f"cache_hits={again['cache_hits']} (want 0/{n_jobs})")
    if again["raw_ipc"] != want["raw_ipc"]:
        fail("resumed sweep drifted from the local sweep")
    print("resume ok: 0 executed, all served from the shared cache")

    # -- 5. graceful shutdown of the survivor ---------------------------
    status, body = request(port_a, "POST", "/shutdown", b"")
    if status != 200:
        fail(f"/shutdown answered {status}: {body[:200]!r}")
    try:
        rc = worker_a.wait(timeout=SHUTDOWN_TIMEOUT)
    except subprocess.TimeoutExpired:
        fail("worker-a did not exit after /shutdown")
    tail = worker_a.stdout.read() or ""
    for line in tail.splitlines():
        print(f"[worker-a] {line}")
    if rc != 0:
        fail(f"worker-a exited rc={rc} after graceful drain")
    if "drained:" not in tail:
        fail("worker-a never printed its drain summary")
    print("graceful shutdown ok")
    print("DISTRIBUTED SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
