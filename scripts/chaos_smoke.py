#!/usr/bin/env python
"""CI smoke test for the resilience layer (``--chaos`` fault injection).

Runs the quick sweep matrix twice — once fault-free, once under a seeded
:class:`repro.harness.faults.FaultPlan` whose schedule is verified up front
to inject at least one failure, one hang and one worker crash — and asserts
the chaotic sweep, recovering under ``on_error="retry"``, returns results
**bit-identical** to the fault-free run with zero failed jobs.

The fault schedule is a pure function of the plan seed, so the script scans
seeds deterministically until it finds one whose attempt-1 draws cover all
three fault kinds at the pinned ~20% rate while leaving every job a clean
attempt within the retry budget.  The chosen seed is printed and stable
across runs and machines.

Also exercises the CLI plumbing: ``repro sweep --chaos SEED:RATE
--on-error retry`` over a slice of the matrix must exit 0 with zero
failures.

Standalone and stdlib-only (plus the repo), usable without installing::

    python scripts/chaos_smoke.py

Exit code 0 on success, 1 on any divergence or unrecovered fault.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.api import RunConfig, SimulationRequest  # noqa: E402
from repro.harness.faults import (  # noqa: E402
    FaultPlan,
    configure_chaos,
    fault_key_for,
)
from repro.harness.parallel import RetryPolicy, run_jobs  # noqa: E402

RATE = 0.2
SCALE = 0.02
BENCHMARKS = ("ATAX", "SYRK", "BICG", "MVT")
SCHEDULERS = ("gto", "ciao-c")
WORKERS = 2


def fail(message: str):
    print(f"CHAOS SMOKE FAILURE: {message}", file=sys.stderr)
    sys.exit(1)


def jobs(backend=None):
    config = RunConfig(scale=SCALE, seed=1)
    return [
        SimulationRequest(bench, sched, config, backend=backend)
        for bench in BENCHMARKS
        for sched in SCHEDULERS
    ]


def pick_seed(keys) -> int:
    """First seed whose schedule covers fail+hang+crash and stays recoverable.

    Coverage: the attempt-1 draws over the matrix include every fault kind
    (so the run exercises failure, hang and worker-crash recovery).
    Recoverability: no job faults on all of attempts 1..3, so the retry
    budget (max_attempts=3) always reaches a clean attempt.
    """
    for seed in range(1, 20000):
        plan = FaultPlan(seed=seed, rate=RATE, hang_seconds=0.2)
        first = {plan.fault_for(key, 1) for key in keys}
        if not {"fail", "hang", "crash"} <= first:
            continue
        if any(
            all(plan.fault_for(key, attempt) is not None
                for attempt in (1, 2, 3))
            for key in keys
        ):
            continue
        return seed
    fail("no seed under 20000 covers all three fault kinds")


def main() -> int:
    chaos_jobs = jobs(backend="chaos")
    keys = [fault_key_for(job) for job in chaos_jobs]
    seed = pick_seed(keys)
    plan = FaultPlan(seed=seed, rate=RATE, hang_seconds=0.2)
    scheduled = plan.scheduled_kinds(keys)
    print(f"chaos plan: seed={seed} rate={RATE} "
          f"attempt-1 schedule={scheduled}")

    print(f"fault-free reference: {len(chaos_jobs)} jobs, "
          f"{WORKERS} workers ...")
    reference = run_jobs(jobs(), workers=WORKERS, cache=None)

    configure_chaos(plan)
    try:
        print("chaotic run under on_error='retry' ...")
        chaotic = run_jobs(
            chaos_jobs,
            workers=WORKERS,
            cache=None,
            on_error="retry",
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01,
                              jitter=0.5, seed=seed),
        )
    finally:
        configure_chaos(None)

    stats = chaotic.stats
    print(f"chaotic run: failed={stats.failed} retried={stats.retried} "
          f"timed_out={stats.timed_out} wall={stats.wall_seconds:.2f}s")
    if not chaotic.ok or stats.failed:
        fail(f"{stats.failed} job(s) did not recover under retry")
    if stats.retried < 1:
        fail("schedule injected faults but nothing was retried")
    divergent = [
        (job.benchmark_name, job.scheduler)
        for job, ref, got in zip(chaos_jobs, reference.results,
                                 chaotic.results)
        if ref != got
    ]
    if divergent:
        fail(f"results diverged from fault-free run: {divergent}")
    print("bit-identical to the fault-free run: OK")

    # CLI plumbing: --chaos SEED:RATE with retry recovery must exit 0.
    from repro.cli import main as cli_main

    rc = cli_main([
        "sweep", "-b", "ATAX", "SYRK", "-s", "gto",
        "--scale", str(SCALE), "--no-cache", "--json",
        "--chaos", f"{seed}:{RATE}", "--on-error", "retry",
    ])
    if rc != 0:
        fail(f"repro sweep --chaos exited {rc}")
    print("repro sweep --chaos --on-error retry: OK")
    print("CHAOS SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
