#!/usr/bin/env python
"""Regenerate the golden-stats fixtures under ``tests/goldens/``.

The golden file pins the *exact* simulation output — every counter, stall,
time series and interference matrix of ``SimulationResult.to_dict()`` — for
a small benchmark matrix across every registered scheduler and both in-tree
backends.  ``tests/test_goldens.py`` recomputes each entry and compares it
bit-for-bit, so any perf work on the cycle engine that changes semantics
(however subtly) fails loudly instead of silently drifting the paper's
figures.

Run from the repository root::

    PYTHONPATH=src python scripts/regen_goldens.py

Only regenerate (and commit the diff) when a change is *supposed* to alter
simulation semantics; pure performance work must leave this file untouched.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (  # noqa: E402
    RESULT_SCHEMA,
    MultiTenantRequest,
    RunConfig,
    SimulationRequest,
    TenantSpec,
    execute,
)
from repro.scenarios import load_promoted  # noqa: E402
from repro.sched.registry import scheduler_names  # noqa: E402

#: Fixture sizing: small enough that the whole matrix replays in seconds,
#: large enough that every scheduler mechanism (throttling, redirection,
#: bypassing, barriers) actually fires.
SCALE = 0.05
SEED = 1

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "goldens" / "golden_stats.json"
TENANT_GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "tests" / "goldens" / "golden_tenants.json"
)

#: Every scheduler runs on the primary benchmark; two more benchmarks (a
#: sub-working-set and a compute/irregular workload) cover the main paper
#: mechanisms under the baseline and the full CIAO scheme.
PRIMARY_BENCHMARK = "ATAX"
EXTRA_BENCHMARKS = ("SYRK", "WC")
EXTRA_SCHEDULERS = ("gto", "ciao-c")
BACKENDS = ("reference", "lockstep")


def golden_matrix() -> list[tuple[str, str, str]]:
    """The pinned (benchmark, scheduler, backend) grid."""
    cases = [
        (PRIMARY_BENCHMARK, sched, backend)
        for sched in scheduler_names()
        for backend in BACKENDS
    ]
    cases += [
        (bench, sched, backend)
        for bench in EXTRA_BENCHMARKS
        for sched in EXTRA_SCHEDULERS
        for backend in BACKENDS
    ]
    return cases


def tenant_matrix() -> dict[str, MultiTenantRequest]:
    """The pinned multi-tenant grid: mixed schedulers, asymmetric partitions.

    Each entry pins the full co-located ``SimulationResult`` (per-SM stats,
    per-tenant breakdown, conflict attribution), so engine work that touches
    the partitioned driver stays bit-exact on this path too.  Distinct
    ``address_space`` colours model separate processes; the
    ``shared-address`` entry pins the colour-0 path the single-kernel parity
    contract relies on.

    Promoted search discoveries (``repro scenarios promote``) are appended
    under ``promoted-<name>`` keys at *their own* pinned scale/seed — they
    are the only entries exercising the staggered-launch path, so the
    fixture gates it bit-for-bit too.
    """
    config = RunConfig(scale=SCALE, seed=SEED)

    def request(*tenants: TenantSpec) -> MultiTenantRequest:
        return MultiTenantRequest(tenants=tuple(tenants), run_config=config)

    entries = {
        "sym-atax": request(
            TenantSpec("a", "ATAX", "gto", (0,), address_space=1),
            TenantSpec("b", "ATAX", "gto", (1,), address_space=2),
        ),
        "shared-address": request(
            TenantSpec("a", "ATAX", "gto", (0,)),
            TenantSpec("b", "ATAX", "gto", (1,)),
        ),
        "mixed-sched": request(
            TenantSpec("gto", "ATAX", "gto", (0,), address_space=1),
            TenantSpec("ciao", "ATAX", "ciao-c", (1,), address_space=2),
        ),
        "thrash-compute": request(
            TenantSpec("thrash", "SM", "gto", (0,), address_space=1),
            TenantSpec("compute", "2DCONV", "gto", (1,), address_space=2),
        ),
        "asym-split": request(
            TenantSpec("wide", "GESUMMV", "ccws", (0, 1), address_space=1),
            TenantSpec("narrow", "2DCONV", "gto", (2,), address_space=2),
        ),
        "quad": request(
            TenantSpec("lws", "ATAX", "gto", (0,), address_space=1),
            TenantSpec("sws", "SYRK", "best-swl", (1,), address_space=2),
            TenantSpec("mapreduce", "SM", "gto", (2,), address_space=3),
            TenantSpec("compute", "2DCONV", "two-level", (3,), address_space=4),
        ),
    }
    for scenario in load_promoted():
        entries[f"promoted-{scenario.name}"] = scenario.request()
    return entries


def compute_entry(benchmark: str, scheduler: str, backend: str) -> dict:
    """Simulate one golden case and return its JSON-normalised result."""
    request = SimulationRequest(
        benchmark, scheduler, RunConfig(scale=SCALE, seed=SEED), backend=backend
    )
    result = execute(request)
    # Round-trip through the JSON text form so the stored fixture and a
    # freshly computed result compare with plain ``==``.
    return json.loads(json.dumps(result.to_dict(), sort_keys=True))


#: Engines golden fixtures may be generated from.  A deliberate literal —
#: NOT derived from ``BACKENDS`` — so adding an engine to the regen matrix
#: cannot silently grant it fixture-source rights.  The ``vector`` engine is
#: excluded on purpose: its contract is to *match* these fixtures
#: bit-for-bit, so sourcing them from it would make the parity gate
#: circular.  Goldens always come from the reference semantics.
ALLOWED_SOURCE_BACKENDS = frozenset({"reference", "lockstep"})


def _refuse_vector_source() -> None:
    """Abort when the environment or matrix would source goldens from vector."""
    from repro.backends import resolve_backend_name

    forbidden = sorted(set(BACKENDS) - ALLOWED_SOURCE_BACKENDS)
    if forbidden:
        raise SystemExit(
            f"refusing to regenerate goldens from backend(s) {forbidden}; "
            "fixtures are sourced from the reference semantics only"
        )
    try:
        env_backend = resolve_backend_name(None)
    except KeyError:
        env_backend = ""
    if env_backend == "vector":
        raise SystemExit(
            "refusing to regenerate goldens with REPRO_BACKEND=vector: the "
            "vector engine is pinned *against* these fixtures (it must match "
            "reference bit-for-bit), so goldens are always sourced from the "
            "reference/lockstep semantics. Unset REPRO_BACKEND and rerun."
        )


def main() -> int:
    os.environ.setdefault("REPRO_RESULT_CACHE", "0")
    os.environ.setdefault("REPRO_LEDGER", "0")
    _refuse_vector_source()
    entries = {}
    for benchmark, scheduler, backend in golden_matrix():
        key = f"{benchmark}/{scheduler}/{backend}"
        print(f"golden: {key}", file=sys.stderr)
        entries[key] = compute_entry(benchmark, scheduler, backend)
    payload = {
        "_meta": {
            "scale": SCALE,
            "seed": SEED,
            "result_schema": RESULT_SCHEMA,
            "regen": "PYTHONPATH=src python scripts/regen_goldens.py",
        },
        "entries": entries,
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(entries)} entries)", file=sys.stderr)

    tenant_entries = {}
    for key, request in tenant_matrix().items():
        print(f"tenant golden: {key}", file=sys.stderr)
        result = execute(request)
        tenant_entries[key] = json.loads(
            json.dumps(
                {"request": request.to_dict(), "result": result.to_dict()},
                sort_keys=True,
            )
        )
    tenant_payload = {
        "_meta": {
            "scale": SCALE,
            "seed": SEED,
            "result_schema": RESULT_SCHEMA,
            "regen": "PYTHONPATH=src python scripts/regen_goldens.py",
        },
        "entries": tenant_entries,
    }
    TENANT_GOLDEN_PATH.write_text(
        json.dumps(tenant_payload, indent=1, sort_keys=True) + "\n"
    )
    print(
        f"wrote {TENANT_GOLDEN_PATH} ({len(tenant_entries)} entries)", file=sys.stderr
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
