#!/usr/bin/env python
"""Regenerate the golden-stats fixtures under ``tests/goldens/``.

The golden file pins the *exact* simulation output — every counter, stall,
time series and interference matrix of ``SimulationResult.to_dict()`` — for
a small benchmark matrix across every registered scheduler and both in-tree
backends.  ``tests/test_goldens.py`` recomputes each entry and compares it
bit-for-bit, so any perf work on the cycle engine that changes semantics
(however subtly) fails loudly instead of silently drifting the paper's
figures.

Run from the repository root::

    PYTHONPATH=src python scripts/regen_goldens.py

Only regenerate (and commit the diff) when a change is *supposed* to alter
simulation semantics; pure performance work must leave this file untouched.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import RESULT_SCHEMA, RunConfig, SimulationRequest, execute  # noqa: E402
from repro.sched.registry import scheduler_names  # noqa: E402

#: Fixture sizing: small enough that the whole matrix replays in seconds,
#: large enough that every scheduler mechanism (throttling, redirection,
#: bypassing, barriers) actually fires.
SCALE = 0.05
SEED = 1

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "goldens" / "golden_stats.json"

#: Every scheduler runs on the primary benchmark; two more benchmarks (a
#: sub-working-set and a compute/irregular workload) cover the main paper
#: mechanisms under the baseline and the full CIAO scheme.
PRIMARY_BENCHMARK = "ATAX"
EXTRA_BENCHMARKS = ("SYRK", "WC")
EXTRA_SCHEDULERS = ("gto", "ciao-c")
BACKENDS = ("reference", "lockstep")


def golden_matrix() -> list[tuple[str, str, str]]:
    """The pinned (benchmark, scheduler, backend) grid."""
    cases = [
        (PRIMARY_BENCHMARK, sched, backend)
        for sched in scheduler_names()
        for backend in BACKENDS
    ]
    cases += [
        (bench, sched, backend)
        for bench in EXTRA_BENCHMARKS
        for sched in EXTRA_SCHEDULERS
        for backend in BACKENDS
    ]
    return cases


def compute_entry(benchmark: str, scheduler: str, backend: str) -> dict:
    """Simulate one golden case and return its JSON-normalised result."""
    request = SimulationRequest(
        benchmark, scheduler, RunConfig(scale=SCALE, seed=SEED), backend=backend
    )
    result = execute(request)
    # Round-trip through the JSON text form so the stored fixture and a
    # freshly computed result compare with plain ``==``.
    return json.loads(json.dumps(result.to_dict(), sort_keys=True))


def main() -> int:
    os.environ.setdefault("REPRO_RESULT_CACHE", "0")
    os.environ.setdefault("REPRO_LEDGER", "0")
    entries = {}
    for benchmark, scheduler, backend in golden_matrix():
        key = f"{benchmark}/{scheduler}/{backend}"
        print(f"golden: {key}", file=sys.stderr)
        entries[key] = compute_entry(benchmark, scheduler, backend)
    payload = {
        "_meta": {
            "scale": SCALE,
            "seed": SEED,
            "result_schema": RESULT_SCHEMA,
            "regen": "PYTHONPATH=src python scripts/regen_goldens.py",
        },
        "entries": entries,
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(entries)} entries)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
