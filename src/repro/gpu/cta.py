"""Cooperative Thread Arrays (CTAs) and kernel launches.

A :class:`KernelLaunch` describes everything an SM needs to start running a
workload: how many CTAs, how many warps per CTA, how much shared memory each
CTA allocates (the paper's ``Fsmem`` column in Table II), and a factory that
produces each warp's instruction stream.

A :class:`CTA` groups its warps for barrier semantics: a ``BARRIER``
instruction parks the issuing warp until every unfinished warp of the CTA
has arrived, then releases them all, matching CUDA ``__syncthreads``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.gpu.instruction import Instruction
from repro.gpu.warp import Warp

#: Factory signature: (cta_index, warp_index_within_cta, global_warp_id) -> stream.
WarpStreamFactory = Callable[[int, int, int], Iterator[Instruction]]


@dataclass
class KernelLaunch:
    """Parameters of one kernel launch on one SM."""

    name: str
    num_ctas: int
    warps_per_cta: int
    stream_factory: WarpStreamFactory
    shared_mem_per_cta: int = 0
    #: Optional hard cap on resident warps (used by tests; normally the SM
    #: enforces its own occupancy limits).
    max_resident_warps: Optional[int] = None
    #: Tenant label when the launch belongs to a co-located (multi-tenant)
    #: simulation; ``None`` for whole-GPU launches.
    tenant: Optional[str] = None

    def total_warps(self) -> int:
        """Total warps launched across all CTAs."""
        return self.num_ctas * self.warps_per_cta

    def validate(self) -> None:
        """Sanity-check launch parameters."""
        if self.num_ctas <= 0 or self.warps_per_cta <= 0:
            raise ValueError("kernel must launch at least one CTA with one warp")
        if self.shared_mem_per_cta < 0:
            raise ValueError("shared memory per CTA cannot be negative")


@dataclass(slots=True)
class CTA:
    """One resident CTA and its barrier state.

    ``num_at_barrier`` counts the warps currently parked at the barrier so
    the SM's throttling check (`may a throttled warp ignore its throttle?`)
    is O(1) instead of a scan; warps cannot retire while parked, so a
    finished warp never contributes to the count.
    """

    cta_id: int
    warps: list[Warp] = field(default_factory=list)
    barriers_completed: int = 0
    num_at_barrier: int = 0

    def add_warp(self, warp: Warp) -> None:
        """Attach a warp to this CTA."""
        self.warps.append(warp)

    # -- barrier handling ----------------------------------------------------
    def unfinished_warps(self) -> list[Warp]:
        """Warps of this CTA that have not retired."""
        return [w for w in self.warps if not w.finished]

    def arrive_at_barrier(self, warp: Warp) -> list[Warp]:
        """Mark ``warp`` as waiting at the CTA barrier.

        Returns the list of warps released (all of them once the last
        unfinished warp arrives, otherwise an empty list).
        """
        if not warp.at_barrier:
            warp.at_barrier = True
            self.num_at_barrier += 1
        waiting = self.unfinished_warps()
        if all(w.at_barrier for w in waiting):
            self._release(waiting)
            return waiting
        return []

    def release_if_unblocked(self) -> list[Warp]:
        """Re-check the barrier after a warp of this CTA retired.

        A warp that exits while its siblings wait at a barrier must not
        deadlock them; this mirrors the hardware behaviour where exited
        warps no longer participate in ``bar.sync``.
        """
        waiting = self.unfinished_warps()
        if waiting and all(w.at_barrier for w in waiting):
            self._release(waiting)
            return waiting
        return []

    def _release(self, waiting: list[Warp]) -> None:
        for w in waiting:
            if w.at_barrier:
                w.at_barrier = False
                self.num_at_barrier -= 1
        self.barriers_completed += 1

    def is_finished(self) -> bool:
        """True when every warp of the CTA retired."""
        return all(w.finished for w in self.warps)
