"""Statistics collection for simulation runs.

:class:`SMStats` aggregates everything the paper's figures report:

* IPC (instructions per cycle) -- both warp-instruction IPC and thread-level
  IPC (warp IPC x 32), the latter being comparable in magnitude to the
  GPGPU-Sim numbers the paper plots.
* L1D hit rate, shared-memory-cache hit rate, shared-memory utilisation.
* Interference: VTA hits in total, per warp, and as a pairwise
  (interfered warp, interfering warp) matrix -- the raw data behind
  Figures 1a, 4a and 4b.
* Time series of dynamic IPC, number of active warps, and interference
  intensity, sampled every N issued instructions -- the data behind
  Figures 9 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class TimeSeries:
    """A sampled time series keyed by cumulative issued instructions."""

    instructions: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, instruction_count: int, value: float) -> None:
        """Add one sample."""
        self.instructions.append(instruction_count)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def as_pairs(self) -> list[tuple[int, float]]:
        """Return ``[(instruction_count, value), ...]``."""
        return list(zip(self.instructions, self.values))

    def mean(self) -> float:
        """Mean of the sampled values (0.0 when empty)."""
        return sum(self.values) / len(self.values) if self.values else 0.0


@dataclass
class StallBreakdown:
    """Why issue slots were lost."""

    no_issuable_warp: int = 0
    mshr_full: int = 0
    reservation_fail: int = 0
    queue_full: int = 0

    @property
    def total(self) -> int:
        """Total counted stall events."""
        return (
            self.no_issuable_warp
            + self.mshr_full
            + self.reservation_fail
            + self.queue_full
        )


@dataclass
class SMStats:
    """Per-SM statistics for one simulation."""

    warp_size: int = 32

    cycles: int = 0
    instructions_issued: int = 0
    global_memory_instructions: int = 0
    shared_memory_instructions: int = 0
    barriers_executed: int = 0
    warps_retired: int = 0

    per_warp_instructions: dict[int, int] = field(default_factory=dict)

    # interference bookkeeping -------------------------------------------------
    vta_hits: int = 0
    per_warp_vta_hits: dict[int, int] = field(default_factory=dict)
    #: interference_matrix[interfered_wid][interfering_wid] = count
    interference_matrix: dict[int, dict[int, int]] = field(default_factory=dict)

    # redirection / throttling bookkeeping -------------------------------------
    redirected_accesses: int = 0
    migrations_l1_to_shared: int = 0
    throttle_events: int = 0
    reactivate_events: int = 0
    bypassed_accesses: int = 0

    stalls: StallBreakdown = field(default_factory=StallBreakdown)

    # time series ---------------------------------------------------------------
    ipc_series: TimeSeries = field(default_factory=TimeSeries)
    active_warp_series: TimeSeries = field(default_factory=TimeSeries)
    interference_series: TimeSeries = field(default_factory=TimeSeries)

    # filled in at the end of a run ---------------------------------------------
    l1d_hit_rate: float = 0.0
    l1d_hits: int = 0
    l1d_misses: int = 0
    shared_cache_hit_rate: float = 0.0
    shared_cache_accesses: int = 0
    shared_memory_utilization: float = 0.0
    l2_hit_rate: float = 0.0
    dram_requests: int = 0

    # ------------------------------------------------------------------
    @property
    def warp_ipc(self) -> float:
        """Warp instructions issued per cycle."""
        return self.instructions_issued / self.cycles if self.cycles else 0.0

    @property
    def ipc(self) -> float:
        """Thread-level IPC (warp IPC x warp size), comparable to the paper."""
        return self.warp_ipc * self.warp_size

    def record_issue(self, wid: int) -> None:
        """Count one issued warp instruction."""
        self.instructions_issued += 1
        self.per_warp_instructions[wid] = self.per_warp_instructions.get(wid, 0) + 1

    def record_vta_hit(self, interfered_wid: int, interfering_wid: int) -> None:
        """Count one detected lost-locality (interference) event."""
        self.vta_hits += 1
        self.per_warp_vta_hits[interfered_wid] = (
            self.per_warp_vta_hits.get(interfered_wid, 0) + 1
        )
        row = self.interference_matrix.setdefault(interfered_wid, {})
        row[interfering_wid] = row.get(interfering_wid, 0) + 1

    # ------------------------------------------------------------------
    def interference_pairs(self) -> list[tuple[int, int, int]]:
        """Flattened ``(interfered, interferer, count)`` triples, descending."""
        triples = [
            (victim, aggressor, count)
            for victim, row in self.interference_matrix.items()
            for aggressor, count in row.items()
        ]
        return sorted(triples, key=lambda t: t[2], reverse=True)

    def interference_extremes(self) -> tuple[int, int]:
        """Per-warp (min, max) interference frequency, over warps with any.

        This is the statistic plotted in Figure 4b: for each warp the most-
        and least-frequent interferer counts; we report the global min and
        max across warps.
        """
        maxima: list[int] = []
        minima: list[int] = []
        for row in self.interference_matrix.values():
            if not row:
                continue
            counts = list(row.values())
            maxima.append(max(counts))
            minima.append(min(counts))
        if not maxima:
            return (0, 0)
        return (min(minima), max(maxima))

    def summary(self) -> dict[str, float]:
        """Compact dictionary of the headline metrics."""
        return {
            "cycles": float(self.cycles),
            "instructions": float(self.instructions_issued),
            "ipc": self.ipc,
            "warp_ipc": self.warp_ipc,
            "l1d_hit_rate": self.l1d_hit_rate,
            "shared_cache_hit_rate": self.shared_cache_hit_rate,
            "shared_memory_utilization": self.shared_memory_utilization,
            "l2_hit_rate": self.l2_hit_rate,
            "vta_hits": float(self.vta_hits),
            "mean_active_warps": self.active_warp_series.mean(),
            "redirected_accesses": float(self.redirected_accesses),
            "throttle_events": float(self.throttle_events),
            "bypassed_accesses": float(self.bypassed_accesses),
        }


@dataclass
class TenantStats:
    """Per-tenant statistics of one multi-tenant (co-located) simulation.

    A *tenant* is one kernel occupying a subset of the machine's SMs (see
    :class:`repro.api.TenantSpec`).  ``stats`` merges the tenant's per-SM
    statistics exactly like the machine-level merge, so ``stats.ipc`` is the
    tenant's thread IPC over its own partition.
    """

    name: str
    benchmark: str = ""
    scheduler: str = ""
    sm_ids: tuple[int, ...] = ()
    stats: SMStats = field(default_factory=SMStats)
    #: Global cycle at which the tenant's last SM drained (== ``stats.cycles``
    #: unless the run hit the cycle budget).
    finish_cycle: int = 0
    #: Global cycle at which the tenant's kernel launched (0 for the
    #: simultaneous-launch path).  ``finish_cycle - launch_cycle`` is the
    #: tenant's busy span, the quantity slowdown metrics compare.
    launch_cycle: int = 0
    #: DRAM requests from this tenant's SMs that queued behind a burst of a
    #: *different SM*.  Attribution is per suffering requester SM, so for a
    #: tenant owning several SMs this includes conflicts against its own
    #: sibling SMs (intra-tenant contention), not only against neighbours.
    inter_sm_dram_conflicts: int = 0

    @property
    def ipc(self) -> float:
        """Thread-level IPC of the tenant over its own SM partition."""
        return self.stats.ipc

    def summary(self) -> dict[str, float]:
        """Headline per-tenant metrics (CLI / experiment reporting)."""
        return {
            "cycles": float(self.finish_cycle),
            "instructions": float(self.stats.instructions_issued),
            "ipc": self.ipc,
            "l1d_hit_rate": self.stats.l1d_hit_rate,
            "inter_sm_dram_conflicts": float(self.inter_sm_dram_conflicts),
        }


def merge_stats(stats_list: list[SMStats]) -> SMStats:
    """Merge per-SM stats into a machine-level view (sums and weighted rates)."""
    if not stats_list:
        return SMStats()
    merged = SMStats(warp_size=stats_list[0].warp_size)
    merged.cycles = max(s.cycles for s in stats_list)
    for s in stats_list:
        merged.instructions_issued += s.instructions_issued
        merged.global_memory_instructions += s.global_memory_instructions
        merged.shared_memory_instructions += s.shared_memory_instructions
        merged.barriers_executed += s.barriers_executed
        merged.warps_retired += s.warps_retired
        merged.vta_hits += s.vta_hits
        merged.redirected_accesses += s.redirected_accesses
        merged.migrations_l1_to_shared += s.migrations_l1_to_shared
        merged.throttle_events += s.throttle_events
        merged.reactivate_events += s.reactivate_events
        merged.bypassed_accesses += s.bypassed_accesses
        merged.l1d_hits += s.l1d_hits
        merged.l1d_misses += s.l1d_misses
        merged.shared_cache_accesses += s.shared_cache_accesses
    total_l1 = merged.l1d_hits + merged.l1d_misses
    merged.l1d_hit_rate = merged.l1d_hits / total_l1 if total_l1 else 0.0
    merged.shared_memory_utilization = sum(
        s.shared_memory_utilization for s in stats_list
    ) / len(stats_list)
    merged.shared_cache_hit_rate = sum(
        s.shared_cache_hit_rate for s in stats_list
    ) / len(stats_list)
    merged.l2_hit_rate = stats_list[0].l2_hit_rate
    merged.dram_requests = stats_list[0].dram_requests
    return merged
