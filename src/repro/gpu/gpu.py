"""Top-level GPU: several SMs sharing one L2 / DRAM subsystem.

For the experiments in this reproduction a single SM is usually simulated
(cache interference is a per-SM L1D phenomenon and the schedulers under
study are per-SM policies), but the :class:`GPU` wrapper supports any number
of SMs, each running the same kernel launch with its own scheduler instance,
all sharing the L2 slice and DRAM channels exactly as on the real chip.

SMs are simulated one after another against the shared memory subsystem.
This "serialised concurrency" slightly underestimates inter-SM DRAM
contention compared to a lock-step simulation, which is acceptable because
none of the paper's mechanisms react to inter-SM effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.gpu.config import GPUConfig
from repro.gpu.cta import KernelLaunch
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.stats import SMStats, merge_stats
from repro.mem.cache import CacheConfig
from repro.mem.subsystem import MemorySubsystem, MemorySubsystemConfig

#: A scheduler factory builds a fresh scheduler instance for each SM.
SchedulerFactory = Callable[[], object]


@dataclass
class SimulationResult:
    """Outcome of one GPU simulation."""

    kernel_name: str
    scheduler_name: str
    per_sm: list[SMStats] = field(default_factory=list)
    machine: SMStats = field(default_factory=SMStats)

    @property
    def ipc(self) -> float:
        """Machine-level thread IPC (sum of per-SM instruction rates)."""
        if not self.per_sm:
            return 0.0
        total_instr = sum(s.instructions_issued for s in self.per_sm)
        cycles = max(s.cycles for s in self.per_sm)
        return total_instr * self.per_sm[0].warp_size / cycles if cycles else 0.0

    @property
    def sm0(self) -> SMStats:
        """Stats of the first SM (the one the time-series figures use)."""
        return self.per_sm[0]

    def summary(self) -> dict[str, float]:
        """Headline metrics of the run."""
        summary = self.machine.summary()
        summary["ipc"] = self.ipc
        return summary


class GPU:
    """A multi-SM machine sharing one memory subsystem."""

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        *,
        scheduler_factory: SchedulerFactory,
        enable_shared_cache: bool = False,
        dram_bandwidth_scale: float = 1.0,
    ) -> None:
        self.config = config or GPUConfig.gtx480()
        self.config.validate()
        self.scheduler_factory = scheduler_factory
        self.enable_shared_cache = enable_shared_cache
        mem_config = MemorySubsystemConfig(
            l2=self._scaled_l2_config(),
            dram=self._scaled_dram_config(dram_bandwidth_scale),
            interconnect=self.config.interconnect,
        )
        self.memory = MemorySubsystem(mem_config, num_sms=self.config.num_sms)
        self.sms: list[StreamingMultiprocessor] = []

    # ------------------------------------------------------------------
    # Fair-share scaling of the off-SM memory system
    # ------------------------------------------------------------------
    def _share(self) -> float:
        """Fraction of the chip the simulated SMs represent."""
        chip_sms = max(self.config.chip_sms, self.config.num_sms)
        return self.config.num_sms / chip_sms

    def _scaled_l2_config(self) -> CacheConfig:
        """L2 capacity scaled to the simulated SMs' fair share of the chip."""
        share = self._share()
        base = self.config.l2
        if share >= 1.0:
            return base
        granule = base.line_size * base.associativity
        scaled_bytes = max(granule, int(base.size_bytes * share) // granule * granule)
        return CacheConfig(
            name=base.name,
            size_bytes=scaled_bytes,
            line_size=base.line_size,
            associativity=base.associativity,
            write_policy=base.write_policy,
            replacement=base.replacement,
            set_hash=base.set_hash,
            hit_latency=base.hit_latency,
        )

    def _scaled_dram_config(self, dram_bandwidth_scale: float):
        """DRAM bandwidth scaled to the fair share, times any Fig. 12b factor."""
        dram = self.config.dram
        factor = self._share() * dram_bandwidth_scale
        if factor != 1.0:
            dram = dram.scaled_bandwidth(factor)
        return dram

    def run(self, kernel: KernelLaunch, *, max_cycles: Optional[int] = None, scheduler_name: str = "") -> SimulationResult:
        """Run ``kernel`` on every SM and return aggregated statistics."""
        self.sms = []
        per_sm_stats: list[SMStats] = []
        for sm_id in range(self.config.num_sms):
            scheduler = self.scheduler_factory()
            sm = StreamingMultiprocessor(
                sm_id,
                self.config,
                self.memory,
                scheduler,
                enable_shared_cache=self.enable_shared_cache,
            )
            sm.launch(kernel)
            stats = sm.run(max_cycles)
            per_sm_stats.append(stats)
            self.sms.append(sm)
        result = SimulationResult(
            kernel_name=kernel.name,
            scheduler_name=scheduler_name or type(self.sms[0].scheduler).__name__,
            per_sm=per_sm_stats,
            machine=merge_stats(per_sm_stats),
        )
        return result
