"""Top-level GPU: several SMs sharing one L2 / DRAM subsystem.

For the experiments in this reproduction a single SM is usually simulated
(cache interference is a per-SM L1D phenomenon and the schedulers under
study are per-SM policies), but the :class:`GPU` wrapper supports any number
of SMs, each running the same kernel launch with its own scheduler instance,
all sharing the L2 slice and DRAM channels exactly as on the real chip.

Two execution modes exist.  :meth:`GPU.run` simulates SMs one after another
against the shared memory subsystem ("serialised concurrency", the
``"reference"`` backend) — this underestimates inter-SM DRAM contention but
is exact for the paper's per-SM mechanisms.  The ``"lockstep"`` backend
(:func:`repro.gpu.lockstep.run_lockstep`) advances all SMs cycle-by-cycle so
simultaneous requests genuinely contend for the shared L2/DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.gpu.config import GPUConfig
from repro.gpu.cta import KernelLaunch
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.stats import SMStats, TenantStats, merge_stats
from repro.mem.cache import CacheConfig
from repro.mem.subsystem import MemorySubsystem, MemorySubsystemConfig

#: A scheduler factory builds a fresh scheduler instance for each SM.
SchedulerFactory = Callable[[], object]


@dataclass
class TenantPlan:
    """One tenant's materialized share of a partitioned (co-located) launch.

    Built by :func:`repro.backends.materialize_tenants` from a
    :class:`repro.api.TenantSpec`: the kernel to run, the scheduler factory
    producing a fresh per-SM scheduler instance, and the SM partition the
    tenant owns.  Consumed by :meth:`GPU.build_partitioned_sms` and the
    multi-tenant lock-step driver.
    """

    name: str
    kernel: KernelLaunch
    scheduler_factory: SchedulerFactory
    sm_ids: tuple[int, ...]
    scheduler_name: str = ""
    enable_shared_cache: bool = False
    #: Global cycle at which this tenant's kernel launches (0 = immediately).
    launch_cycle: int = 0


@dataclass
class SimulationResult:
    """Outcome of one GPU simulation."""

    kernel_name: str
    scheduler_name: str
    per_sm: list[SMStats] = field(default_factory=list)
    machine: SMStats = field(default_factory=SMStats)
    #: Name of the execution engine that produced this result (see
    #: :mod:`repro.backends`).
    backend: str = "reference"
    #: DRAM requests that queued behind a different SM's burst.  Only the
    #: lock-step backend interleaves SMs in time, so only it records this
    #: signal (the serialized reference mode cannot observe true inter-SM
    #: interleaving and always reports zero); it is also zero for
    #: single-SM lock-step runs.
    inter_sm_dram_conflicts: int = 0
    #: Per-tenant statistic breakdown, keyed by tenant name.  Empty for
    #: single-kernel runs; filled by the multi-tenant lock-step driver
    #: (:func:`repro.gpu.lockstep.run_multi_tenant`).
    per_tenant: dict[str, TenantStats] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Machine-level thread IPC (sum of per-SM instruction rates)."""
        if not self.per_sm:
            return 0.0
        total_instr = sum(s.instructions_issued for s in self.per_sm)
        cycles = max(s.cycles for s in self.per_sm)
        return total_instr * self.per_sm[0].warp_size / cycles if cycles else 0.0

    @property
    def sm0(self) -> SMStats:
        """Stats of the first SM (the one the time-series figures use)."""
        return self.per_sm[0]

    def summary(self) -> dict[str, float]:
        """Headline metrics of the run."""
        summary = self.machine.summary()
        summary["ipc"] = self.ipc
        return summary

    # ------------------------------------------------------------------
    # Versioned wire format (shared by the result cache and the CLI JSON;
    # see repro.api.RESULT_SCHEMA).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Versioned JSON-safe form; :meth:`from_dict` restores an equal result."""
        from repro.api import RESULT_SCHEMA, encode_value

        payload = {
            "schema": RESULT_SCHEMA,
            "kind": "SimulationResult",
            "data": encode_value(self),
        }
        if not self.per_tenant:
            # Single-kernel payloads predate the tenant layer; omitting the
            # empty field keeps the schema-1 wire form (golden fixtures,
            # existing cache entries) byte-identical, and ``from_dict``
            # restores the default on decode.
            payload["data"]["fields"].pop("per_tenant", None)
        else:
            # Same compatibility rule for the stagger field: simultaneous
            # launches (the only kind that predate it) omit the zero default.
            for tenant in payload["data"]["fields"]["per_tenant"].values():
                if tenant["fields"].get("launch_cycle") == 0:
                    tenant["fields"].pop("launch_cycle")
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationResult":
        """Inverse of :meth:`to_dict` (raises ``ValueError`` on schema drift)."""
        from repro.api import RESULT_SCHEMA, check_schema, decode_value

        check_schema(payload, "SimulationResult", RESULT_SCHEMA)
        value = decode_value(payload["data"])
        if not isinstance(value, cls):
            raise ValueError(f"payload decoded to {type(value).__name__}, not {cls.__name__}")
        return value


class GPU:
    """A multi-SM machine sharing one memory subsystem."""

    #: Class of the SMs this machine builds.  Subclasses substitute their own
    #: engine (the ``vector`` backend's :class:`repro.gpu.vector.engine.VectorSM`)
    #: while inheriting all launch/partition bookkeeping unchanged.
    sm_class = StreamingMultiprocessor

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        *,
        scheduler_factory: SchedulerFactory,
        enable_shared_cache: bool = False,
        dram_bandwidth_scale: float = 1.0,
    ) -> None:
        self.config = config or GPUConfig.gtx480()
        self.config.validate()
        self.scheduler_factory = scheduler_factory
        # Derive the fallback display name from the factory exactly once, so
        # run() never has to reach into self.sms[0] for it (which raised
        # IndexError when the SM loop had not populated any SMs yet).
        self.default_scheduler_name = type(scheduler_factory()).__name__
        self.enable_shared_cache = enable_shared_cache
        mem_config = MemorySubsystemConfig(
            l2=self._scaled_l2_config(),
            dram=self._scaled_dram_config(dram_bandwidth_scale),
            interconnect=self.config.interconnect,
        )
        self.memory = MemorySubsystem(mem_config, num_sms=self.config.num_sms)
        self.sms: list[StreamingMultiprocessor] = []

    # ------------------------------------------------------------------
    # Fair-share scaling of the off-SM memory system
    # ------------------------------------------------------------------
    def _share(self) -> float:
        """Fraction of the chip the simulated SMs represent."""
        chip_sms = max(self.config.chip_sms, self.config.num_sms)
        return self.config.num_sms / chip_sms

    def _scaled_l2_config(self) -> CacheConfig:
        """L2 capacity scaled to the simulated SMs' fair share of the chip."""
        share = self._share()
        base = self.config.l2
        if share >= 1.0:
            return base
        granule = base.line_size * base.associativity
        scaled_bytes = max(granule, int(base.size_bytes * share) // granule * granule)
        return CacheConfig(
            name=base.name,
            size_bytes=scaled_bytes,
            line_size=base.line_size,
            associativity=base.associativity,
            write_policy=base.write_policy,
            replacement=base.replacement,
            set_hash=base.set_hash,
            hit_latency=base.hit_latency,
        )

    def _scaled_dram_config(self, dram_bandwidth_scale: float):
        """DRAM bandwidth scaled to the fair share, times any Fig. 12b factor."""
        dram = self.config.dram
        factor = self._share() * dram_bandwidth_scale
        if factor != 1.0:
            dram = dram.scaled_bandwidth(factor)
        return dram

    def build_sms(self, kernel: KernelLaunch) -> list[StreamingMultiprocessor]:
        """Construct and launch one SM per configured SM slot.

        Validates the launch geometry up front (so a bad kernel fails before
        any SM has simulated a cycle) and leaves the SMs in ``self.sms`` for
        the caller — :meth:`run` or the lock-step driver — to execute.
        """
        kernel.validate()
        if self.config.num_sms <= 0:
            raise ValueError("need at least one SM")
        self.sms = []
        for sm_id in range(self.config.num_sms):
            sm = self._new_sm(
                sm_id,
                self.scheduler_factory(),
                enable_shared_cache=self.enable_shared_cache,
            )
            sm.launch(kernel)
            self.sms.append(sm)
        return self.sms

    def _new_sm(
        self, sm_id: int, scheduler, *, enable_shared_cache: bool
    ) -> StreamingMultiprocessor:
        """Construct one SM of this machine's :attr:`sm_class`."""
        return type(self).sm_class(
            sm_id,
            self.config,
            self.memory,
            scheduler,
            enable_shared_cache=enable_shared_cache,
        )

    def build_partitioned_sms(
        self, plans: "list[TenantPlan]"
    ) -> list[StreamingMultiprocessor]:
        """Construct one SM per *owned* slot, running its tenant's kernel.

        ``plans`` claim disjoint ``sm_ids`` within ``range(num_sms)``.  SM
        slots no plan owns are left idle — they contribute no work but the
        machine keeps its full L2/DRAM share, which is how a tenant runs
        "alone on the machine" for interference baselines.  SMs are
        constructed and launched in ``sm_id`` order — the same order
        :meth:`build_sms` uses — so a partition in which every tenant runs
        the same kernel and scheduler builds a machine bit-identical to the
        single-kernel path.
        """
        owner: dict[int, TenantPlan] = {}
        for plan in plans:
            plan.kernel.validate()
            for sm_id in plan.sm_ids:
                if sm_id in owner:
                    raise ValueError(
                        f"SM {sm_id} assigned to both tenant "
                        f"{owner[sm_id].name!r} and {plan.name!r}"
                    )
                owner[sm_id] = plan
        out_of_range = sorted(i for i in owner if i < 0 or i >= self.config.num_sms)
        if out_of_range:
            raise ValueError(
                f"SM ids {out_of_range} lie outside the "
                f"{self.config.num_sms}-SM machine"
            )
        self.sms = []
        for sm_id in sorted(owner):
            plan = owner[sm_id]
            sm = self._new_sm(
                sm_id,
                plan.scheduler_factory(),
                enable_shared_cache=plan.enable_shared_cache,
            )
            sm.launch(plan.kernel)
            self.sms.append(sm)
        return self.sms

    def collect_result(
        self,
        kernel: KernelLaunch,
        per_sm_stats: list[SMStats],
        *,
        scheduler_name: str = "",
        backend: str = "reference",
    ) -> SimulationResult:
        """Aggregate per-SM statistics into a :class:`SimulationResult`.

        ``inter_sm_dram_conflicts`` is only recorded for the lock-step
        backend: the serialized mode restarts each SM's clock at zero while
        the DRAM channel state persists, so its raw conflict counter would
        compare incompatible time bases.
        """
        conflicts = (
            self.memory.inter_sm_dram_conflicts if backend == "lockstep" else 0
        )
        return SimulationResult(
            kernel_name=kernel.name,
            scheduler_name=scheduler_name or self.default_scheduler_name,
            per_sm=per_sm_stats,
            machine=merge_stats(per_sm_stats),
            backend=backend,
            inter_sm_dram_conflicts=conflicts,
        )

    def run(self, kernel: KernelLaunch, *, max_cycles: Optional[int] = None, scheduler_name: str = "") -> SimulationResult:
        """Run ``kernel`` on every SM, one after another, and aggregate stats.

        This is the ``"reference"`` execution mode.  For the cycle-by-cycle
        multi-SM mode see :func:`repro.gpu.lockstep.run_lockstep`.
        """
        per_sm_stats = [sm.run(max_cycles) for sm in self.build_sms(kernel)]
        return self.collect_result(
            kernel, per_sm_stats, scheduler_name=scheduler_name, backend="reference"
        )
