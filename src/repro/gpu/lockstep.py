"""Lock-step multi-SM execution: all SMs advance against one global clock.

The reference execution mode (:meth:`repro.gpu.gpu.GPU.run`) simulates SMs
one after another, so two SMs never contend for a DRAM channel *in the same
cycle* — inter-SM contention only appears indirectly through leftover
channel-busy state.  :func:`run_lockstep` instead advances every SM
cycle-by-cycle against the shared :class:`~repro.mem.subsystem.MemorySubsystem`:
within a cycle, SMs issue in ``sm_id`` order (deterministic), and their
memory transactions interleave in true time order, so simultaneous bursts
genuinely queue behind each other (counted by
``SimulationResult.inter_sm_dram_conflicts``).

The driver is built from the same per-cycle stepping primitives the
serialized loop uses (``StreamingMultiprocessor.step_cycle`` /
``next_event_time`` / ``record_stall`` / ``handle_no_progress`` /
``finalize``), and its control flow reduces *exactly* to the serialized loop
when one SM is simulated: single-SM results are bit-for-bit identical
between the two backends, which the test suite pins down
(``tests/test_lockstep.py``).

:func:`run_multi_tenant` drives the same loop over a *partitioned* machine
(:meth:`repro.gpu.gpu.GPU.build_partitioned_sms`): each tenant's kernel runs
on its own SM subset while every SM contends for the shared L2/DRAM.
Tenants finalize independently — a finished tenant's SMs go idle (and are
sealed at the global cycle they were observed drained) while the remaining
tenants keep contending — and the result carries a per-tenant statistics
breakdown (``SimulationResult.per_tenant``), including each tenant's share
of the inter-SM DRAM conflicts.  Because both drivers share
:func:`_advance_sms` and SM construction order, a partition in which every
tenant runs the same kernel and scheduler is bit-identical to the
single-kernel lock-step path.

The global fast-forward keeps pure-Python simulation practical: when no SM
can issue, the clock jumps straight to the earliest in-flight memory event
across all SMs.

Driver-side cost is kept proportional to *change*, not to SM count times
cycle count: ``has_work()`` and ``can_issue()`` are O(1)/indexed on the SM
side (the SM's incremental ready index), and the driver keeps a cross-SM
*event index* — each SM's ``next_event_time()`` is cached against its
``events_version`` stamp, so SMs that are provably waiting (no fill-event
churn) are not re-queried on every fast-forward decision.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.cta import KernelLaunch
from repro.gpu.gpu import GPU, SimulationResult, TenantPlan
from repro.gpu.stats import SMStats, TenantStats, merge_stats


def _advance_sms(
    sms: Sequence, budget: int, *, launch_cycles: Optional[dict[int, int]] = None
) -> dict[int, SMStats]:
    """Advance ``sms`` in lock step until all drain or ``budget`` is reached.

    Returns the per-SM statistics keyed by ``sm_id``.  Each SM is finalized
    at the global cycle it was observed drained (or at the final cycle for
    SMs still live when the budget ran out), so heterogeneous kernels —
    tenants of different lengths — seal their stats independently.

    ``launch_cycles`` (``sm_id -> arrival cycle``) staggers kernel launches:
    an SM with a positive arrival sits *dormant* — not stepped, accruing no
    stall accounting — until the global clock reaches its launch cycle, then
    joins the live set in ``sm_id`` order.  Arrivals participate in the
    fast-forward decision (the clock never jumps past a pending launch), and
    an all-zero map takes exactly the simultaneous-launch code path, so
    offset-free staggered requests stay bit-identical to the original loop.
    """
    cycle = 0
    if launch_cycles and any(launch_cycles.values()):
        live = [sm for sm in sms if not launch_cycles.get(sm.sm_id, 0)]
        pending = sorted(
            (sm for sm in sms if launch_cycles.get(sm.sm_id, 0)),
            key=lambda sm: (launch_cycles[sm.sm_id], sm.sm_id),
        )
    else:
        live = list(sms)
        pending = []
    finalized: set[int] = set()
    per_sm_stats: dict[int, SMStats] = {}

    # Cross-SM event index: next_event_time() per SM, cached against the
    # SM's events_version stamp so waiting SMs are not re-scanned.
    event_cache: dict[int, tuple[int, Optional[int]]] = {}

    def next_event(sm) -> Optional[int]:
        version = sm.events_version
        cached = event_cache.get(sm.sm_id)
        if cached is not None and cached[0] == version:
            return cached[1]
        value = sm.next_event_time()
        event_cache[sm.sm_id] = (version, value)
        return value

    while (live or pending) and cycle < budget:
        if pending and launch_cycles[pending[0].sm_id] <= cycle:
            # Admit every tenant whose launch cycle has arrived; the live
            # set keeps its sm_id issue order.
            while pending and launch_cycles[pending[0].sm_id] <= cycle:
                live.append(pending.pop(0))
            live.sort(key=lambda sm: sm.sm_id)
        if not live:
            # Nothing resident yet: jump straight to the next arrival —
            # dormant tenants accrue no stall accounting.
            cycle = min(launch_cycles[pending[0].sm_id], budget)
            continue
        stepped: list[tuple] = []
        issued_any = False
        for sm in live:
            if not sm.has_work():
                # This SM drained between cycles: seal its stats at the
                # global time it was observed idle.
                per_sm_stats[sm.sm_id] = sm.finalize(cycle)
                finalized.add(sm.sm_id)
                continue
            issued = sm.step_cycle(cycle)
            issued_any = issued_any or issued
            stepped.append((sm, issued))
        live = [sm for sm, _ in stepped]
        if not live:
            continue

        if issued_any:
            # At least one SM made progress: SMs that could not issue this
            # cycle lost an issue slot, exactly as in the serialized loop.
            for sm, issued in stepped:
                if not issued:
                    sm.record_stall(1)
            cycle += 1
            continue

        # Nobody issued anywhere: fast-forward the global clock to the
        # earliest in-flight memory event across all SMs — or the next
        # staggered kernel arrival, whichever comes first.
        event_times = [t for sm in live if (t := next_event(sm)) is not None]
        if pending:
            event_times.append(launch_cycles[pending[0].sm_id])
        if event_times:
            target = min(event_times)
            if target > cycle:
                for sm in live:
                    sm.record_stall(target - cycle)
                cycle = target
            else:  # pragma: no cover - events <= cycle are drained in step_cycle
                for sm in live:
                    sm.record_stall(1)
                cycle += 1
        elif not any(sm.can_issue(cycle) for sm in live):
            # No events in flight and nobody can issue: every remaining warp
            # is throttled (scheduler livelock guard) or waiting on ready_at
            # timers; let each SM's scheduler resolve it, then tick once.
            for sm in live:
                sm.handle_no_progress()
                sm.record_stall(1)
            cycle += 1
        else:
            for sm in live:
                sm.record_stall(1)
            cycle += 1

    for sm in sms:
        if sm.sm_id not in finalized:
            per_sm_stats[sm.sm_id] = sm.finalize(cycle)

    return per_sm_stats


def run_lockstep(
    gpu: GPU,
    kernel: KernelLaunch,
    *,
    max_cycles: Optional[int] = None,
    scheduler_name: str = "",
) -> SimulationResult:
    """Run ``kernel`` on every SM of ``gpu`` in lock step; aggregate stats.

    ``max_cycles`` bounds the *global* clock (for a single SM this is the
    same budget the serialized mode applies per SM).
    """
    sms = gpu.build_sms(kernel)
    budget = max_cycles if max_cycles is not None else gpu.config.max_cycles
    per_sm_stats = _advance_sms(sms, budget)
    stats_in_order = [per_sm_stats[sm.sm_id] for sm in sms]
    return gpu.collect_result(
        kernel, stats_in_order, scheduler_name=scheduler_name, backend="lockstep"
    )


def run_multi_tenant(
    gpu: GPU,
    plans: Sequence[TenantPlan],
    *,
    max_cycles: Optional[int] = None,
) -> SimulationResult:
    """Run one kernel per tenant on a partitioned ``gpu`` in lock step.

    ``plans`` assign each tenant a kernel, a scheduler factory, an SM
    partition (see :meth:`repro.gpu.gpu.GPU.build_partitioned_sms` for the
    partition contract) and a launch cycle — tenants with a positive
    ``launch_cycle`` arrive mid-run, their SMs dormant until the global
    clock reaches the arrival.  All SMs share the global clock and the
    L2/DRAM; per-tenant statistics (including the tenant's share of the
    inter-SM DRAM conflicts and its launch cycle) are attached as
    ``SimulationResult.per_tenant``.
    """
    sms = gpu.build_partitioned_sms(list(plans))
    budget = max_cycles if max_cycles is not None else gpu.config.max_cycles
    launch_cycles = {
        sm_id: plan.launch_cycle for plan in plans for sm_id in plan.sm_ids
    }
    per_sm_stats = _advance_sms(sms, budget, launch_cycles=launch_cycles)
    stats_in_order = [per_sm_stats[sm.sm_id] for sm in sms]

    conflicts_by_sm = gpu.memory.inter_sm_dram_conflicts_by_sm
    per_tenant: dict[str, TenantStats] = {}
    for plan in plans:
        tenant_stats = merge_stats([per_sm_stats[sm_id] for sm_id in plan.sm_ids])
        per_tenant[plan.name] = TenantStats(
            name=plan.name,
            benchmark=plan.kernel.name,
            scheduler=plan.scheduler_name,
            sm_ids=tuple(plan.sm_ids),
            stats=tenant_stats,
            finish_cycle=tenant_stats.cycles,
            launch_cycle=plan.launch_cycle,
            inter_sm_dram_conflicts=sum(
                conflicts_by_sm.get(sm_id, 0) for sm_id in plan.sm_ids
            ),
        )

    def joined(values: list[str]) -> str:
        unique = list(dict.fromkeys(values))
        return "+".join(unique)

    return SimulationResult(
        kernel_name=joined([plan.kernel.name for plan in plans]),
        scheduler_name=joined(
            [plan.scheduler_name or type(plan.scheduler_factory()).__name__ for plan in plans]
        ),
        per_sm=stats_in_order,
        machine=merge_stats(stats_in_order),
        backend="lockstep",
        inter_sm_dram_conflicts=gpu.memory.inter_sm_dram_conflicts,
        per_tenant=per_tenant,
    )
