"""Workload trace extraction and interning for the vector engine.

The reference engine consumes each warp's instruction stream lazily from a
Python generator (RNG draws, pattern iterators and ``Instruction``
construction interleaved with simulation).  The vector engine instead
*extracts* each warp's stream exactly once into parallel arrays:

* ``kinds`` / ``latencies`` — per-instruction kind codes and ALU latencies;
* ``sticky_end`` — for every instruction index, the first index at or after
  it that ends a run of latency-1 ALU instructions (the unit of the
  engine's batched issue);
* a CSR layout of the *pre-coalesced* memory transactions: per memory
  instruction, the distinct 128-byte blocks in first-appearance order
  (exactly ``Coalescer.coalesce``'s output) plus the lane count, so the
  per-issue coalescing dictionary work disappears;
* per-cache-geometry set indices for every transaction, computed with a
  vectorised XOR fold over the whole block array (one numpy pass instead of
  one scalar hash per probe).

Extraction replays the *same* generator the reference engine would consume,
so the arrays are bit-faithful by construction; the cost is paid once per
kernel identity and interned in a small LRU (:func:`kernel_trace_for_model`),
which is what ``run_batch`` amortises across a batch of requests.

Traces are keyed by everything the stream depends on — benchmark spec,
scale, seed and launch geometry — and deliberately *not* by the machine
configuration: the same trace serves every cache geometry, with per-geometry
set indices computed (and memoised) on first use.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Callable, Optional

import numpy as np

from repro.gpu.cta import KernelLaunch
from repro.gpu.instruction import Instruction, InstructionKind
from repro.mem.address import BLOCK_SIZE, is_power_of_two

#: Compact instruction-kind codes used by the trace arrays.
KIND_CODE = {
    InstructionKind.ALU: 0,
    InstructionKind.LOAD: 1,
    InstructionKind.STORE: 2,
    InstructionKind.SHARED_LOAD: 3,
    InstructionKind.SHARED_STORE: 4,
    InstructionKind.BARRIER: 5,
    InstructionKind.EXIT: 6,
}

K_ALU = KIND_CODE[InstructionKind.ALU]
K_LOAD = KIND_CODE[InstructionKind.LOAD]
K_STORE = KIND_CODE[InstructionKind.STORE]
K_SHARED_LOAD = KIND_CODE[InstructionKind.SHARED_LOAD]
K_SHARED_STORE = KIND_CODE[InstructionKind.SHARED_STORE]


def vector_set_indices(blocks: np.ndarray, num_sets: int, set_hash: str) -> np.ndarray:
    """Set index of every block in ``blocks`` for a cache geometry.

    Vectorised equivalents of :mod:`repro.mem.hashing` — ``xor`` folds every
    ``log2(num_sets)``-bit slice of the block number together; ``linear`` is
    the conventional modulo mapping.  Unknown hashes fall back to the scalar
    registry function so exotic geometries stay correct, just not fast.
    """
    if blocks.size == 0:
        return np.empty(0, dtype=np.int64)
    if set_hash == "xor":
        if is_power_of_two(num_sets):
            bits = int(num_sets).bit_length() - 1
            mask = num_sets - 1
        else:
            bits = int(num_sets).bit_length()
            mask = (1 << bits) - 1
        index = np.zeros_like(blocks)
        remaining = blocks.copy()
        if bits > 0:
            while remaining.any():
                index ^= remaining & mask
                remaining >>= bits
        if not is_power_of_two(num_sets):
            index %= num_sets
        return index
    if set_hash == "linear":
        return blocks % num_sets
    from repro.mem.hashing import get_set_hash

    fn = get_set_hash(set_hash)
    return np.array([fn(int(b), num_sets) for b in blocks], dtype=np.int64)


class WarpTrace:
    """One warp's fully-extracted instruction stream (see module docstring)."""

    __slots__ = (
        "instructions",
        "kinds",
        "kind_codes",
        "sticky_end",
        "mem_index",
        "mem_blocks",
        "mem_lanes",
        "shared_index",
        "shared_addrs",
        "_mem_flat",
        "_mem_starts",
        "_sets_by_geometry",
        "_shared_costs",
    )

    def __init__(self, instructions: list[Instruction]) -> None:
        if not instructions or instructions[-1].kind is not InstructionKind.EXIT:
            # The reference engine synthesises EXIT when a stream runs dry;
            # making it explicit here is behaviourally identical (peek()
            # hands out the same interned singleton) and guarantees the
            # arrays cover every index the engine can reach.
            instructions = [*instructions, Instruction.exit()]
        self.instructions = instructions
        n = len(instructions)
        kinds = np.fromiter(
            (KIND_CODE[i.kind] for i in instructions), dtype=np.int8, count=n
        )
        latencies = np.fromiter(
            (i.latency for i in instructions), dtype=np.int32, count=n
        )
        self.kinds = kinds

        # -- batched-issue run structure ---------------------------------
        sticky = (kinds == K_ALU) & (latencies == 1)
        positions = np.arange(n, dtype=np.int64)
        boundary = np.where(~sticky, positions, n)
        # Scalar per-issue lookups run on plain lists (faster than numpy
        # item access); the arrays above exist to compute them in bulk.
        self.sticky_end = np.minimum.accumulate(boundary[::-1])[::-1].tolist()
        self.kind_codes = kinds.tolist()

        # -- pre-coalesced memory transactions (CSR) ---------------------
        mem_mask = (kinds == K_LOAD) | (kinds == K_STORE)
        mem_positions = np.flatnonzero(mem_mask)
        mem_index_arr = np.full(n, -1, dtype=np.int32)
        mem_index_arr[mem_positions] = np.arange(len(mem_positions), dtype=np.int32)
        self.mem_index = mem_index_arr.tolist()
        blocks_per_instr: list[tuple[int, ...]] = []
        lanes: list[int] = []
        for position in mem_positions:
            addresses = instructions[position].addresses
            if min(addresses) < 0:
                raise ValueError("memory addresses must be non-negative")
            blocks_per_instr.append(
                tuple(dict.fromkeys([a // BLOCK_SIZE for a in addresses]))
            )
            lanes.append(len(addresses))
        self.mem_blocks = blocks_per_instr
        self.mem_lanes = lanes
        counts = [len(b) for b in blocks_per_instr]
        self._mem_starts = np.concatenate(
            ([0], np.cumsum(counts, dtype=np.int64))
        )
        self._mem_flat = np.fromiter(
            (b for blocks in blocks_per_instr for b in blocks),
            dtype=np.int64,
            count=int(self._mem_starts[-1]),
        )
        self._sets_by_geometry: dict[tuple, list[tuple[int, ...]]] = {}

        # -- scratchpad accesses (cost precomputed per CTA allocation) ---
        shared_mask = (kinds == K_SHARED_LOAD) | (kinds == K_SHARED_STORE)
        shared_positions = np.flatnonzero(shared_mask)
        shared_index_arr = np.full(n, -1, dtype=np.int32)
        shared_index_arr[shared_positions] = np.arange(
            len(shared_positions), dtype=np.int32
        )
        self.shared_index = shared_index_arr.tolist()
        self.shared_addrs = [
            instructions[position].addresses for position in shared_positions
        ]
        self._shared_costs: dict[tuple, list[tuple[int, tuple[int, ...]]]] = {}

    def __len__(self) -> int:
        return len(self.instructions)

    def shared_costs_for(
        self, base: int, limit: int, *, bank_width: int, num_banks: int
    ) -> list[tuple[int, tuple[int, ...]]]:
        """Per-scratchpad-instruction ``(cycles, rows)`` for one allocation.

        Reproduces ``SharedMemory.access`` over the reference engine's
        remapped offsets ``base + (offset % max(1, limit))``: ``cycles`` is
        the worst per-bank request count, ``rows`` the distinct rows touched
        (for the utilisation statistic).  Computed vectorised over all the
        warp's scratchpad instructions, memoised per ``(base, limit)`` —
        allocations are stable while a CTA is resident, so the engine looks
        the table up once at admission.
        """
        key = (base, limit, bank_width, num_banks)
        cached = self._shared_costs.get(key)
        if cached is not None:
            return cached
        costs: list[tuple[int, tuple[int, ...]]] = []
        addrs = self.shared_addrs
        if addrs:
            modulo = limit if limit > 1 else 1
            row_bytes = bank_width * num_banks
            lane_counts = {len(a) for a in addrs}
            if len(lane_counts) == 1:
                matrix = np.asarray(addrs, dtype=np.int64)
                offsets = base + (matrix % modulo)
                banks = (offsets // bank_width) % num_banks
                n = matrix.shape[0]
                per_bank = np.zeros((n, num_banks), dtype=np.int32)
                np.add.at(
                    per_bank,
                    (np.repeat(np.arange(n), matrix.shape[1]), banks.ravel()),
                    1,
                )
                cycles = per_bank.max(axis=1).tolist()
                rows = (offsets // row_bytes).tolist()
                costs = [
                    (int(cycles[i]), tuple(set(rows[i]))) for i in range(n)
                ]
            else:  # ragged lane counts: scalar fallback, same arithmetic
                for lanes in addrs:
                    offsets = [base + (a % modulo) for a in lanes]
                    per_bank: dict[int, int] = {}
                    for offset in offsets:
                        bank = (offset // bank_width) % num_banks
                        per_bank[bank] = per_bank.get(bank, 0) + 1
                    costs.append(
                        (
                            max(per_bank.values()),
                            tuple({offset // row_bytes for offset in offsets}),
                        )
                    )
        self._shared_costs[key] = costs
        return costs

    def sets_for_geometry(self, geometry: tuple) -> list[tuple[int, ...]]:
        """Per-memory-instruction set indices for ``(num_sets, set_hash)``.

        Computed once per geometry with one vectorised pass over the flat
        transaction array, then split back into per-instruction tuples
        aligned with :attr:`mem_blocks`.
        """
        cached = self._sets_by_geometry.get(geometry)
        if cached is not None:
            return cached
        num_sets, set_hash = geometry
        flat = vector_set_indices(self._mem_flat, num_sets, set_hash).tolist()
        starts = self._mem_starts.tolist()
        sets = [
            tuple(flat[starts[i]:starts[i + 1]])
            for i in range(len(self.mem_blocks))
        ]
        self._sets_by_geometry[geometry] = sets
        return sets


class KernelTrace:
    """Lazily-extracted per-(CTA, warp) traces of one kernel launch.

    Extraction runs the launch's own ``stream_factory`` — the exact
    generator the reference engine would consume — so replay is bit-faithful.
    Streams are extracted on first use (a cycle-budget-truncated run never
    pays for warps it does not admit) and memoised for the lifetime of the
    trace, which the intern cache shares across requests.

    The vector backend only materialises synthetic workload kernels, whose
    streams depend on ``(cta_index, warp_index)`` but not on the physical
    warp slot; extraction passes slot 0 and the engine replays the trace on
    whatever slot the admission logic assigns (matching the reference
    engine, where the slot does not influence the stream either).
    """

    def __init__(self, kernel: KernelLaunch) -> None:
        self.name = kernel.name
        self.num_ctas = kernel.num_ctas
        self.warps_per_cta = kernel.warps_per_cta
        self._stream_factory = kernel.stream_factory
        self._warps: dict[tuple[int, int], WarpTrace] = {}

    def warp(self, cta_index: int, warp_index: int) -> WarpTrace:
        """The trace of ``(cta_index, warp_index)`` (extracted on first use)."""
        key = (cta_index, warp_index)
        trace = self._warps.get(key)
        if trace is None:
            stream = self._stream_factory(cta_index, warp_index, 0)
            trace = WarpTrace(list(stream))
            self._warps[key] = trace
        return trace


# ---------------------------------------------------------------------------
# Intern cache: one KernelTrace per kernel identity
# ---------------------------------------------------------------------------
#: Maximum number of distinct kernel identities kept extracted.  Sized for a
#: sweep's working set (a figure touches a handful of benchmarks); eviction
#: is LRU and only costs re-extraction.
TRACE_CACHE_CAPACITY = 16

_TRACE_CACHE: OrderedDict[str, KernelTrace] = OrderedDict()


def trace_cache_info() -> tuple[int, int]:
    """``(entries, capacity)`` of the intern cache (introspection/tests)."""
    return len(_TRACE_CACHE), TRACE_CACHE_CAPACITY


def clear_trace_cache() -> None:
    """Drop every interned trace (tests / memory pressure)."""
    _TRACE_CACHE.clear()


def kernel_trace_for_model(
    model,
    kernel: Optional[KernelLaunch] = None,
    *,
    key_fn: Optional[Callable[[], str]] = None,
) -> KernelTrace:
    """Interned :class:`KernelTrace` for a ``SyntheticKernelModel``.

    The intern key covers everything the streams depend on: the full
    benchmark spec (model parameters included), scale, seed and the resolved
    launch geometry.  ``kernel`` avoids rebuilding the launch when the
    caller already has it.
    """
    if key_fn is not None:
        key = key_fn()
    else:
        from repro.api import encode_value

        key = json.dumps(
            {
                "spec": encode_value(model.spec),
                "scale": model.scale,
                "seed": model.seed,
                "num_ctas": model.num_ctas,
                "warps_per_cta": model.warps_per_cta,
            },
            sort_keys=True,
        )
    trace = _TRACE_CACHE.get(key)
    if trace is not None:
        _TRACE_CACHE.move_to_end(key)
        return trace
    trace = KernelTrace(kernel if kernel is not None else model.kernel_launch())
    _TRACE_CACHE[key] = trace
    while len(_TRACE_CACHE) > TRACE_CACHE_CAPACITY:
        _TRACE_CACHE.popitem(last=False)
    return trace
