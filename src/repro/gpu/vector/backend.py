"""The ``vector`` backend: trace-interned, batch-issuing execution engine.

Requests are materialised exactly like the reference backend (same kernel
model, same scheduler factory, same machine construction), but execution
runs on :class:`~repro.gpu.vector.engine.VectorGPU`: the kernel's
instruction streams are extracted once into numpy-backed traces
(:func:`~repro.gpu.vector.trace.kernel_trace_for_model`) and replayed by
:class:`~repro.gpu.vector.engine.VectorSM`.

The trace intern cache is process-wide, so a batch of requests over the
same kernel — a ``run_batch`` call, a sweep's scheduler column, repeated
bench runs — pays extraction once; this is the setup amortisation the
``run_batch`` API exposes.
"""

from __future__ import annotations

from repro.gpu.gpu import SimulationResult
from repro.gpu.vector.engine import VectorGPU
from repro.gpu.vector.trace import kernel_trace_for_model


class VectorBackend:
    """Numpy-batched warp engine behind the standard backend protocol."""

    name = "vector"

    def execute(self, request) -> SimulationResult:
        from repro.api import MultiTenantRequest
        from repro.backends import materialize_model
        from repro.sched.registry import (
            scheduler_factory,
            uses_shared_cache,
        )

        if isinstance(request, MultiTenantRequest):
            raise ValueError(
                "the 'vector' backend replays single-kernel traces and "
                "cannot co-locate tenants; run multi-tenant requests on the "
                "'lockstep' backend"
            )
        request, scheduler, model, kernel, config = materialize_model(request)
        trace = kernel_trace_for_model(model, kernel)
        gpu = VectorGPU(
            config.gpu_config,
            scheduler_factory=scheduler_factory(
                scheduler, **request.scheduler_kwargs()
            ),
            enable_shared_cache=uses_shared_cache(scheduler),
            dram_bandwidth_scale=config.dram_bandwidth_scale,
            kernel_trace=trace,
        )
        return gpu.run(kernel, max_cycles=config.max_cycles, scheduler_name=scheduler)

    def execute_batch(self, requests) -> list[SimulationResult]:
        """Execute ``requests`` in order; traces are shared via the intern cache.

        Failures raise :class:`repro.api.BatchExecutionError` so the caller
        can attribute the error to the exact request.
        """
        from repro.api import BatchExecutionError

        results = []
        for request in requests:
            try:
                results.append(self.execute(request))
            except Exception as exc:
                raise BatchExecutionError(request, exc) from exc
        return results
