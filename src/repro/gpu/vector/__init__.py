"""``repro.gpu.vector`` — the numpy-batched execution engine.

This package implements the ``vector`` backend (see
:mod:`repro.gpu.vector.backend`): a third in-tree execution engine that is
bit-identical to ``reference`` but replaces the hottest per-warp/per-cycle
bookkeeping with precomputed numpy array kernels:

* :mod:`repro.gpu.vector.trace` — workload instruction streams are
  *extracted once* per kernel identity into parallel arrays (instruction
  kinds, latency-1 ALU run lengths, coalesced block lists in CSR form, and
  per-geometry L1D set indices computed with a vectorised XOR fold), then
  interned so every request for the same kernel replays the same arrays.
* :mod:`repro.gpu.vector.engine` — :class:`VectorSM` drives the same warp
  list, schedulers, caches and memory subsystem as the reference SM, but
  issues uninterrupted single-warp instruction runs in one batched step
  (exact under the schedulers' declared ``vector_sticky_select``
  capability), fast-forwards stall stretches with one min-reduction over
  the warp timers, and runs the global-memory path against the
  pre-coalesced, pre-hashed transaction arrays.

The package imports numpy at module load; callers gate on availability
through :func:`repro.backends.get_backend` (``pip install repro-ciao[vector]``).
"""

from repro.gpu.vector.backend import VectorBackend
from repro.gpu.vector.engine import VectorGPU, VectorSM
from repro.gpu.vector.trace import KernelTrace, WarpTrace, kernel_trace_for_model

__all__ = [
    "VectorBackend",
    "VectorGPU",
    "VectorSM",
    "KernelTrace",
    "WarpTrace",
    "kernel_trace_for_model",
]
