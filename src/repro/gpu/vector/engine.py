"""The vector execution engine: batched warp issue over extracted traces.

:class:`VectorSM` subclasses the reference
:class:`~repro.gpu.sm.StreamingMultiprocessor` and drives the *same* warp
objects, schedulers, caches, MSHRs, VTA and shared memory subsystem — every
hook fires with the same arguments at the same simulated cycle — so the
engine is bit-identical to ``reference`` by construction, which
``tests/test_vector_backend.py`` pins against the golden fixtures.  What
changes is how much Python runs per simulated cycle:

* **Batched greedy stretches.**  All GTO-ordered schedulers keep issuing
  the same warp while it can issue (declared via
  ``WarpScheduler.vector_sticky_select``), so the instant a warp issues,
  every following cycle is determined until the warp stalls, a memory event
  falls due, or a barrier/exit changes CTA state.  The engine therefore
  issues the whole stretch in one batched step: runs of latency-1 ALU
  instructions (pre-measured by the trace's ``sticky_end`` array) are
  applied as bulk counter updates, and global-memory / scratchpad
  instructions issue back to back without re-deriving the issuable set or
  re-running selection.  Periodic ``on_cycle`` hooks run at exactly the
  cycles they act (``on_cycle_due``), schedulers whose ``notify_issue`` has
  per-instruction semantics (CIAO's epoch checks) are notified per
  instruction, and the time series is sampled at the exact crossing
  instruction and cycle.
* **Pre-coalesced memory path.**  Global memory instructions replay the
  trace's transaction CSR: the coalescer's dictionary dedup and the
  per-probe set-index hash are replaced by array lookups computed once per
  kernel x geometry (:meth:`~repro.gpu.vector.trace.WarpTrace.sets_for_geometry`),
  the L1D hit path is a fused probe that touches the same tag lines and
  counters as ``Cache.access`` without its layered dispatch, and the miss
  path runs a fused interconnect → L2 → DRAM walk with the L2 set index
  precomputed by the same vectorised hash.  Scratchpad instructions replay
  bank-conflict costs precomputed per CTA allocation
  (:meth:`~repro.gpu.vector.trace.WarpTrace.shared_costs_for`).
* **Batched stall fast-forward.**  When nothing can issue, no memory event
  is in flight and the no-progress guard is provably a no-op, the clock
  jumps to the earliest warp timer with one scan instead of single-cycle
  stepping.

Schedulers that do not declare the sticky capability (LRR's rotation,
statPCAL's token preference) run through the inherited cycle-by-cycle path
and remain exact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from itertools import islice
from typing import Optional

from repro.gpu.cta import KernelLaunch
from repro.gpu.gpu import GPU, SimulationResult
from repro.gpu.instruction import InstructionKind
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.stats import SMStats
from repro.gpu.vector.trace import KIND_CODE, KernelTrace
from repro.mem.mshr import MSHRTarget

_K_STORE = InstructionKind.STORE
_C_LOAD = KIND_CODE[InstructionKind.LOAD]
_C_STORE = KIND_CODE[InstructionKind.STORE]
_C_SHARED_LOAD = KIND_CODE[InstructionKind.SHARED_LOAD]
_C_SHARED_STORE = KIND_CODE[InstructionKind.SHARED_STORE]
_C_BARRIER = KIND_CODE[InstructionKind.BARRIER]
_C_EXIT = KIND_CODE[InstructionKind.EXIT]


class VectorSM(StreamingMultiprocessor):
    """Reference SM semantics, batched issue loop (see module docstring)."""

    def __init__(
        self,
        sm_id,
        config,
        memory,
        scheduler,
        *,
        enable_shared_cache: bool = False,
        kernel_trace: Optional[KernelTrace] = None,
    ) -> None:
        super().__init__(
            sm_id,
            config,
            memory,
            scheduler,
            enable_shared_cache=enable_shared_cache,
        )
        self._kernel_trace = kernel_trace
        #: wid -> WarpTrace of the resident warp occupying that slot.
        self._traces: dict[int, object] = {}
        #: wid -> per-instruction L1D / L2 set-index tuples (aligned with
        #: the trace's ``mem_blocks``), for this machine's cache geometries.
        self._mem_sets: dict[int, list[tuple[int, ...]]] = {}
        self._mem_sets_l2: dict[int, list[tuple[int, ...]]] = {}
        #: wid -> per-scratchpad-instruction (cycles, rows) cost table.
        self._shared_costs: dict[int, list[tuple[int, tuple[int, ...]]]] = {}
        self._l1d_geometry = (config.l1d.num_sets, config.l1d.set_hash)
        l2_config = memory.l2.cache.config
        self._l2_geometry = (l2_config.num_sets, l2_config.set_hash)
        self._port = memory._ports[sm_id]
        self._l1d_index_fn = self.l1d.mapping._index_fn
        self._batch_warp = None
        self._batch_stalled = False
        self._greedy_warp = None
        self._sticky_ok = False
        self._fast_select_ok = False
        self._notify_greedy_only = False
        self._due_fn = None

    # ------------------------------------------------------------------
    # Launch: substitute trace replay for the generator streams
    # ------------------------------------------------------------------
    def launch(self, kernel: KernelLaunch) -> None:
        ktrace = self._kernel_trace
        if ktrace is not None:
            traces = self._traces
            mem_sets = self._mem_sets
            mem_sets_l2 = self._mem_sets_l2
            shared_costs = self._shared_costs
            l1d_geometry = self._l1d_geometry
            l2_geometry = self._l2_geometry
            shared_memory = self.shared_memory
            traces.clear()
            mem_sets.clear()
            mem_sets_l2.clear()
            shared_costs.clear()

            def replay(cta_index: int, warp_index: int, wid: int):
                warp_trace = ktrace.warp(cta_index, warp_index)
                traces[wid] = warp_trace
                mem_sets[wid] = warp_trace.sets_for_geometry(l1d_geometry)
                mem_sets_l2[wid] = warp_trace.sets_for_geometry(l2_geometry)
                if warp_trace.shared_addrs:
                    entry = shared_memory.smmt.find(f"cta:{cta_index}")
                    base = entry.base if entry is not None else 0
                    limit = (
                        entry.size
                        if entry is not None
                        else shared_memory.capacity_bytes
                    )
                    shared_costs[wid] = warp_trace.shared_costs_for(
                        base,
                        limit,
                        bank_width=shared_memory.BANK_WIDTH_BYTES,
                        num_banks=shared_memory.NUM_BANKS,
                    )
                return iter(warp_trace.instructions)

            kernel = replace(kernel, stream_factory=replay)
        self._greedy_warp = None
        super().launch(kernel)
        scheduler = self.scheduler
        self._sticky_ok = (
            ktrace is not None
            and self._issue_width == 1
            and bool(getattr(scheduler, "vector_sticky_select", False))
        )
        self._fast_select_ok = self._sticky_ok and bool(
            getattr(scheduler, "vector_select_pure_greedy", False)
        )
        self._notify_greedy_only = bool(
            getattr(scheduler, "vector_notify_greedy_only", False)
        )
        self._due_fn = (
            getattr(scheduler, "on_cycle_due", None)
            if self._hooks.on_cycle is not None
            else None
        )
        self._notify_due_fn = getattr(scheduler, "vector_notify_due", None)

    # ------------------------------------------------------------------
    # Main loop (the stepping primitives stay inherited and exact)
    # ------------------------------------------------------------------
    def run(self, max_cycles: Optional[int] = None) -> SMStats:
        if self._kernel is None:
            raise RuntimeError("launch() must be called before run()")
        budget = max_cycles if max_cycles is not None else self.config.max_cycles
        sticky = self._sticky_ok
        now = self.cycle
        while self.has_work() and now < budget:
            if self.step_cycle(now):
                now += 1
                if sticky and self._batch_warp is not None:
                    now = self._issue_sticky_run(self._batch_warp, now, budget)
                    if self._batch_stalled:
                        # The batched stretch ended on a structural hazard at
                        # `now` (stall already recorded by the attempt, like
                        # the reference's failed issue cycle): finish the
                        # cycle through the not-issued branch.
                        self._batch_stalled = False
                        now = self._stall_step(now, budget)
                continue
            now = self._stall_step(now, budget)
        return self.finalize(now)

    def _stall_step(self, now: int, budget: int) -> int:
        """The reference loop's not-issued branch, batched where inert."""
        next_event = self.next_event_time()
        if next_event is not None and next_event > now:
            self.record_stall(next_event - now)
            return next_event
        if next_event is None and not self.can_issue(now):
            return self._no_progress_wait(now, budget)
        self.record_stall(1)
        return now + 1

    def _issue_cycle(self, now: int) -> bool:
        """The reference issue stage, plus the greedy fast path.

        For pure-greedy schedulers (``vector_select_pure_greedy``), when the
        greedy warp is issuable the selection outcome is already determined
        — ``select`` is side-effect free and returns it whatever else is
        issuable — so the issuable list is not built at all.  Every other
        case (greedy warp stalled or retired, scheduler with selection
        state such as two-level's fetch groups, issue width > 1) runs the
        reference loop verbatim.
        """
        hooks = self._hooks
        if hooks.on_cycle is not None:
            hooks.on_cycle(now)
        self._batch_warp = None
        if self._fast_select_ok:
            warp = self._greedy_warp
            if (
                warp is not None
                and not warp.finished
                and not warp.at_barrier
                and warp.ready_at <= now
                and warp.pending_loads
                < (warp.max_pending_loads if warp.max_pending_loads > 0 else 1)
                and (warp.active or self._inactive_may_issue(warp))
            ):
                instruction = warp._peeked
                if instruction is None:
                    instruction = warp.peek()
                if not self._execute(warp, instruction, now):
                    # Structural hazard: like the reference loop, the cycle
                    # ends without an issue (issue width is 1 here).
                    return False
                warp._peeked = None
                warp.note_issue(instruction, now)
                self._record_issue(warp.wid)
                self._reindex_warp(warp)
                notify_issue = hooks.notify_issue
                if notify_issue is not None:
                    notify_issue(warp, instruction, now)
                self._batch_warp = warp
                return True
        issued_any = False
        select = self._select
        notify_issue = hooks.notify_issue
        record_issue = self._record_issue
        for _ in range(self._issue_width):
            issuable = self._issuable_warps(now)
            if not issuable:
                break
            warp = select(issuable, now)
            if warp is None:
                break
            instruction = warp._peeked
            if instruction is None:
                instruction = warp.peek()
            if not self._execute(warp, instruction, now):
                break
            warp._peeked = None
            warp.note_issue(instruction, now)
            record_issue(warp.wid)
            self._reindex_warp(warp)
            if notify_issue is not None:
                notify_issue(warp, instruction, now)
            issued_any = True
            self._batch_warp = warp
            self._greedy_warp = warp
        return issued_any

    def _retire_warp(self, warp, now: int) -> None:
        if self._greedy_warp is warp:
            # Mirrors the schedulers' on_warp_retired bookkeeping: a retired
            # greedy warp stops being sticky, so selection must run again.
            self._greedy_warp = None
        super()._retire_warp(warp, now)

    # ------------------------------------------------------------------
    # Batched greedy-stretch issue
    # ------------------------------------------------------------------
    def _issue_sticky_run(self, warp, now: int, budget: int) -> int:
        """Issue the greedy warp's uninterrupted stretch in one batched step.

        Entered right after ``warp`` issued at cycle ``now - 1``; returns the
        new global time.  Exactness argument, per batched cycle ``c``:

        * ``warp`` is verified issuable at ``c`` (timer arrived, pending-load
          window open, global instructions barred while throttled); the
          scheduler's declared stickiness then means ``select`` would return
          ``warp`` whatever else became issuable;
        * no due fill event exists (the stretch stops before the next event
          time), so ``step_cycle`` would drain nothing;
        * latency-1 ALU runs touch only the issue counters and are applied
          in bulk; memory and scratchpad instructions execute through the
          standard (fused) paths one cycle at a time;
        * ``on_cycle`` is invoked at exactly the cycles where it acts
          (``on_cycle_due``), ``notify_issue`` per instruction unless the
          scheduler declared it greedy-tracking-only, and the time series is
          sampled at the exact crossing instruction and cycle;
        * barriers and exits fall back to the generic path (they mutate CTA
          and admission state), as does a structural hazard — whose failed
          attempt, like the reference's, ends the cycle without an issue
          (``_batch_stalled``).
        """
        trace = self._traces.get(warp.wid)
        if trace is None:
            return now
        hooks = self._hooks
        on_cycle = hooks.on_cycle
        due_fn = self._due_fn
        if on_cycle is not None and due_fn is None:
            return now
        notify = hooks.notify_issue
        per_instr_notify = notify is not None and not self._notify_greedy_only
        notify_due_fn = self._notify_due_fn if per_instr_notify else None
        notify_due = notify_due_fn() if notify_due_fn is not None else None
        sticky_end = trace.sticky_end
        kind_codes = trace.kind_codes
        mem_index = trace.mem_index
        instructions = trace.instructions
        stats = self.stats
        per_warp = stats.per_warp_instructions
        events = self._events
        wid = warp.wid
        pending_limit = warp.max_pending_loads
        if pending_limit < 1:
            pending_limit = 1
        issued_in_batch = False
        while True:
            # The warp must be issuable *now* for stickiness to apply: the
            # preceding instruction may have left a multi-cycle timer
            # (scratchpad bank conflicts) or filled the pending-load window,
            # in which case the reference engine falls back to another warp.
            if (
                warp.finished
                or warp.at_barrier
                or warp.ready_at > now
                or warp.pending_loads >= pending_limit
                or now >= budget
            ):
                break
            if events and events[0].time <= now:
                break
            if warp._peeked is not None:
                # A prior issuability probe pre-fetched the next instruction;
                # the skips below must stay aligned with the iterator, so
                # let the generic path consume it.
                break
            i = warp.instructions_issued
            run_end = sticky_end[i]
            if run_end > i:
                # ---- bulk latency-1 ALU run --------------------------
                k = run_end - i
                room = budget - now
                if k > room:
                    k = room
                if events:
                    gap = events[0].time - now
                    if k > gap:
                        k = gap
                sample_gap = self._next_sample_at - stats.instructions_issued
                if k > sample_gap:
                    k = sample_gap
                if on_cycle is not None:
                    due = due_fn()
                    if due is None:
                        break
                    if due <= now:
                        on_cycle(now)
                        due = due_fn()
                        if due is None or due <= now:
                            break
                    if k > due - now:
                        k = due - now
                if k <= 0:
                    break
                if per_instr_notify and notify_due is None:
                    # Unknown notify semantics: call per instruction.
                    cycle = now
                    for j in range(i, i + k):
                        warp.instructions_issued += 1
                        stats.instructions_issued += 1
                        per_warp[wid] = per_warp.get(wid, 0) + 1
                        notify(warp, instructions[j], cycle)
                        cycle += 1
                else:
                    if notify_due is not None:
                        # Below the boundary, notify_issue only re-writes the
                        # greedy pointer (already this warp): skip the calls
                        # and fire exactly at the boundary instruction.
                        notify_gap = notify_due - stats.instructions_issued
                        if notify_gap < 1:
                            notify_gap = 1
                        if k > notify_gap:
                            k = notify_gap
                    warp.instructions_issued += k
                    stats.instructions_issued += k
                    per_warp[wid] = per_warp.get(wid, 0) + k
                    if notify_due is not None and stats.instructions_issued >= notify_due:
                        notify(warp, instructions[i + k - 1], now + k - 1)
                        notify_due = notify_due_fn()
                    # Greedy-tracking-only notify is skipped outright: the
                    # pointer already names this warp.
                warp.last_issue_cycle = now + k - 1
                warp.ready_at = now + k
                now += k
                issued_in_batch = True
                # Advance the replay iterator past the batched instructions.
                deque(islice(warp.instructions, k), maxlen=0)
                if stats.instructions_issued >= self._next_sample_at:
                    self.cycle = now - 1
                    self._maybe_sample()
                continue
            # ---- single non-ALU instruction at cycle `now` -----------
            kind_code = kind_codes[i]
            if kind_code == _C_BARRIER or kind_code == _C_EXIT:
                break
            if not warp.active and (kind_code == _C_LOAD or kind_code == _C_STORE):
                # Throttled warps may not issue global memory instructions
                # (unless their CTA is parked at a barrier — the reference
                # engine's _inactive_may_issue safeguard): not issuable.
                cta = self.ctas.get(warp.cta_id)
                if cta is not None and cta.num_at_barrier == 0:
                    break
            if on_cycle is not None:
                due = due_fn()
                if due is None:
                    break
                if due <= now:
                    on_cycle(now)
                    due = due_fn()
                    if due is None or due <= now:
                        break
            instruction = instructions[i]
            self.cycle = now
            if kind_code == _C_LOAD or kind_code == _C_STORE:
                ok = self._execute_global_traced(
                    warp, trace, mem_index[i], instruction, now
                )
            elif kind_code == _C_SHARED_LOAD or kind_code == _C_SHARED_STORE:
                ok = self._execute_scratchpad(warp, instruction, now)
            else:
                ok = self._execute(warp, instruction, now)
            if not ok:
                # Structural hazard: the attempt happened (and recorded its
                # stall) at `now`; the cycle ends without an issue.
                self._batch_stalled = True
                break
            next(warp.instructions, None)  # consume from the replay iterator
            warp.note_issue(instruction, now)
            stats.instructions_issued += 1
            per_warp[wid] = per_warp.get(wid, 0) + 1
            # No per-issue _reindex_warp: nothing queries the ready index
            # until the batch ends, where the warp is re-filed once.
            if per_instr_notify:
                if notify_due is None or stats.instructions_issued >= notify_due:
                    notify(warp, instruction, now)
                    if notify_due is not None:
                        notify_due = notify_due_fn()
            issued_in_batch = True
            if stats.instructions_issued >= self._next_sample_at:
                self._maybe_sample()
            now += 1
        self.cycle = now - 1
        if issued_in_batch:
            self._reindex_warp(warp)
        return now

    # ------------------------------------------------------------------
    # Batched no-progress wait
    # ------------------------------------------------------------------
    def _no_progress_wait(self, now: int, budget: int) -> int:
        """One no-progress step, fast-forwarded when it is provably inert.

        The reference loop, when nothing can issue and no event is in
        flight, calls the livelock guard and stalls one cycle at a time.
        When the guard cannot act — the scheduler has no ``on_no_progress``
        hook and no warp qualifies for the generic reactivation — every such
        cycle is a pure stall, so the clock jumps to the earliest warp
        timer (or the budget) in one step with an identical stall count.
        """
        if self._hooks.on_no_progress is not None:
            self.handle_no_progress()
            self.record_stall(1)
            return now + 1
        for candidate in self.warps:
            if (
                not candidate.finished
                and not candidate.active
                and candidate.pending_loads == 0
                and not candidate.at_barrier
            ):
                candidate.active = True
                self.stats.reactivate_events += 1
                self.record_stall(1)
                return now + 1
        target = budget
        for candidate in self.warps:
            if candidate.finished or candidate.at_barrier:
                continue
            limit = candidate.max_pending_loads
            if limit < 1:
                limit = 1
            if candidate.pending_loads >= limit:
                continue
            ready = candidate.ready_at
            if now < ready < target:
                target = ready
        if target <= now:
            self.record_stall(1)
            return now + 1
        self.record_stall(target - now)
        return target

    # ------------------------------------------------------------------
    # Pre-coalesced global-memory path
    # ------------------------------------------------------------------
    def _execute_global(self, warp, instruction, now: int) -> bool:
        trace = self._traces.get(warp.wid)
        if trace is None:
            return super()._execute_global(warp, instruction, now)
        index = warp.instructions_issued
        mem_ix = trace.mem_index[index]
        if mem_ix < 0 or trace.instructions[index] is not instruction:
            # Replay desync (e.g. a test hand-fed this SM a foreign stream):
            # fall back to the reference path rather than guess.
            return super()._execute_global(warp, instruction, now)
        return self._execute_global_traced(warp, trace, mem_ix, instruction, now)

    def _execute_global_traced(self, warp, trace, mem_ix, instruction, now):
        blocks = trace.mem_blocks[mem_ix]
        wid = warp.wid
        sets = self._mem_sets[wid][mem_ix]
        is_write = instruction.kind is _K_STORE
        shared_cache = self.shared_cache
        use_shared = (
            warp.isolated and shared_cache is not None and shared_cache.num_lines > 0
        )
        bypass = False
        should_bypass_l1 = self._hooks.should_bypass_l1
        if not use_shared and should_bypass_l1 is not None:
            bypass = bool(should_bypass_l1(warp, now))
        # Coalescer accounting precedes the resource check, exactly like the
        # reference path (a replayed attempt is re-counted there too).
        coalescer_stats = self.coalescer.stats
        transactions = len(blocks)
        coalescer_stats.instructions += 1
        coalescer_stats.transactions += transactions
        coalescer_stats.lanes += trace.mem_lanes[mem_ix]
        coalescer_stats.histogram[transactions] = (
            coalescer_stats.histogram.get(transactions, 0) + 1
        )
        stats = self.stats
        plain_load = not is_write and not use_shared and not bypass
        if plain_load and transactions == 1:
            return self._execute_single_load(
                warp, blocks[0], sets[0], self._mem_sets_l2[wid][mem_ix][0], now
            )
        if not is_write and not self._resources_ok(blocks, sets, use_shared, bypass):
            stats.stalls.mshr_full += 1
            return False
        stats.global_memory_instructions += 1
        if is_write:
            for block in blocks:
                self._issue_store(warp, block, now, use_shared)
            warp.ready_at = now + 1
            return True
        latency_floor = now + 1
        if not plain_load:
            for block in blocks:
                ready = self._issue_load(warp, block, now, use_shared, bypass)
                if ready is not None and ready > latency_floor:
                    latency_floor = ready
            warp.ready_at = latency_floor
            return True
        # -- fused L1D load path (the hot case) --------------------------
        l1d = self.l1d
        tag_sets = l1d.tags._sets
        l1d_stats = l1d.stats
        vta = self.vta
        notify = self._hooks.notify_global_access
        hit_latency = l1d.hit_latency
        l2_sets = self._mem_sets_l2[wid][mem_ix]
        mshr = self.mshr
        for position in range(transactions):
            block = blocks[position]
            line = None
            for candidate in tag_sets[sets[position]]:
                if candidate.tag == block:
                    line = candidate
                    break
            if line is not None:
                line.last_used_at = now
                l1d_stats.hits += 1
                l1d_stats.per_warp_hits[wid] = (
                    l1d_stats.per_warp_hits.get(wid, 0) + 1
                )
                if not line.reserved:
                    ready = now + hit_latency
                    if ready > latency_floor:
                        latency_floor = ready
                    if notify is not None:
                        notify(warp, True, None, "l1d", now)
                    continue
                # HIT_RESERVED: merge onto the outstanding fill.
                target = MSHRTarget(wid=wid, request_id=self._next_request_id())
                entry, is_new = mshr.allocate(block, target, now, destination="l1d")
                if entry is None:
                    stats.stalls.mshr_full += 1
                else:
                    warp.pending_loads += 1
                    if is_new:
                        # Defensive (mirrors _merge_or_allocate): a reserved
                        # line without an MSHR entry still requests the fill.
                        completion = self._read_block_fused(
                            block, l2_sets[position], wid, now
                        )
                        self._schedule_fill(block, completion, destination="l1d")
                if notify is not None:
                    notify(warp, False, None, "l1d", now)
                continue
            self._fused_miss(
                warp, block, sets[position], l2_sets[position], now, notify
            )
        warp.ready_at = latency_floor
        return True

    def _execute_single_load(self, warp, block, set_index, l2_set, now):
        """Resource check + execution of a one-transaction L1D load, fused.

        With a single transaction nothing can mutate the set between the
        reference engine's pre-check and its execution, so the probe and
        victim search run once and serve both — with the stall counters
        recorded in the pre-check's order.
        """
        stats = self.stats
        mshr = self.mshr
        entry = mshr._entries.get(block)
        line = None
        for candidate in self.l1d.tags._sets[set_index]:
            if candidate.tag == block:
                line = candidate
                break
        if entry is not None:
            if len(entry.targets) >= mshr.max_merged:
                stats.stalls.mshr_full += 1
                return False
        elif line is None:
            if self.l1d.tags.find_victim(set_index) is None:
                stats.stalls.reservation_fail += 1
                stats.stalls.mshr_full += 1
                return False
            if len(mshr._entries) >= mshr.num_entries:
                stats.stalls.mshr_full += 1
                return False
        stats.global_memory_instructions += 1
        notify = self._hooks.notify_global_access
        wid = warp.wid
        if line is not None:
            l1d_stats = self.l1d.stats
            line.last_used_at = now
            l1d_stats.hits += 1
            l1d_stats.per_warp_hits[wid] = l1d_stats.per_warp_hits.get(wid, 0) + 1
            if not line.reserved:
                ready = now + self.l1d.hit_latency
                warp.ready_at = ready if ready > now + 1 else now + 1
                if notify is not None:
                    notify(warp, True, None, "l1d", now)
                return True
            target = MSHRTarget(wid=wid, request_id=self._next_request_id())
            entry, is_new = mshr.allocate(block, target, now, destination="l1d")
            if entry is None:
                stats.stalls.mshr_full += 1
            else:
                warp.pending_loads += 1
                if is_new:
                    completion = self._read_block_fused(block, l2_set, wid, now)
                    self._schedule_fill(block, completion, destination="l1d")
            if notify is not None:
                notify(warp, False, None, "l1d", now)
            warp.ready_at = now + 1
            return True
        self._fused_miss(warp, block, set_index, l2_set, now, notify)
        warp.ready_at = now + 1
        return True

    def _fused_miss(self, warp, block, set_index, l2_set, now, notify):
        """The L1D demand-miss path of ``Cache.access`` + ``_load_via_l1d``.

        Reserves a line (when the set allows it), records the eviction in
        the VTA, probes lost locality, allocates/merges the MSHR entry and
        requests the fill — same objects, same counters, same order.
        """
        l1d = self.l1d
        l1d_stats = l1d.stats
        wid = warp.wid
        victim = l1d.tags.find_victim(set_index)
        if victim is None:
            l1d_stats.reservation_fails += 1
            eviction = None
        else:
            eviction = l1d.tags.fill_line(
                victim, set_index, block, owner_wid=wid, now=now, reserve=True
            )
            l1d_stats.misses += 1
            l1d_stats.per_warp_misses[wid] = (
                l1d_stats.per_warp_misses.get(wid, 0) + 1
            )
            if eviction is not None:
                l1d_stats.evictions += 1
                if eviction.dirty:
                    l1d_stats.writebacks += 1
        vta = self.vta
        if eviction is not None:
            vta.record_eviction(eviction.owner_wid, eviction.tag, wid)
        vta_hit = vta.probe(wid, block)
        if vta_hit is not None:
            self.stats.record_vta_hit(vta_hit.wid, vta_hit.evictor_wid)
        target = MSHRTarget(wid=wid, request_id=self._next_request_id())
        entry, is_new = self.mshr.allocate(block, target, now, destination="l1d")
        if entry is None:
            self.stats.stalls.mshr_full += 1
        else:
            warp.pending_loads += 1
            if is_new:
                completion = self._read_block_fused(block, l2_set, wid, now)
                self._schedule_fill(block, completion, destination="l1d")
        if notify is not None:
            notify(warp, False, vta_hit, "l1d", now)

    def _read_block_fused(self, block: int, l2_set: int, wid: int, now: int) -> int:
        """``MemorySubsystem.read_block`` with the L2 set index precomputed.

        Replicates the interconnect injection, the L2 slice port, the L2
        cache access (same tag lines, same counters), DRAM service on a miss
        and the response-path latency — state and arithmetic are shared with
        the reference implementation, only the layered dispatch and the
        per-access set hash are gone.
        """
        port = self._port
        port_config = port.config
        serialization = 128.0 / port_config.bytes_per_cycle
        start = float(now)
        if start < port._port_free_at:
            start = port._port_free_at
        port._port_free_at = start + serialization
        port.packets += 1
        arrival = int(start + serialization + port_config.latency)

        l2_slice = self.memory.l2
        slice_start = float(arrival)
        if slice_start < l2_slice._port_free_at:
            slice_start = l2_slice._port_free_at
        l2_slice._port_free_at = slice_start + l2_slice.port_cycles
        at = int(slice_start)
        l2_cache = l2_slice.cache
        l2_stats = l2_cache.stats
        lines = l2_cache.tags._sets[l2_set]
        line = None
        for candidate in lines:
            if candidate.tag == block:
                line = candidate
                break
        ready = at + l2_cache.hit_latency
        if line is not None:
            line.last_used_at = at
            l2_stats.hits += 1
            l2_stats.per_warp_hits[wid] = l2_stats.per_warp_hits.get(wid, 0) + 1
            return ready + port_config.latency
        victim = l2_cache.tags.find_victim(l2_set)
        if victim is None:
            l2_stats.reservation_fails += 1
            return ready + port_config.latency
        eviction = l2_cache.tags.fill_line(
            victim, l2_set, block, owner_wid=wid, now=at, reserve=True
        )
        l2_stats.misses += 1
        l2_stats.per_warp_misses[wid] = l2_stats.per_warp_misses.get(wid, 0) + 1
        writeback = None
        if eviction is not None:
            l2_stats.evictions += 1
            if eviction.dirty:
                l2_stats.writebacks += 1
                writeback = eviction.tag
        dram = l2_slice.dram
        ready = dram.service(block, ready, is_write=False, requester=self.sm_id)
        # L2 fill: clear the reservation at the data-ready time.
        for candidate in lines:
            if candidate.tag == block:
                candidate.reserved = False
                candidate.last_used_at = ready
                break
        if writeback is not None:
            dram.service(writeback, at, is_write=True, requester=self.sm_id)
        return ready + port_config.latency

    def _complete_fill(self, event, now: int) -> None:
        """Reference fill completion with the L1D probe's set hash hoisted."""
        if event.destination == "l1d":
            block = event.block
            for candidate in self.l1d.tags._sets[self._l1d_index_fn(block)]:
                if candidate.tag == block:
                    candidate.reserved = False
                    candidate.last_used_at = now
                    break
        elif event.destination == "shared" and self.shared_cache is not None:
            self.shared_cache.fill(event.block, now)
        entry = self.mshr.fill(event.block)
        if entry is None:
            return
        by_wid = self._warps_by_wid
        for target in entry.targets:
            warp = by_wid.get(target.wid)
            if warp is not None and warp.pending_loads > 0:
                warp.pending_loads -= 1
                if warp.pending_loads == 0 and warp.ready_at < now + 1:
                    warp.ready_at = now + 1
                self._reindex_warp(warp)

    # ------------------------------------------------------------------
    # Scratchpad path: precomputed bank-conflict costs
    # ------------------------------------------------------------------
    def _execute_scratchpad(self, warp, instruction, now: int) -> bool:
        costs = self._shared_costs.get(warp.wid)
        trace = self._traces.get(warp.wid)
        if costs is None or trace is None:
            return super()._execute_scratchpad(warp, instruction, now)
        index = warp.instructions_issued
        shared_ix = trace.shared_index[index]
        if shared_ix < 0 or trace.instructions[index] is not instruction:
            return super()._execute_scratchpad(warp, instruction, now)
        cycles, rows = costs[shared_ix]
        shared_stats = self.shared_memory.stats
        shared_stats.rows_touched.update(rows)
        shared_stats.accesses += 1
        shared_stats.bank_conflict_cycles += cycles - 1
        warp.ready_at = now + (cycles if cycles > 1 else 1)
        self.stats.shared_memory_instructions += 1
        return True

    def _resources_ok(self, blocks, sets, use_shared: bool, bypass: bool) -> bool:
        """``_memory_resources_available`` over pre-hashed transactions."""
        free_needed = 0
        mshr = self.mshr
        entries = mshr._entries
        max_merged = mshr.max_merged
        l1d = self.l1d
        tag_sets = l1d.tags._sets
        line_size = l1d.config.line_size
        probe_l1d = not use_shared and not bypass
        for position, block in enumerate(blocks):
            entry = entries.get(block)
            if entry is not None:
                if len(entry.targets) >= max_merged:
                    return False
                continue
            if probe_l1d:
                line = None
                for candidate in tag_sets[sets[position]]:
                    if candidate.tag == block:
                        line = candidate
                        break
                if line is not None:
                    continue
                if l1d.tags.find_victim(sets[position]) is None:
                    self.stats.stalls.reservation_fail += 1
                    return False
            elif (
                use_shared
                and self.shared_cache is not None
                and self.shared_cache.contains(block * line_size)
            ):
                continue
            free_needed += 1
        return len(entries) + free_needed <= mshr.num_entries


class VectorGPU(GPU):
    """A :class:`GPU` whose SMs are :class:`VectorSM` replaying one trace."""

    sm_class = VectorSM

    def __init__(self, *args, kernel_trace: Optional[KernelTrace] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self._kernel_trace = kernel_trace

    def _new_sm(self, sm_id, scheduler, *, enable_shared_cache):
        return VectorSM(
            sm_id,
            self.config,
            self.memory,
            scheduler,
            enable_shared_cache=enable_shared_cache,
            kernel_trace=self._kernel_trace,
        )

    def run(
        self,
        kernel: KernelLaunch,
        *,
        max_cycles: Optional[int] = None,
        scheduler_name: str = "",
    ) -> SimulationResult:
        """Serialized per-SM execution, labelled with the ``vector`` engine."""
        per_sm_stats = [sm.run(max_cycles) for sm in self.build_sms(kernel)]
        return self.collect_result(
            kernel, per_sm_stats, scheduler_name=scheduler_name, backend="vector"
        )
