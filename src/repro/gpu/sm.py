"""The Streaming Multiprocessor (SM) pipeline model.

One :class:`StreamingMultiprocessor` owns the per-SM resources of Figure 2 in
the paper -- the warp list and scheduler, the L1D cache, the shared memory
(and, when CIAO is active, the shared-memory cache carved out of its unused
space), the MSHRs and the victim tag array -- and runs a warp-level,
cycle-approximate execution loop:

1. memory-fill events that completed by the current cycle are drained,
   waking warps whose outstanding loads returned;
2. the attached warp scheduler picks among issuable warps and one (or
   ``issue_width``) warp instruction(s) issue;
3. memory instructions are coalesced into 128-byte transactions and sent to
   the L1D, to CIAO's shared-memory cache (isolated warps), or directly to
   L2 (statPCAL bypass), allocating MSHRs and scheduling fill events;
4. when nothing can issue and no event is due, the clock jumps to the next
   event, which keeps pure-Python simulation times practical.

The scheduler object is duck-typed (see :class:`repro.sched.base.WarpScheduler`
for the reference interface): the SM calls ``attach``, ``select``,
``on_cycle``, ``notify_issue``, ``notify_global_access``, ``should_bypass_l1``,
``on_warp_retired`` and ``on_no_progress``.  The optional hooks are resolved
to bound-method slots exactly once (:func:`repro.sched.base.resolve_hooks`),
so the per-cycle loop never pays for ``hasattr`` probes.

Hot-path invariants (see docs/PERFORMANCE.md)
---------------------------------------------

Per-cycle work is proportional to *what changed*, not to *what exists*: the
SM maintains an incremental ready index instead of scanning every resident
warp on every issue slot.

* ``_warps_by_wid`` maps warp id -> resident warp (warp ids are unique among
  resident warps: a slot is only reused after the CTA that owned it retired
  and its warps left ``self.warps``).
* ``_ready_list`` / ``_ready_orders`` are parallel arrays, sorted by
  admission ``order``, holding the warps whose next-ready time has arrived
  or lies within ``_LAZY_READY_WINDOW`` cycles (those are filtered with one
  integer compare at query time).  Sorting by admission order preserves the
  historical ``self.warps`` scan order exactly.
* ``_waiting`` is a heap of ``(ready_at, order, token, warp)`` for warps
  whose timers lie beyond the lazy window; stale entries self-invalidate
  against the warp's ``wait_token`` stamp, which every reindex bumps.
* Warps blocked on barriers or a full pending-load window live in neither
  structure; they re-enter through :meth:`_reindex_warp` when the blocking
  condition clears.

Every mutation of the fields the index depends on (``finished``,
``at_barrier``, ``pending_loads``, ``ready_at``) happens inside SM code
paths, each of which calls :meth:`_reindex_warp`.  Scheduler-owned flags
(``active``, ``isolated``) are deliberately *not* indexed -- schedulers and
tests flip them at will -- and are re-checked at query time, which keeps the
index correct under arbitrary throttling policies.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.gpu.cta import CTA, KernelLaunch
from repro.gpu.coalescer import Coalescer
from repro.gpu.config import GPUConfig
from repro.gpu.instruction import Instruction, InstructionKind
from repro.gpu.stats import SMStats
from repro.gpu.warp import Warp
from repro.mem.cache import AccessOutcome, Cache
from repro.mem.mshr import MSHRFile, MSHRTarget
from repro.mem.queues import DatapathMux, QueueEntry, ResponseQueue, WriteQueue
from repro.mem.shared_cache import SharedMemoryCache
from repro.mem.shared_memory import SharedMemory
from repro.mem.subsystem import MemorySubsystem
from repro.mem.victim_tag_array import VictimTagArray, VTAHit
from repro.sched.base import SchedulerHooks, resolve_hooks

# Hoisted enum members: the issue loop compares instruction kinds by
# identity, which avoids per-instruction attribute chains and enum hashing.
_K_ALU = InstructionKind.ALU
_K_LOAD = InstructionKind.LOAD
_K_STORE = InstructionKind.STORE
_K_SHARED_LOAD = InstructionKind.SHARED_LOAD
_K_SHARED_STORE = InstructionKind.SHARED_STORE
_K_BARRIER = InstructionKind.BARRIER
_K_EXIT = InstructionKind.EXIT

#: Warps whose ``ready_at`` lies within this many cycles of "now" stay in the
#: ready set and are filtered by a single integer compare at query time;
#: only timers beyond the window go through the waiting heap.  This keeps
#: short ALU / hit / bank-conflict latencies (all <= 32 cycles in the Table I
#: machine) from churning the heap on every issued instruction.  The value
#: is a pure performance knob — results are identical for any window.
_LAZY_READY_WINDOW = 32


@dataclass(slots=True)
class _FillEvent:
    """One pending memory fill (kept in a heap ordered by completion time)."""

    time: int
    seq: int
    block: int
    destination: str  # "l1d", "shared" or "bypass"

    def __lt__(self, other: "_FillEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class StreamingMultiprocessor:
    """One SM: warp storage, scheduler, L1D, shared memory, MSHRs, VTA."""

    #: Extra cycles charged when a block migrates from the L1D into the
    #: shared-memory cache through the response queue (Section IV-B,
    #: "Performance optimization and coherence").
    MIGRATION_LATENCY = 4

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        memory: MemorySubsystem,
        scheduler,
        *,
        enable_shared_cache: bool = False,
    ) -> None:
        config.validate()
        self.sm_id = sm_id
        self.config = config
        self.memory = memory
        self.scheduler = scheduler
        self.enable_shared_cache = enable_shared_cache

        self.l1d = Cache(config.l1d)
        self.vta = VictimTagArray(config.vta)
        self.shared_memory = SharedMemory(config.shared_memory_bytes)
        self.shared_cache: Optional[SharedMemoryCache] = None
        self.mshr = MSHRFile(config.mshr_entries, config.mshr_max_merged)
        self.coalescer = Coalescer()
        self.response_queue = ResponseQueue()
        self.write_queue = WriteQueue()
        self.datapath_mux = DatapathMux()

        self.warps: list[Warp] = []
        self.ctas: dict[int, CTA] = {}
        self.stats = SMStats(warp_size=config.warp_size)

        self.cycle = 0
        self._events: list[_FillEvent] = []
        self._event_seq = 0
        #: Bumped on every fill-event push/pop; lets the lock-step driver
        #: cache ``next_event_time()`` across cycles (cross-SM event index).
        self.events_version = 0
        self._pending_ctas: deque[int] = deque()
        self._kernel: Optional[KernelLaunch] = None
        self._next_cta_index = 0
        #: Free warp slots kept as a min-heap (lowest slot assigned first,
        #: exactly like the historical sorted-list-pop(0) behaviour).
        self._free_warp_slots: list[int] = []
        self._next_sample_at = config.timeseries_sample_instructions
        self._last_sample_cycle = 0
        self._last_sample_instructions = 0
        self._last_sample_vta_hits = 0
        self._request_seq = 0

        # -- incremental ready index (see module docstring) -----------------
        self._warps_by_wid: dict[int, Warp] = {}
        #: Parallel arrays sorted by admission order: the warps currently in
        #: the ready set and their orders (for bisect positioning).  Kept
        #: incrementally so the issuable list never re-sorts per issue slot.
        self._ready_orders: list[int] = []
        self._ready_list: list[Warp] = []
        self._waiting: list[tuple[int, int, int, Warp]] = []
        self._order_seq = 0
        self._unfinished_warps = 0
        self._live_ctas = 0
        self._issue_width = config.issue_width

        # -- scheduler capability slots (resolved once, not per cycle) ------
        self._hooks: SchedulerHooks = resolve_hooks(scheduler)
        self._select = scheduler.select
        self._record_issue = self.stats.record_issue

    # ------------------------------------------------------------------
    # Kernel launch and CTA management
    # ------------------------------------------------------------------
    def launch(self, kernel: KernelLaunch) -> None:
        """Prepare the SM to run ``kernel`` (resident CTAs are created lazily)."""
        kernel.validate()
        self._kernel = kernel
        self._pending_ctas = deque(range(kernel.num_ctas))
        self._next_cta_index = 0
        self._free_warp_slots = list(range(self.config.max_warps_per_sm))  # sorted == valid heap
        self._warps_by_wid.clear()
        self._ready_orders.clear()
        self._ready_list.clear()
        self._waiting.clear()
        self._unfinished_warps = 0
        self._live_ctas = 0
        self._fill_resident_ctas()
        if self.enable_shared_cache:
            self.shared_cache = SharedMemoryCache(self.shared_memory)
        if hasattr(self.scheduler, "attach"):
            self.scheduler.attach(self)
        # Re-resolve after attach in case attach() installed instance hooks.
        self._hooks = resolve_hooks(self.scheduler)
        self._select = self.scheduler.select
        self._record_issue = self.stats.record_issue

    def _resident_warp_count(self) -> int:
        return self._unfinished_warps

    def _resident_cta_count(self) -> int:
        return self._live_ctas

    def _can_admit_cta(self) -> bool:
        assert self._kernel is not None
        kernel = self._kernel
        if self._live_ctas >= self.config.max_ctas_per_sm:
            return False
        if len(self._free_warp_slots) < kernel.warps_per_cta:
            return False
        if self._unfinished_warps + kernel.warps_per_cta > self.config.max_warps_per_sm:
            return False
        if kernel.shared_mem_per_cta > self.shared_memory.smmt.unused_bytes():
            return False
        if kernel.max_resident_warps is not None:
            if self._unfinished_warps + kernel.warps_per_cta > kernel.max_resident_warps:
                return False
        return True

    def _fill_resident_ctas(self) -> None:
        assert self._kernel is not None
        kernel = self._kernel
        while self._pending_ctas and self._can_admit_cta():
            cta_index = self._pending_ctas.popleft()
            cta = CTA(cta_id=cta_index)
            if kernel.shared_mem_per_cta > 0:
                self.shared_memory.smmt.allocate(f"cta:{cta_index}", kernel.shared_mem_per_cta)
            for warp_index in range(kernel.warps_per_cta):
                slot = heapq.heappop(self._free_warp_slots)
                stream = kernel.stream_factory(cta_index, warp_index, slot)
                self._order_seq += 1
                warp = Warp(
                    wid=slot,
                    cta_id=cta_index,
                    instructions=stream,
                    assigned_at=self.cycle,
                    max_pending_loads=self.config.max_outstanding_loads_per_warp,
                    order=self._order_seq,
                )
                cta.add_warp(warp)
                self.warps.append(warp)
                self._warps_by_wid[slot] = warp
                self._unfinished_warps += 1
                self._reindex_warp(warp)
            self.ctas[cta_index] = cta
            self._live_ctas += 1

    def _retire_cta_if_done(self, cta_id: int) -> None:
        cta = self.ctas.get(cta_id)
        if cta is None or not cta.is_finished():
            return
        self.shared_memory.smmt.free(f"cta:{cta_id}")
        for warp in cta.warps:
            heapq.heappush(self._free_warp_slots, warp.wid)
            self._warps_by_wid.pop(warp.wid, None)
            self._ready_discard(warp)
            warp.wait_token += 1  # invalidate any stale timer-heap entry
        self.warps = [w for w in self.warps if w.cta_id != cta_id or not w.finished]
        del self.ctas[cta_id]
        self._live_ctas -= 1
        self._fill_resident_ctas()

    # ------------------------------------------------------------------
    # Incremental ready index
    # ------------------------------------------------------------------
    def _ready_add(self, warp: Warp) -> None:
        if warp.in_ready:
            return
        index = bisect_left(self._ready_orders, warp.order)
        self._ready_orders.insert(index, warp.order)
        self._ready_list.insert(index, warp)
        warp.in_ready = True

    def _ready_discard(self, warp: Warp) -> None:
        if not warp.in_ready:
            return
        index = bisect_left(self._ready_orders, warp.order)
        del self._ready_orders[index]
        del self._ready_list[index]
        warp.in_ready = False

    def _reindex_warp(self, warp: Warp) -> None:
        """Re-file ``warp`` after any change to its SM-owned blocking state.

        Must be called whenever ``finished`` / ``at_barrier`` /
        ``pending_loads`` / ``ready_at`` may have changed.  ``active`` and
        ``isolated`` are scheduler-owned and checked at query time instead.
        """
        warp.wait_token += 1  # invalidate any outstanding timer-heap entry
        limit = warp.max_pending_loads
        if limit < 1:
            limit = 1
        if warp.finished or warp.at_barrier or warp.pending_loads >= limit:
            self._ready_discard(warp)
        elif warp.ready_at <= self.cycle + _LAZY_READY_WINDOW:
            # Near-future timers stay in the ready set; the query filters
            # them with one integer compare instead of heap churn.
            self._ready_add(warp)
        else:
            self._ready_discard(warp)
            heapq.heappush(self._waiting, (warp.ready_at, warp.order, warp.wait_token, warp))

    def _refresh_ready(self, now: int) -> None:
        """Promote warps whose ``ready_at`` timer has expired by ``now``."""
        waiting = self._waiting
        pop = heapq.heappop
        while waiting and waiting[0][0] <= now:
            _, _, token, warp = pop(waiting)
            if warp.wait_token == token:  # else: superseded by a reindex
                self._ready_add(warp)

    def _inactive_may_issue(self, warp: Warp) -> bool:
        """Memory-only throttling semantics for a ready-but-throttled warp.

        A throttled warp (V bit cleared by a scheduler) may not issue global
        memory instructions, but keeps executing ALU / scratchpad / barrier
        instructions.  As an additional safeguard, if its CTA is already
        blocked at a barrier the throttle is ignored entirely, so throttling
        can never deadlock a CTA.
        """
        instruction = warp._peeked
        if instruction is None:
            instruction = warp.peek()
        kind = instruction.kind
        if kind is not _K_LOAD and kind is not _K_STORE:
            return True
        cta = self.ctas.get(warp.cta_id)
        if cta is None:
            return True
        return cta.num_at_barrier > 0

    def _issuable_warps(self, now: int) -> list[Warp]:
        waiting = self._waiting
        if waiting and waiting[0][0] <= now:
            self._refresh_ready(now)
        ready = self._ready_list
        if not ready:
            return []
        inactive_may_issue = self._inactive_may_issue
        return [
            warp
            for warp in ready
            if warp.ready_at <= now and (warp.active or inactive_may_issue(warp))
        ]

    def _any_issuable(self, now: int) -> bool:
        waiting = self._waiting
        if waiting and waiting[0][0] <= now:
            self._refresh_ready(now)
        for warp in self._ready_list:
            if warp.ready_at <= now and (warp.active or self._inactive_may_issue(warp)):
                return True
        return False

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_cycles: Optional[int] = None) -> SMStats:
        """Run the kernel to completion (or the cycle budget) and return stats.

        This is the serialized per-SM loop; :mod:`repro.gpu.lockstep` drives
        several SMs against the shared memory subsystem with the same
        stepping primitives (:meth:`step_cycle`, :meth:`next_event_time`,
        :meth:`record_stall`, :meth:`handle_no_progress`, :meth:`finalize`),
        so the two execution modes cannot drift apart semantically.
        """
        if self._kernel is None:
            raise RuntimeError("launch() must be called before run()")
        budget = max_cycles if max_cycles is not None else self.config.max_cycles
        now = self.cycle
        while self.has_work() and now < budget:
            issued = self.step_cycle(now)
            if issued:
                now += 1
                continue
            # Nothing issued: fast-forward to the next interesting time.
            next_event = self.next_event_time()
            if next_event is not None and next_event > now:
                self.record_stall(next_event - now)
                now = next_event
            elif next_event is None and not self.can_issue(now):
                # No events in flight and nobody can issue: either every
                # remaining warp is throttled (scheduler livelock guard) or
                # we wait one cycle for ready_at timers.
                self.handle_no_progress()
                self.record_stall(1)
                now += 1
            else:
                self.record_stall(1)
                now += 1
        return self.finalize(now)

    # -- stepping primitives (shared with the lock-step driver) --------
    def has_work(self) -> bool:
        """Whether any resident or pending CTA still has instructions left."""
        return self._unfinished_warps > 0 or bool(self._pending_ctas)

    def step_cycle(self, now: int) -> bool:
        """Run one cycle at global time ``now``; returns True if a warp issued.

        Drains due memory-fill events, lets the scheduler issue up to
        ``issue_width`` instructions and samples the time series.
        """
        if self._kernel is None:
            raise RuntimeError("launch() must be called before step_cycle()")
        self.cycle = now
        events = self._events
        if events and events[0].time <= now:
            self._drain_events(now)
        issued = self._issue_cycle(now)
        if self.stats.instructions_issued >= self._next_sample_at:
            self._maybe_sample()
        return issued

    def next_event_time(self) -> Optional[int]:
        """Completion time of the earliest in-flight memory fill, if any."""
        return self._events[0].time if self._events else None

    def can_issue(self, now: int) -> bool:
        """Whether any warp could issue at ``now`` (ignoring issue width)."""
        return self._any_issuable(now)

    def record_stall(self, cycles: int = 1) -> None:
        """Account ``cycles`` of lost issue slots (no issuable warp)."""
        self.stats.stalls.no_issuable_warp += cycles

    def handle_no_progress(self) -> None:
        """Break scheduler-induced livelock (everything throttled, no events)."""
        self._resolve_no_progress()

    def finalize(self, now: int) -> SMStats:
        """Drain outstanding events at ``now`` and seal the statistics."""
        self.cycle = now
        self._drain_events(now)
        self._finalize_stats()
        return self.stats

    def _resolve_no_progress(self) -> None:
        """Break scheduler-induced livelock (everything throttled, no events)."""
        on_no_progress = self._hooks.on_no_progress
        if on_no_progress is not None and on_no_progress(self.cycle):
            return
        for warp in self.warps:
            if not warp.finished and not warp.active and warp.pending_loads == 0 and not warp.at_barrier:
                warp.active = True
                self.stats.reactivate_events += 1
                return

    # ------------------------------------------------------------------
    # Issue stage
    # ------------------------------------------------------------------
    def _issue_cycle(self, now: int) -> bool:
        hooks = self._hooks
        if hooks.on_cycle is not None:
            hooks.on_cycle(now)
        issued_any = False
        select = self._select
        notify_issue = hooks.notify_issue
        record_issue = self._record_issue
        for _ in range(self._issue_width):
            issuable = self._issuable_warps(now)
            if not issuable:
                break
            warp = select(issuable, now)
            if warp is None:
                break
            instruction = warp._peeked
            if instruction is None:
                instruction = warp.peek()
            if not self._execute(warp, instruction, now):
                # Structural hazard: replay the same instruction later.
                break
            warp._peeked = None  # consume (inlined Warp.advance)
            warp.note_issue(instruction, now)
            record_issue(warp.wid)
            self._reindex_warp(warp)
            if notify_issue is not None:
                notify_issue(warp, instruction, now)
            issued_any = True
        return issued_any

    def _execute(self, warp: Warp, instruction: Instruction, now: int) -> bool:
        kind = instruction.kind
        if kind is _K_ALU:
            latency = instruction.latency
            warp.ready_at = now + (latency if latency > 1 else 1)
            return True
        if kind is _K_LOAD or kind is _K_STORE:
            return self._execute_global(warp, instruction, now)
        if kind is _K_EXIT:
            self._retire_warp(warp, now)
            return True
        if kind is _K_BARRIER:
            cta = self.ctas[warp.cta_id]
            released = cta.arrive_at_barrier(warp)
            self.stats.barriers_executed += 1
            for released_warp in released:
                if released_warp is not warp:  # issuer reindexed by _issue_cycle
                    self._reindex_warp(released_warp)
            return True
        # SHARED_LOAD / SHARED_STORE.
        return self._execute_scratchpad(warp, instruction, now)

    def _retire_warp(self, warp: Warp, now: int) -> None:
        warp.retire()
        self._unfinished_warps -= 1
        self._reindex_warp(warp)
        self.stats.warps_retired += 1
        cta = self.ctas.get(warp.cta_id)
        if cta is not None:
            for released_warp in cta.release_if_unblocked():
                self._reindex_warp(released_warp)
        on_warp_retired = self._hooks.on_warp_retired
        if on_warp_retired is not None:
            on_warp_retired(warp, now)
        self._retire_cta_if_done(warp.cta_id)

    def _execute_scratchpad(self, warp: Warp, instruction: Instruction, now: int) -> bool:
        cta_entry = self.shared_memory.smmt.find(f"cta:{warp.cta_id}")
        base = cta_entry.base if cta_entry is not None else 0
        limit = cta_entry.size if cta_entry is not None else self.shared_memory.capacity_bytes
        offsets = [base + (offset % max(1, limit)) for offset in instruction.addresses]
        cycles = self.shared_memory.access(offsets)
        warp.ready_at = now + max(1, cycles)
        self.stats.shared_memory_instructions += 1
        return True

    # ------------------------------------------------------------------
    # Global memory path
    # ------------------------------------------------------------------
    def _execute_global(self, warp: Warp, instruction: Instruction, now: int) -> bool:
        blocks = self.coalescer.coalesce(instruction.addresses)
        is_write = instruction.kind is InstructionKind.STORE
        use_shared = (
            warp.isolated and self.shared_cache is not None and self.shared_cache.num_lines > 0
        )
        bypass = False
        should_bypass_l1 = self._hooks.should_bypass_l1
        if not use_shared and should_bypass_l1 is not None:
            bypass = bool(should_bypass_l1(warp, now))
        if not is_write and not self._memory_resources_available(blocks, use_shared, bypass):
            self.stats.stalls.mshr_full += 1
            return False
        self.stats.global_memory_instructions += 1
        latency_floor = now + 1
        for block in blocks:
            if is_write:
                self._issue_store(warp, block, now, use_shared)
            else:
                ready = self._issue_load(warp, block, now, use_shared, bypass)
                if ready is not None and ready > latency_floor:
                    latency_floor = ready
        if not is_write:
            # Hits resolve after the hit latency; misses block via pending_loads.
            warp.ready_at = latency_floor
        else:
            warp.ready_at = now + 1
        return True

    def _memory_resources_available(self, blocks: list[int], use_shared: bool, bypass: bool) -> bool:
        """Conservatively check MSHR / tag-array capacity before issuing."""
        free_needed = 0
        mshr = self.mshr
        l1d = self.l1d
        line_size = l1d.config.line_size
        for block in blocks:
            entry = mshr.lookup(block)
            if entry is not None:
                if entry.num_targets >= mshr.max_merged:
                    return False
                continue
            byte_address = block * line_size
            if not use_shared and not bypass:
                tag, set_index, _ = l1d.mapping.decompose(byte_address)
                line = l1d.tags.probe(set_index, tag)
                if line is not None:
                    continue  # hit or hit-reserved without a new MSHR entry
                if l1d.tags.find_victim(set_index) is None:
                    self.stats.stalls.reservation_fail += 1
                    return False
            elif use_shared and self.shared_cache is not None and self.shared_cache.contains(byte_address):
                continue
            free_needed += 1
        return mshr.occupancy + free_needed <= mshr.num_entries

    # -- loads ----------------------------------------------------------------
    def _issue_load(
        self, warp: Warp, block: int, now: int, use_shared: bool, bypass: bool
    ) -> Optional[int]:
        """Issue one load transaction; returns data-ready time for hits."""
        byte_address = block * self.l1d.config.line_size
        if use_shared:
            return self._load_via_shared_cache(warp, block, byte_address, now)
        if bypass:
            self._load_bypass(warp, block, now)
            return None
        return self._load_via_l1d(warp, block, byte_address, now)

    def _load_via_l1d(self, warp: Warp, block: int, byte_address: int, now: int) -> Optional[int]:
        result = self.l1d.access(byte_address, warp.wid, is_write=False, now=now)
        vta_hit: Optional[VTAHit] = None
        if result.outcome is AccessOutcome.HIT:
            self._notify_access(warp, hit=True, vta_hit=None, destination="l1d", now=now)
            return now + self.l1d.hit_latency
        if result.outcome is AccessOutcome.HIT_RESERVED:
            self._merge_or_allocate(warp, block, now, destination="l1d", send=False)
            self._notify_access(warp, hit=False, vta_hit=None, destination="l1d", now=now)
            return None
        # Genuine miss: record the eviction in the VTA, then probe the VTA for
        # lost locality of the missing warp.
        if result.eviction is not None:
            self.vta.record_eviction(result.eviction.owner_wid, result.eviction.tag, warp.wid)
        vta_hit = self.vta.probe(warp.wid, block)
        if vta_hit is not None:
            self.stats.record_vta_hit(vta_hit.wid, vta_hit.evictor_wid)
        self._merge_or_allocate(warp, block, now, destination="l1d", send=True)
        self._notify_access(warp, hit=False, vta_hit=vta_hit, destination="l1d", now=now)
        return None

    def _load_via_shared_cache(self, warp: Warp, block: int, byte_address: int, now: int) -> Optional[int]:
        assert self.shared_cache is not None
        self.stats.redirected_accesses += 1
        self.datapath_mux.route(DatapathMux.SHARED)
        access = self.shared_cache.access(byte_address, warp.wid, is_write=False, now=now)
        if access.hit and not access.reserved_pending:
            self._notify_access(warp, hit=True, vta_hit=None, destination="shared", now=now)
            return now + self.shared_cache.hit_latency
        if access.hit and access.reserved_pending:
            self._merge_or_allocate(warp, block, now, destination="shared", send=False)
            self._notify_access(warp, hit=False, vta_hit=None, destination="shared", now=now)
            return None
        # Miss in the shared cache.
        if access.evicted_block is not None:
            self.vta.record_eviction(access.evicted_owner, access.evicted_block, warp.wid)
        vta_hit = self.vta.probe(warp.wid, block)
        if vta_hit is not None:
            self.stats.record_vta_hit(vta_hit.wid, vta_hit.evictor_wid)
        # Coherence / migration: if the block still lives in the L1D it is
        # evicted into the response queue and pulled into shared memory,
        # hiding the cold miss (Section IV-B).
        if self.l1d.contains(byte_address):
            self.l1d.invalidate(byte_address)
            self.stats.migrations_l1_to_shared += 1
            self._schedule_fill(block, now + self.MIGRATION_LATENCY, destination="shared")
            target = MSHRTarget(wid=warp.wid, request_id=self._next_request_id())
            entry, _ = self.mshr.allocate(block, target, now, destination="shared")
            if entry is not None:
                warp.pending_loads += 1
            self._notify_access(warp, hit=False, vta_hit=vta_hit, destination="shared", now=now)
            return None
        self._merge_or_allocate(warp, block, now, destination="shared", send=True)
        self._notify_access(warp, hit=False, vta_hit=vta_hit, destination="shared", now=now)
        return None

    def _load_bypass(self, warp: Warp, block: int, now: int) -> None:
        """statPCAL-style L1D bypass: fetch straight from L2/DRAM."""
        self.stats.bypassed_accesses += 1
        self._merge_or_allocate(warp, block, now, destination="bypass", send=True)
        self._notify_access(warp, hit=False, vta_hit=None, destination="bypass", now=now)

    def _merge_or_allocate(
        self, warp: Warp, block: int, now: int, *, destination: str, send: bool
    ) -> None:
        target = MSHRTarget(wid=warp.wid, request_id=self._next_request_id())
        entry, is_new = self.mshr.allocate(block, target, now, destination=destination)
        if entry is None:
            # Pre-check should prevent this; treat as an extra-latency retry.
            self.stats.stalls.mshr_full += 1
            return
        warp.pending_loads += 1
        if is_new:
            if not send:
                # Defensive: a reserved line without an outstanding MSHR entry
                # should not happen, but if it does, request the fill anyway so
                # the warp cannot wait forever.
                send = True
            completion = self.memory.read_block(self.sm_id, block, warp.wid, now)
            self._schedule_fill(block, completion, destination=destination)

    # -- stores ---------------------------------------------------------------
    def _issue_store(self, warp: Warp, block: int, now: int, use_shared: bool) -> None:
        byte_address = block * self.l1d.config.line_size
        if use_shared and self.shared_cache is not None:
            self.stats.redirected_accesses += 1
            self.datapath_mux.route(DatapathMux.SHARED)
            self.shared_cache.access(byte_address, warp.wid, is_write=True, now=now)
            self.shared_cache.fill(block, now)
        else:
            self.datapath_mux.route(DatapathMux.L1D)
            self.l1d.access(byte_address, warp.wid, is_write=True, now=now)
        # Global stores are write-through: post to the write queue and L2.
        self.write_queue.push(QueueEntry(block=block, wid=warp.wid, ready_at=now, destination="l2"))
        self.write_queue.pop_ready(now)
        self.memory.write_block(self.sm_id, block, warp.wid, now)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _next_request_id(self) -> int:
        self._request_seq += 1
        return self._request_seq

    def _schedule_fill(self, block: int, time: int, *, destination: str) -> None:
        self._event_seq += 1
        self.events_version += 1
        heapq.heappush(
            self._events,
            _FillEvent(time=int(time), seq=self._event_seq, block=block, destination=destination),
        )

    def _drain_events(self, now: int) -> None:
        events = self._events
        while events and events[0].time <= now:
            self.events_version += 1
            event = heapq.heappop(events)
            self._complete_fill(event, now)

    def _complete_fill(self, event: _FillEvent, now: int) -> None:
        if event.destination == "l1d":
            self.l1d.fill(event.block, now)
        elif event.destination == "shared" and self.shared_cache is not None:
            self.shared_cache.fill(event.block, now)
        entry = self.mshr.fill(event.block)
        if entry is None:
            return
        by_wid = self._warps_by_wid
        for target in entry.targets:
            warp = by_wid.get(target.wid)
            if warp is not None and warp.pending_loads > 0:
                warp.pending_loads -= 1
                if warp.pending_loads == 0 and warp.ready_at < now + 1:
                    warp.ready_at = now + 1
                self._reindex_warp(warp)

    def _warp_by_id(self, wid: int) -> Optional[Warp]:
        """Resident warp with id ``wid`` (single dict lookup).

        Warp ids are unique among resident warps (a freed slot is only
        reassigned after the retiring CTA's warps left ``self.warps``), so a
        fill targeting a retired-and-reused slot resolves to the live warp.
        """
        return self._warps_by_wid.get(wid)

    def _notify_access(self, warp: Warp, *, hit: bool, vta_hit: Optional[VTAHit], destination: str, now: int) -> None:
        notify = self._hooks.notify_global_access
        if notify is not None:
            notify(warp, hit, vta_hit, destination, now)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def active_warp_count(self) -> int:
        """Warps currently allowed to be scheduled (V=1 and not finished)."""
        return sum(1 for w in self.warps if not w.finished and w.active)

    def resident_warp_ids(self) -> list[int]:
        """Warp ids of the currently resident (unfinished) warps."""
        return [w.wid for w in self.warps if not w.finished]

    def total_instructions(self) -> int:
        """Warp instructions issued so far (used for IRS epochs)."""
        return self.stats.instructions_issued

    def _maybe_sample(self) -> None:
        if self.stats.instructions_issued < self._next_sample_at:
            return
        instr = self.stats.instructions_issued
        cycle_delta = max(1, self.cycle - self._last_sample_cycle)
        instr_delta = instr - self._last_sample_instructions
        vta_delta = self.stats.vta_hits - self._last_sample_vta_hits
        ipc = instr_delta * self.config.warp_size / cycle_delta
        self.stats.ipc_series.append(instr, ipc)
        self.stats.active_warp_series.append(instr, float(self.active_warp_count()))
        self.stats.interference_series.append(instr, float(vta_delta))
        self._last_sample_cycle = self.cycle
        self._last_sample_instructions = instr
        self._last_sample_vta_hits = self.stats.vta_hits
        self._next_sample_at += self.config.timeseries_sample_instructions

    def _finalize_stats(self) -> None:
        self.stats.cycles = max(self.cycle, 1)
        self.stats.l1d_hits = self.l1d.stats.hits
        self.stats.l1d_misses = self.l1d.stats.misses
        self.stats.l1d_hit_rate = self.l1d.stats.hit_rate
        if self.shared_cache is not None:
            self.stats.shared_cache_hit_rate = self.shared_cache.stats.hit_rate
            self.stats.shared_cache_accesses = self.shared_cache.stats.accesses
        self.stats.shared_memory_utilization = self.shared_memory.utilization()
        self.stats.l2_hit_rate = self.memory.l2_hit_rate
        self.stats.dram_requests = self.memory.l2.dram.stats.requests
    # NOTE: the historical per-issue-slot full scans (`_issuable_warps` over
    # every resident warp, `_warp_by_id` linear search, O(n) slot pops) were
    # replaced by the incremental structures above; tests/goldens pins the
    # refactor to bit-identical simulation output.
