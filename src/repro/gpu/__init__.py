"""GPU streaming-multiprocessor simulator substrate.

This subpackage provides the warp-level, cycle-approximate GPU model the
CIAO reproduction runs on:

* :mod:`repro.gpu.config` -- the Table I machine configuration.
* :mod:`repro.gpu.instruction` -- the warp instruction model.
* :mod:`repro.gpu.warp` -- per-warp architectural state (including the
  V/I active and isolation flags CIAO adds to the warp list).
* :mod:`repro.gpu.cta` -- cooperative thread arrays, kernels and barriers.
* :mod:`repro.gpu.coalescer` -- the per-instruction memory coalescer.
* :mod:`repro.gpu.stats` -- statistics and time-series collection.
* :mod:`repro.gpu.sm` -- the SM pipeline (issue + LDST unit + event loop).
* :mod:`repro.gpu.gpu` -- a multi-SM machine sharing one L2/DRAM.
"""

from repro.gpu.config import GPUConfig
from repro.gpu.instruction import Instruction, InstructionKind
from repro.gpu.warp import Warp, WarpState
from repro.gpu.cta import CTA, KernelLaunch
from repro.gpu.coalescer import Coalescer
from repro.gpu.stats import SMStats, TimeSeries
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.gpu import GPU, SimulationResult

__all__ = [
    "GPUConfig",
    "Instruction",
    "InstructionKind",
    "Warp",
    "WarpState",
    "CTA",
    "KernelLaunch",
    "Coalescer",
    "SMStats",
    "TimeSeries",
    "StreamingMultiprocessor",
    "GPU",
    "SimulationResult",
]
