"""Per-warp architectural state.

A :class:`Warp` couples an instruction stream (produced by a workload model)
with the scheduling state the SM and the warp schedulers operate on.  Two
single-bit flags mirror the paper's additions to the warp list
(Section IV-A):

* ``active`` -- the V bit.  Schedulers clear it to throttle/stall a warp
  (Best-SWL, CCWS, statPCAL's token logic and CIAO-T all use this).
* ``isolated`` -- the I bit.  When set, CIAO's on-chip memory architecture
  redirects the warp's global memory requests to the shared-memory cache.

A warp is *issuable* when it is not finished, not waiting at a barrier, not
waiting for outstanding loads, not throttled, and its next-ready time has
been reached.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.gpu.instruction import Instruction, InstructionKind

# Hoisted enum members (identity comparison beats frozenset hashing in the
# per-issue bookkeeping path).
_K_LOAD = InstructionKind.LOAD
_K_STORE = InstructionKind.STORE


class WarpState(enum.Enum):
    """Coarse warp lifecycle state (derived, for reporting)."""

    READY = "ready"
    WAITING_MEMORY = "waiting_memory"
    AT_BARRIER = "at_barrier"
    THROTTLED = "throttled"
    FINISHED = "finished"


@dataclass(slots=True)
class Warp:
    """One resident warp on an SM.

    The class uses ``__slots__`` (via ``dataclass(slots=True)``): warps are
    the hottest objects of the simulation and every issue slot reads several
    of their fields, so the dict-free layout measurably reduces both memory
    traffic and attribute-access cost in the SM's inner loop.
    """

    wid: int
    cta_id: int
    instructions: Iterator[Instruction]

    # -- scheduling flags (paper Section IV-A) ------------------------------
    active: bool = True       # V bit: cleared == stalled/throttled by a scheduler
    isolated: bool = False    # I bit: global accesses redirected to shared cache

    # -- execution state -----------------------------------------------------
    finished: bool = False
    pending_loads: int = 0
    #: Outstanding loads allowed before the warp stalls (memory-level
    #: parallelism within one warp; set from the GPU configuration).
    max_pending_loads: int = 4
    at_barrier: bool = False
    ready_at: int = 0
    instructions_issued: int = 0
    global_accesses: int = 0
    last_issue_cycle: int = -1
    assigned_at: int = 0
    #: SM admission sequence number.  Assigned by the SM when the warp
    #: becomes resident; the SM's incremental ready index sorts by it so the
    #: issuable-warp list preserves the historical ``sm.warps`` scan order.
    order: int = 0
    #: Version stamp for the SM's ready-timer heap: bumped on every reindex
    #: so stale heap entries self-invalidate (see sm.py's ready index).
    wait_token: int = 0
    #: Whether the warp currently sits in the SM's ready list (SM-owned).
    in_ready: bool = False

    _peeked: Optional[Instruction] = field(default=None, repr=False)
    _exhausted: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------
    def peek(self) -> Instruction:
        """Return the next instruction without consuming it.

        When the workload stream is exhausted an ``EXIT`` instruction is
        synthesised so every warp terminates cleanly.
        """
        if self._peeked is None:
            if self._exhausted:
                self._peeked = Instruction.exit()
            else:
                try:
                    self._peeked = next(self.instructions)
                except StopIteration:
                    self._exhausted = True
                    self._peeked = Instruction.exit()
        return self._peeked

    def advance(self) -> Instruction:
        """Consume and return the next instruction."""
        instruction = self.peek()
        self._peeked = None
        return instruction

    # ------------------------------------------------------------------
    def is_ready(self, now: int) -> bool:
        """True when the warp could issue, ignoring scheduler throttling.

        Throttling (the V bit) is evaluated separately by the SM because a
        throttled warp is only barred from *global memory* instructions: it
        may still execute ALU work, scratchpad accesses and barriers, which
        both matches how wavefront limiting behaves on real hardware (the
        limited warps are de-prioritised, not frozen mid-CTA) and prevents
        barrier deadlocks in barrier-heavy kernels.
        """
        limit = self.max_pending_loads
        if limit < 1:
            limit = 1
        return (
            not self.finished
            and not self.at_barrier
            and self.pending_loads < limit
            and self.ready_at <= now
        )

    def is_issuable(self, now: int) -> bool:
        """True when the scheduler may issue this warp's next instruction."""
        return self.active and self.is_ready(now)

    def is_resident(self) -> bool:
        """True while the warp has not retired."""
        return not self.finished

    @property
    def state(self) -> WarpState:
        """Derived lifecycle state for reporting."""
        if self.finished:
            return WarpState.FINISHED
        if self.at_barrier:
            return WarpState.AT_BARRIER
        if self.pending_loads > 0:
            return WarpState.WAITING_MEMORY
        if not self.active:
            return WarpState.THROTTLED
        return WarpState.READY

    # ------------------------------------------------------------------
    def note_issue(self, instruction: Instruction, now: int) -> None:
        """Book-keeping when an instruction issues."""
        self.instructions_issued += 1
        self.last_issue_cycle = now
        kind = instruction.kind
        if kind is _K_LOAD or kind is _K_STORE:
            self.global_accesses += 1

    def retire(self) -> None:
        """Mark the warp finished."""
        self.finished = True
        self.active = False
        self.isolated = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Warp(wid={self.wid}, cta={self.cta_id}, state={self.state.value}, "
            f"issued={self.instructions_issued})"
        )
