"""Memory access coalescer.

A warp's global memory instruction carries up to 32 per-lane byte addresses.
The coalescer merges lanes that fall into the same 128-byte block into one
memory transaction, exactly as the hardware does.  The number of resulting
transactions (1 for a fully coalesced access, up to 32 for a fully divergent
one) is the quantity that actually loads the L1D, the MSHRs and the
downstream bandwidth, so the coalescer is where the workload models' access
patterns turn into cache pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.mem.address import BLOCK_SIZE


@dataclass
class CoalescerStats:
    """Coalescing efficiency counters."""

    instructions: int = 0
    transactions: int = 0
    lanes: int = 0
    histogram: dict[int, int] = field(default_factory=dict)

    @property
    def transactions_per_instruction(self) -> float:
        """Average memory transactions generated per memory instruction."""
        return self.transactions / self.instructions if self.instructions else 0.0


class Coalescer:
    """Merge per-lane addresses into unique 128-byte block transactions."""

    def __init__(self) -> None:
        self.stats = CoalescerStats()

    def coalesce(self, addresses: Sequence[int]) -> list[int]:
        """Return the ordered list of distinct blocks touched by ``addresses``.

        Order follows first appearance so that deterministic workloads produce
        deterministic transaction streams.
        """
        if not addresses:
            return []
        if min(addresses) < 0:
            raise ValueError("memory addresses must be non-negative")
        # dict.fromkeys dedups while preserving first-appearance order and
        # runs the whole merge at C speed (this is called once per memory
        # instruction with up to 32 lane addresses).
        blocks = list(dict.fromkeys([address // BLOCK_SIZE for address in addresses]))
        stats = self.stats
        stats.instructions += 1
        stats.transactions += len(blocks)
        stats.lanes += len(addresses)
        stats.histogram[len(blocks)] = stats.histogram.get(len(blocks), 0) + 1
        return blocks

    @staticmethod
    def block_to_byte(block: int) -> int:
        """Base byte address of ``block``."""
        return block * BLOCK_SIZE
