"""Memory access coalescer.

A warp's global memory instruction carries up to 32 per-lane byte addresses.
The coalescer merges lanes that fall into the same 128-byte block into one
memory transaction, exactly as the hardware does.  The number of resulting
transactions (1 for a fully coalesced access, up to 32 for a fully divergent
one) is the quantity that actually loads the L1D, the MSHRs and the
downstream bandwidth, so the coalescer is where the workload models' access
patterns turn into cache pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.mem.address import BLOCK_SIZE, block_address


@dataclass
class CoalescerStats:
    """Coalescing efficiency counters."""

    instructions: int = 0
    transactions: int = 0
    lanes: int = 0
    histogram: dict[int, int] = field(default_factory=dict)

    @property
    def transactions_per_instruction(self) -> float:
        """Average memory transactions generated per memory instruction."""
        return self.transactions / self.instructions if self.instructions else 0.0


class Coalescer:
    """Merge per-lane addresses into unique 128-byte block transactions."""

    def __init__(self) -> None:
        self.stats = CoalescerStats()

    def coalesce(self, addresses: Sequence[int]) -> list[int]:
        """Return the ordered list of distinct blocks touched by ``addresses``.

        Order follows first appearance so that deterministic workloads produce
        deterministic transaction streams.
        """
        if not addresses:
            return []
        seen: dict[int, None] = {}
        for address in addresses:
            if address < 0:
                raise ValueError("memory addresses must be non-negative")
            seen.setdefault(block_address(address), None)
        blocks = list(seen.keys())
        self.stats.instructions += 1
        self.stats.transactions += len(blocks)
        self.stats.lanes += len(addresses)
        self.stats.histogram[len(blocks)] = self.stats.histogram.get(len(blocks), 0) + 1
        return blocks

    @staticmethod
    def block_to_byte(block: int) -> int:
        """Base byte address of ``block``."""
        return block * BLOCK_SIZE
