"""Machine configuration (Table I of the paper).

:class:`GPUConfig` aggregates every architectural knob the experiments vary:
the number of SMs, warp/CTA limits, the L1D and L2 geometries, shared-memory
capacity, DRAM bandwidth, MSHR capacity and VTA geometry.  Named
constructors provide the baseline GTX 480 configuration plus the Figure 12
variants (larger L1D, higher associativity, doubled DRAM bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.mem.cache import CacheConfig
from repro.mem.dram import DRAMConfig
from repro.mem.interconnect import InterconnectConfig
from repro.mem.victim_tag_array import VTAConfig


@dataclass
class GPUConfig:
    """Full machine configuration for a simulation run."""

    # --- SM organisation (Table I: 15 SMs, max 1536 threads per SM) -------
    num_sms: int = 1
    #: Number of SMs on the modelled chip.  When ``num_sms < chip_sms`` the
    #: simulated SMs receive their fair share of the chip's L2 capacity and
    #: DRAM bandwidth, so a single-SM simulation still sees GTX 480-like
    #: per-SM memory pressure.
    chip_sms: int = 15
    warp_size: int = 32
    max_threads_per_sm: int = 1536
    max_ctas_per_sm: int = 8
    issue_width: int = 1

    # --- on-chip memory ----------------------------------------------------
    l1d: CacheConfig = field(default_factory=CacheConfig.l1d_gtx480)
    shared_memory_bytes: int = 48 * 1024
    mshr_entries: int = 32
    mshr_max_merged: int = 8
    #: Outstanding load transactions one warp may have in flight before it
    #: stalls.  Models the memory-level parallelism of independent loads in a
    #: warp's instruction window (loop-unrolled kernels routinely keep
    #: several loads outstanding before a use blocks them).
    max_outstanding_loads_per_warp: int = 4

    # --- off-chip memory ---------------------------------------------------
    l2: CacheConfig = field(default_factory=CacheConfig.l2_gtx480)
    dram: DRAMConfig = field(default_factory=DRAMConfig.gtx480)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)

    # --- interference detection substrate ----------------------------------
    vta: VTAConfig = field(default_factory=VTAConfig)

    # --- simulation control -------------------------------------------------
    max_cycles: int = 2_000_000
    #: Sampling period (in issued instructions) of the time-series stats.
    timeseries_sample_instructions: int = 500

    @property
    def max_warps_per_sm(self) -> int:
        """Maximum resident warps per SM (1536 threads / 32 lanes = 48)."""
        return self.max_threads_per_sm // self.warp_size

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` when broken."""
        if self.num_sms <= 0:
            raise ValueError("need at least one SM")
        if self.warp_size <= 0 or self.max_threads_per_sm % self.warp_size:
            raise ValueError("max_threads_per_sm must be a multiple of warp_size")
        if self.issue_width <= 0:
            raise ValueError("issue width must be positive")
        self.l1d.validate()
        self.l2.validate()
        if self.shared_memory_bytes < 0:
            raise ValueError("shared memory size cannot be negative")

    # ------------------------------------------------------------------
    # Named configurations used by the evaluation section.
    # ------------------------------------------------------------------
    @classmethod
    def gtx480(cls, *, num_sms: int = 1) -> "GPUConfig":
        """Baseline configuration of Table I (16 KB L1D / 48 KB shared)."""
        return cls(num_sms=num_sms)

    @classmethod
    def gtx480_large_l1d(cls, *, num_sms: int = 1) -> "GPUConfig":
        """GTO-cap variant of Fig. 12a: 48 KB L1D, 16 KB shared memory."""
        return cls(
            num_sms=num_sms,
            l1d=CacheConfig.l1d_gtx480(size_kb=48),
            shared_memory_bytes=16 * 1024,
        )

    @classmethod
    def gtx480_8way_l1d(cls, *, num_sms: int = 1) -> "GPUConfig":
        """GTO-8way variant of Fig. 12a: 8-way 16 KB L1D."""
        return cls(num_sms=num_sms, l1d=CacheConfig.l1d_gtx480(associativity=8))

    @classmethod
    def gtx480_2x_dram(cls, *, num_sms: int = 1) -> "GPUConfig":
        """Doubled DRAM bandwidth variant of Fig. 12b."""
        return cls(num_sms=num_sms, dram=DRAMConfig.gtx480_2x())

    def with_overrides(self, **kwargs: object) -> "GPUConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
