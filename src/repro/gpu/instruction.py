"""Warp instruction model.

The simulator is warp-level: one :class:`Instruction` represents one warp
instruction (executed by up to 32 lanes in lock-step).  Only the properties
that matter to warp scheduling and the memory hierarchy are modelled:

* ``ALU`` instructions occupy an issue slot and retire immediately (their
  latency is hidden by the in-order scoreboard only when a dependent memory
  instruction follows, which the workload models fold into instruction
  counts).
* ``LOAD`` / ``STORE`` are *global memory* accesses; they carry the per-lane
  byte addresses which the coalescer merges into 128-byte transactions.
* ``SHARED_LOAD`` / ``SHARED_STORE`` access the program-managed shared
  memory region (scratchpad) of the warp's CTA.
* ``BARRIER`` blocks the warp until every warp of its CTA has arrived.
* ``EXIT`` retires the warp.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence


class InstructionKind(enum.Enum):
    """Kinds of warp instructions the simulator distinguishes."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    SHARED_LOAD = "shared_load"
    SHARED_STORE = "shared_store"
    BARRIER = "barrier"
    EXIT = "exit"


#: Kinds that access global memory through the L1D (or CIAO's shared cache).
GLOBAL_MEMORY_KINDS = frozenset({InstructionKind.LOAD, InstructionKind.STORE})

#: Kinds that access the program-managed scratchpad.
SHARED_MEMORY_KINDS = frozenset({InstructionKind.SHARED_LOAD, InstructionKind.SHARED_STORE})


@dataclass(frozen=True, slots=True)
class Instruction:
    """One warp instruction.

    Instances are allocated once per simulated warp instruction (millions per
    run), so the class is slotted to keep construction and attribute access
    cheap.

    Attributes
    ----------
    kind:
        The instruction kind.
    addresses:
        For global memory instructions: per-lane byte addresses (1..32
        entries; already-coalesced workloads may provide one address per
        distinct 128-byte block).  For shared-memory instructions: per-lane
        byte offsets within the CTA's scratchpad allocation.
    latency:
        Extra execution latency for ALU instructions (transcendentals etc.);
        ignored for memory instructions whose latency is determined by the
        memory system.
    """

    kind: InstructionKind
    addresses: tuple[int, ...] = field(default_factory=tuple)
    latency: int = 1

    def __post_init__(self) -> None:
        if self.kind in GLOBAL_MEMORY_KINDS or self.kind in SHARED_MEMORY_KINDS:
            if not self.addresses:
                raise ValueError(f"{self.kind.value} instruction needs at least one address")
        if self.latency < 0:
            raise ValueError("latency cannot be negative")

    # -- convenience constructors -------------------------------------------
    # Address-free instructions are immutable and carry no per-issue state,
    # so the constructors below hand out interned instances: a workload
    # stream emits millions of ALU instructions and one object serves them
    # all.
    @staticmethod
    def alu(latency: int = 1) -> "Instruction":
        """An arithmetic instruction."""
        instruction = _ALU_CACHE.get(latency)
        if instruction is None:
            instruction = Instruction(InstructionKind.ALU, latency=latency)
            _ALU_CACHE[latency] = instruction
        return instruction

    @staticmethod
    def load(addresses: Sequence[int]) -> "Instruction":
        """A global load touching the given per-lane byte addresses."""
        return Instruction(InstructionKind.LOAD, addresses=tuple(addresses))

    @staticmethod
    def store(addresses: Sequence[int]) -> "Instruction":
        """A global store touching the given per-lane byte addresses."""
        return Instruction(InstructionKind.STORE, addresses=tuple(addresses))

    @staticmethod
    def shared_load(offsets: Sequence[int]) -> "Instruction":
        """A scratchpad load at the given per-lane byte offsets."""
        return Instruction(InstructionKind.SHARED_LOAD, addresses=tuple(offsets))

    @staticmethod
    def shared_store(offsets: Sequence[int]) -> "Instruction":
        """A scratchpad store at the given per-lane byte offsets."""
        return Instruction(InstructionKind.SHARED_STORE, addresses=tuple(offsets))

    @staticmethod
    def barrier() -> "Instruction":
        """A CTA-wide barrier."""
        return _BARRIER_SINGLETON

    @staticmethod
    def exit() -> "Instruction":
        """Warp termination."""
        return _EXIT_SINGLETON

    # -- classification -------------------------------------------------------
    @property
    def is_global_memory(self) -> bool:
        """True for global LOAD / STORE."""
        return self.kind in GLOBAL_MEMORY_KINDS

    @property
    def is_shared_memory(self) -> bool:
        """True for scratchpad accesses."""
        return self.kind in SHARED_MEMORY_KINDS

    @property
    def is_memory(self) -> bool:
        """True for any memory access."""
        return self.is_global_memory or self.is_shared_memory

    @property
    def is_load(self) -> bool:
        """True for global or shared loads."""
        return self.kind in (InstructionKind.LOAD, InstructionKind.SHARED_LOAD)

    @property
    def is_store(self) -> bool:
        """True for global or shared stores."""
        return self.kind in (InstructionKind.STORE, InstructionKind.SHARED_STORE)


#: Interned address-free instructions (see the constructor notes above).
_ALU_CACHE: dict[int, Instruction] = {}
_BARRIER_SINGLETON = Instruction(InstructionKind.BARRIER)
_EXIT_SINGLETON = Instruction(InstructionKind.EXIT)
