"""CIAO reproduction library.

A warp-level GPU simulator plus the Cache Interference-Aware
throughput-Oriented (CIAO) on-chip memory architecture and warp scheduling
from Zhang et al., IPDPS 2018, together with the baselines (GTO, CCWS,
Best-SWL, statPCAL) and the workload models and experiment harness needed to
regenerate every table and figure of the paper's evaluation.

Quickstart::

    from repro import quick_run

    result = quick_run("ATAX", "ciao-c")
    print(result.ipc)

See ``examples/quickstart.py`` and README.md for more.
"""

from repro.version import __version__

__all__ = ["__version__", "quick_run"]


def quick_run(benchmark: str, scheduler: str = "gto", **kwargs):
    """Run one benchmark under one scheduler with small default sizing.

    This is a convenience wrapper around
    :func:`repro.harness.runner.run_benchmark`; see that function for the
    full parameter list.  ``backend="lockstep"`` (or ``REPRO_BACKEND``)
    selects the cycle-level multi-SM engine; see :mod:`repro.api` and
    :mod:`repro.backends` for the full typed API.
    """
    from repro.harness.runner import run_benchmark

    return run_benchmark(benchmark, scheduler, **kwargs)
