"""A small generic name registry with aliases and metadata.

Schedulers, benchmarks and simulation backends are all looked up by
case-insensitive name from several layers (the harness, the CLI, cache-key
derivation).  Before this module each of those registries hand-rolled its
own alias table and error messages; :class:`Registry` centralises the
behaviour and, more importantly, gives out-of-tree code a supported
``register()`` hook so new schedulers / benchmarks / backends can be added
without editing the in-tree registry modules::

    from repro.sched.registry import register_scheduler

    register_scheduler("my-policy", MyScheduler, aliases=("my_policy",))

Lookups are case-insensitive; every registered alias resolves to the
canonical (registration) name, which is what cache keys and results record.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional


class Registry:
    """Name -> value mapping with aliases, metadata and ordered listing."""

    def __init__(self, kind: str) -> None:
        #: Human-readable kind used in error messages ("scheduler", ...).
        self.kind = kind
        self._values: dict[str, Any] = {}
        self._meta: dict[str, dict[str, Any]] = {}
        self._lookup: dict[str, str] = {}  # lowered name/alias -> canonical
        self._order: list[str] = []

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        value: Any,
        *,
        aliases: Iterable[str] = (),
        meta: Optional[Mapping[str, Any]] = None,
        replace: bool = False,
    ) -> Any:
        """Register ``value`` under ``name`` (and ``aliases``); returns ``value``.

        Re-registering an existing name (or colliding with another entry's
        alias) raises ``ValueError`` unless ``replace`` is true, so typos
        cannot silently shadow built-ins.
        """
        keys = [str(name).lower()] + [str(a).lower() for a in aliases]
        if not replace:
            for key in keys:
                if key in self._lookup:
                    raise ValueError(
                        f"{self.kind} {key!r} is already registered "
                        f"(to {self._lookup[key]!r}); pass replace=True to override"
                    )
        if name not in self._values:
            self._order.append(name)
        self._values[name] = value
        self._meta[name] = dict(meta or {})
        for key in keys:
            self._lookup[key] = name
        return value

    def unregister(self, name: str) -> Any:
        """Remove an entry (and all its aliases); returns the stored value.

        Mainly for tests and plugins that shadow a built-in temporarily.
        """
        canonical = self.canonical(name)
        value = self._values.pop(canonical)
        self._meta.pop(canonical, None)
        self._order.remove(canonical)
        self._lookup = {k: v for k, v in self._lookup.items() if v != canonical}
        return value

    # ------------------------------------------------------------------
    def canonical(self, name: str) -> str:
        """Resolve a name or alias to the canonical registered name."""
        try:
            return self._lookup[str(name).lower()]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; expected one of {self.names()}"
            ) from None

    def get(self, name: str) -> Any:
        """Return the registered value for ``name`` (or one of its aliases)."""
        return self._values[self.canonical(name)]

    def meta(self, name: str) -> dict[str, Any]:
        """Metadata dict attached at registration time."""
        return self._meta[self.canonical(name)]

    def names(self) -> tuple[str, ...]:
        """Canonical names in registration order."""
        return tuple(self._order)

    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._lookup

    def __len__(self) -> int:
        return len(self._order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {self.names()})"
