"""Analysis helpers: metrics, and the area / power overhead models.

* :mod:`repro.analysis.metrics` -- derived metrics (speedups, class
  geometric means, interference summaries).
* :mod:`repro.analysis.area` -- a CACTI-style first-order area model for the
  hardware CIAO adds (Section V-F).
* :mod:`repro.analysis.power` -- a GPUWattch-style first-order power model
  for the same structures.
"""

from repro.analysis.metrics import (
    class_geomeans,
    normalized_ipc_table,
    speedup_summary,
)
from repro.analysis.area import AreaModel, CIAO_AREA_REPORT
from repro.analysis.power import PowerModel, CIAO_POWER_REPORT

__all__ = [
    "class_geomeans",
    "normalized_ipc_table",
    "speedup_summary",
    "AreaModel",
    "CIAO_AREA_REPORT",
    "PowerModel",
    "CIAO_POWER_REPORT",
]
