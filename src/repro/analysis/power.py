"""First-order power model for the CIAO additions (Section V-F).

The paper uses GPUWattch and reports ~79 mW average power for the new
components, i.e. about 0.3% of the GTX 480's power.  GPUWattch is not
available offline, so this model distributes the published 79 mW anchor over
the added structures proportionally to their activity:

* VTA probes / insertions (one per L1D miss / eviction),
* interference list and pair list updates (one per VTA hit),
* IRS evaluations (one per epoch boundary),
* address translations and datapath-mux switches (one per redirected access).

The absolute numbers inherit the paper's anchor; the *relative* scaling with
simulated activity counts is what the tests and the overhead bench exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper anchor: average added power for the default configuration (mW).
PAPER_TOTAL_MW = 79.0
#: GTX 480 TDP in watts (for the ~0.3% claim).
GTX480_TDP_W = 250.0

#: Relative energy weights of the event classes (sums to 1.0 for the
#: paper-default activity mix).
_WEIGHTS = {
    "vta": 0.45,
    "lists": 0.15,
    "irs": 0.10,
    "translation": 0.30,
}


@dataclass
class PowerModel:
    """Activity-proportional power estimate for the CIAO hardware."""

    num_sms: int = 15

    def estimate(
        self,
        *,
        vta_events_per_kcycle: float = 20.0,
        list_updates_per_kcycle: float = 5.0,
        irs_checks_per_kcycle: float = 0.5,
        redirections_per_kcycle: float = 10.0,
    ) -> dict[str, float]:
        """Estimate added power (mW) for the given per-SM activity rates.

        The paper-default rates (the keyword defaults) reproduce the 79 mW
        anchor; other rates scale each component linearly.
        """
        reference = {
            "vta": 20.0,
            "lists": 5.0,
            "irs": 0.5,
            "translation": 10.0,
        }
        actual = {
            "vta": vta_events_per_kcycle,
            "lists": list_updates_per_kcycle,
            "irs": irs_checks_per_kcycle,
            "translation": redirections_per_kcycle,
        }
        sm_scale = self.num_sms / 15.0
        components = {}
        for key, weight in _WEIGHTS.items():
            base = PAPER_TOTAL_MW * weight
            ratio = actual[key] / reference[key] if reference[key] else 0.0
            components[f"{key}_mw"] = base * ratio * sm_scale
        total = sum(components.values())
        components["total_mw"] = total
        components["fraction_of_tdp"] = total / (GTX480_TDP_W * 1000.0)
        return components

    def from_stats(self, stats, cycles: int) -> dict[str, float]:
        """Estimate power from an :class:`repro.gpu.stats.SMStats` object."""
        kcycles = max(1.0, cycles / 1000.0)
        return self.estimate(
            vta_events_per_kcycle=(stats.l1d_misses + stats.vta_hits) / kcycles,
            list_updates_per_kcycle=stats.vta_hits / kcycles,
            irs_checks_per_kcycle=stats.instructions_issued / 5000.0 / kcycles,
            redirections_per_kcycle=stats.redirected_accesses / kcycles,
        )


#: The default (paper-configuration) power report.
CIAO_POWER_REPORT = PowerModel().estimate()
