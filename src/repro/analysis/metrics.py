"""Derived metrics over simulation results.

These helpers turn the raw ``{benchmark: {scheduler: SimulationResult}}``
dictionaries produced by :func:`repro.harness.runner.run_many` into the
quantities the paper's figures report: IPC normalised to GTO, per-class
geometric means, and interference summaries.
"""

from __future__ import annotations

from typing import Mapping

from repro.gpu.gpu import SimulationResult
from repro.harness.reporting import geometric_mean
from repro.workloads.registry import get_benchmark
from repro.workloads.spec import WorkloadClass

ResultGrid = Mapping[str, Mapping[str, SimulationResult]]


def normalized_ipc_table(results: ResultGrid, baseline: str = "gto") -> dict[str, dict[str, float]]:
    """Normalise every scheduler's IPC to ``baseline`` per benchmark."""
    table: dict[str, dict[str, float]] = {}
    for benchmark, per_sched in results.items():
        base = per_sched[baseline].ipc if baseline in per_sched else 0.0
        if base <= 0:
            table[benchmark] = {sched: 0.0 for sched in per_sched}
            continue
        table[benchmark] = {sched: res.ipc / base for sched, res in per_sched.items()}
    return table


def speedup_summary(results: ResultGrid, baseline: str = "gto") -> dict[str, float]:
    """Geometric-mean speedup over ``baseline`` for every scheduler."""
    normalized = normalized_ipc_table(results, baseline)
    schedulers = {sched for row in normalized.values() for sched in row}
    return {
        sched: geometric_mean(row[sched] for row in normalized.values() if sched in row)
        for sched in sorted(schedulers)
    }


def class_geomeans(results: ResultGrid, baseline: str = "gto") -> dict[str, dict[str, float]]:
    """Per working-set class geometric means of normalised IPC (Fig. 8a bars)."""
    normalized = normalized_ipc_table(results, baseline)
    by_class: dict[str, dict[str, list[float]]] = {
        cls.name: {} for cls in WorkloadClass
    }
    for benchmark, row in normalized.items():
        cls = get_benchmark(benchmark).workload_class.name
        for sched, value in row.items():
            by_class[cls].setdefault(sched, []).append(value)
    return {
        cls: {sched: geometric_mean(vals) for sched, vals in per_sched.items()}
        for cls, per_sched in by_class.items()
        if per_sched
    }


def interference_summary(result: SimulationResult, top_n: int = 10) -> dict[str, object]:
    """Summarise interference observed in one run (Figures 1a / 4a / 4b)."""
    stats = result.sm0
    pairs = stats.interference_pairs()[:top_n]
    minimum, maximum = stats.interference_extremes()
    return {
        "total_vta_hits": stats.vta_hits,
        "top_pairs": pairs,
        "min_interference": minimum,
        "max_interference": maximum,
        "per_warp_vta_hits": dict(stats.per_warp_vta_hits),
    }


def tenant_slowdowns(
    colocated: SimulationResult,
    isolated: Mapping[str, SimulationResult],
) -> dict[str, dict[str, float]]:
    """Per-tenant interference metrics of a co-located run vs isolated runs.

    ``colocated`` is a multi-tenant lock-step result (``per_tenant`` filled);
    ``isolated`` maps each tenant name to that tenant's isolated baseline —
    the same kernel on the same SM partition of the *same-sized* machine,
    with every other SM idle (see
    :meth:`repro.api.MultiTenantRequest.isolated_request`).  Hardware (L2
    capacity, DRAM bandwidth) is identical in both runs, so ``slowdown`` is
    pure inter-tenant contention: cycles co-located / cycles isolated, > 1.0
    when neighbours genuinely hurt.

    ``conflict_share`` attributes the run's ``inter_sm_dram_conflicts`` to
    the tenant whose requests queued (shares sum to 1.0 when any occurred).

    Cycle counts are the tenant's *busy span* — finish cycle minus launch
    cycle — so staggered launches (``TenantSpec.launch_cycle > 0``) compare
    like for like: the isolated baseline carries the same launch offset and
    the dormant prefix cancels out of the ratio.  For simultaneous launches
    the span equals the finish cycle, the pre-stagger definition.
    """
    total_conflicts = sum(
        t.inter_sm_dram_conflicts for t in colocated.per_tenant.values()
    )
    report: dict[str, dict[str, float]] = {}
    for name, tenant in colocated.per_tenant.items():
        baseline = isolated[name]
        base_tenant = baseline.per_tenant.get(name)
        if base_tenant is not None:
            isolated_cycles = base_tenant.finish_cycle - base_tenant.launch_cycle
        else:
            # Single-kernel baseline (no tenant breakdown): the machine
            # clock, which launches at cycle 0.
            isolated_cycles = max((s.cycles for s in baseline.per_sm), default=0)
        colocated_cycles = tenant.finish_cycle - tenant.launch_cycle
        report[name] = {
            "colocated_cycles": float(colocated_cycles),
            "isolated_cycles": float(isolated_cycles),
            "slowdown": (
                colocated_cycles / isolated_cycles if isolated_cycles else 0.0
            ),
            "colocated_ipc": tenant.ipc,
            "isolated_ipc": baseline.ipc,
            "inter_sm_dram_conflicts": float(tenant.inter_sm_dram_conflicts),
            "conflict_share": (
                tenant.inter_sm_dram_conflicts / total_conflicts
                if total_conflicts
                else 0.0
            ),
        }
    return report


def shared_memory_utilization_by_class(results: ResultGrid) -> dict[str, float]:
    """Average shared-memory utilisation per class (Fig. 8b) for CIAO runs."""
    sums: dict[str, list[float]] = {}
    for benchmark, per_sched in results.items():
        cls = get_benchmark(benchmark).workload_class.name
        for sched, res in per_sched.items():
            if sched.startswith("ciao"):
                sums.setdefault(cls, []).append(res.sm0.shared_memory_utilization)
    return {cls: sum(vals) / len(vals) for cls, vals in sums.items() if vals}
