"""First-order area model for the hardware CIAO adds (Section V-F).

The paper uses CACTI 6.0 to size the added SRAM structures and reports:

* one VTA structure: 0.65 mm^2 for 15 SMs (0.12% of the GTX 480's 529 mm^2),
* VTA-hit counters + interference list + pair list: 549 um^2 per SM
  (8235 um^2 for 15 SMs),
* Eq. 1 arithmetic: ~2112 gates; shared-memory modifications (translation
  unit, multiplexer, MSHR extension): ~4500 gates and 64 B of storage per SM,
* total: < 2% of chip area and ~79 mW of power.

CACTI itself is not available offline, so this model combines the paper's
published anchor points with simple per-bit and per-gate scaling, which is
enough to (1) regenerate the overhead table and (2) let tests check that the
overhead stays far below the 2% claim for reasonable configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: GTX 480 die area in mm^2 (paper cites 529 mm^2).
GTX480_DIE_MM2 = 529.0
#: Number of SMs on the chip.
GTX480_SMS = 15

#: Anchor: a 15-SM VTA structure (8 entries x 48 warps x 31 bits per SM).
_VTA_BITS_PER_SM = 8 * 48 * 31
_VTA_AREA_MM2_15SM = 0.65
#: Derived SRAM density anchor in mm^2 per bit (includes peripheral overhead).
SRAM_MM2_PER_BIT = _VTA_AREA_MM2_15SM / (GTX480_SMS * _VTA_BITS_PER_SM)

#: Logic density anchor: the paper's 2112-gate IRS unit is a rounding error
#: on a 529 mm^2 die; we model a 40 nm gate (incl. wiring) at ~1.5 um^2.
GATE_MM2 = 1.5e-6


@dataclass
class AreaModel:
    """Area estimate of the CIAO additions for a given configuration."""

    num_sms: int = GTX480_SMS
    num_warps: int = 48
    vta_entries_per_warp: int = 8
    vta_tag_bits: int = 25
    wid_bits: int = 6
    saturating_counter_bits: int = 2
    vta_hit_counter_bits: int = 32
    irs_unit_gates: int = 2112
    shared_memory_mod_gates: int = 4500
    shared_memory_mod_storage_bytes: int = 64

    # -- per-structure areas (mm^2, whole chip) -----------------------------
    def vta_area(self) -> float:
        """Victim tag array area across all SMs."""
        bits = self.vta_entries_per_warp * self.num_warps * (self.vta_tag_bits + self.wid_bits)
        return bits * SRAM_MM2_PER_BIT * self.num_sms

    def detector_lists_area(self) -> float:
        """Interference list + pair list + VTA-hit counters across all SMs."""
        interference_bits = self.num_warps * (self.wid_bits + self.saturating_counter_bits)
        pair_bits = self.num_warps * 2 * self.wid_bits
        counter_bits = self.num_warps * self.vta_hit_counter_bits
        bits = interference_bits + pair_bits + counter_bits
        return bits * SRAM_MM2_PER_BIT * self.num_sms

    def logic_area(self) -> float:
        """IRS arithmetic + shared-memory datapath modifications."""
        gates = self.irs_unit_gates + self.shared_memory_mod_gates
        storage_bits = self.shared_memory_mod_storage_bytes * 8
        return (gates * GATE_MM2 + storage_bits * SRAM_MM2_PER_BIT) * self.num_sms

    def total_area(self) -> float:
        """Total added area in mm^2."""
        return self.vta_area() + self.detector_lists_area() + self.logic_area()

    def fraction_of_die(self, die_mm2: float = GTX480_DIE_MM2) -> float:
        """Added area as a fraction of the die."""
        return self.total_area() / die_mm2

    def report(self) -> dict[str, float]:
        """Structured overhead report (the Section V-F table)."""
        return {
            "vta_mm2": self.vta_area(),
            "detector_lists_mm2": self.detector_lists_area(),
            "logic_mm2": self.logic_area(),
            "total_mm2": self.total_area(),
            "fraction_of_die": self.fraction_of_die(),
        }


#: The default (paper-configuration) overhead report.
CIAO_AREA_REPORT = AreaModel().report()
