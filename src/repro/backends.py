"""``repro.backends`` — pluggable execution engines behind one protocol.

A *backend* turns a :class:`repro.api.SimulationRequest` into a
:class:`repro.gpu.gpu.SimulationResult`.  Three real engines ship in-tree:

``reference``
    The original serialized-SM loop (:meth:`repro.gpu.gpu.GPU.run`): SMs are
    simulated one after another against the shared memory subsystem.  Exact
    for the paper's per-SM mechanisms, underestimates inter-SM contention.
``lockstep``
    Cycle-by-cycle multi-SM execution (:func:`repro.gpu.lockstep.run_lockstep`):
    all SMs advance against one global clock, so simultaneous DRAM bursts
    genuinely queue behind each other.  Bit-for-bit identical to
    ``reference`` for single-SM runs.
``vector``
    The numpy-batched warp engine (:mod:`repro.gpu.vector`): workload
    streams are extracted once into trace arrays and greedy warp stretches
    issue in batched steps.  Bit-for-bit identical to ``reference`` (pinned
    against the golden fixtures) at several times its throughput.  Requires
    numpy (``pip install repro-ciao[vector]``); the engine is always
    *registered*, but selecting it without numpy raises
    :class:`BackendUnavailableError` (see :func:`backend_availability`).

Selection precedence: an explicit ``backend=`` argument (or
``SimulationRequest.backend``) > the ``REPRO_BACKEND`` environment variable
> ``"reference"``.

Out-of-tree engines register through :func:`register_backend`::

    from repro.backends import register_backend

    class VectorizedBackend:
        name = "numpy"
        def execute(self, request):
            ...

    register_backend("numpy", VectorizedBackend)
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

from dataclasses import replace

from repro.gpu.gpu import GPU, SimulationResult, TenantPlan
from repro.gpu.lockstep import run_lockstep, run_multi_tenant
from repro.registry import Registry
from repro.sched.registry import (
    canonical_scheduler_name,
    scheduler_factory,
    uses_shared_cache,
)
from repro.workloads.synthetic import SyntheticKernelModel, isolate_address_space

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import MultiTenantRequest, SimulationRequest

#: Environment variable naming the default backend for requests that do not
#: pin one explicitly.
BACKEND_ENV = "REPRO_BACKEND"

#: The engine used when neither the request nor the environment chooses.
DEFAULT_BACKEND = "reference"


class BackendUnavailableError(RuntimeError):
    """A registered backend cannot run here (missing optional dependency).

    Raised at *selection* time (:func:`get_backend`), not at import time:
    ``import repro`` always works, the registry always lists the backend,
    and the error explains what to install to use it.
    """

    def __init__(self, name: str, reason: str) -> None:
        super().__init__(f"backend {name!r} is unavailable: {reason}")
        self.backend = name
        self.reason = reason


@runtime_checkable
class Backend(Protocol):
    """The execution-engine seam: one method, one canonical job descriptor.

    Engines may additionally implement ``execute_batch(requests) ->
    list[SimulationResult]`` to receive a whole batch in one call —
    :func:`repro.api.run_batch` uses it when present so per-kernel setup
    (the ``vector`` engine's trace interning) is amortised across the batch.
    Results must equal ``[execute(r) for r in requests]`` request for
    request; failures should raise :class:`repro.api.BatchExecutionError`.
    """

    #: Canonical registry name, recorded on every result this engine produces.
    name: str

    def execute(self, request: "SimulationRequest") -> SimulationResult:
        """Run ``request`` to completion and return its result."""
        ...  # pragma: no cover - protocol


# ---------------------------------------------------------------------------
# Request materialisation shared by the in-tree engines
# ---------------------------------------------------------------------------
def materialize_model(request: "SimulationRequest"):
    """Canonicalise ``request`` and build its kernel model.

    Returns ``(canonical request, scheduler name, kernel model, kernel
    launch, run config)`` — the engine-independent half of request
    materialisation, shared by :func:`materialize` and backends that
    construct their own machine (the ``vector`` engine needs the model to
    key its trace intern cache).
    """
    request = request.canonicalize()
    spec = request.spec()
    config = request.run_config
    model = SyntheticKernelModel(
        spec,
        scale=config.scale,
        seed=config.seed,
        num_ctas=config.num_ctas,
        warps_per_cta=config.warps_per_cta,
    )
    kernel = model.kernel_launch()
    scheduler = canonical_scheduler_name(request.scheduler)
    return request, scheduler, model, kernel, config


def materialize(request: "SimulationRequest"):
    """Build the concrete (scheduler name, kernel, GPU, run config) of a request.

    Canonicalises the request first, so aliases ("ciao_c", "LockStep") can
    never yield a different machine than their canonical spellings.
    """
    request, scheduler, _model, kernel, config = materialize_model(request)
    gpu = GPU(
        config.gpu_config,
        scheduler_factory=scheduler_factory(scheduler, **request.scheduler_kwargs()),
        enable_shared_cache=uses_shared_cache(scheduler),
        dram_bandwidth_scale=config.dram_bandwidth_scale,
    )
    return scheduler, kernel, gpu, config


def materialize_tenants(request: "MultiTenantRequest"):
    """Build the concrete (tenant plans, GPU, run config) of a co-located job.

    Canonicalises (and therefore validates) the request, materialises each
    tenant's kernel and scheduler factory, and constructs the shared machine
    with ``num_sms`` *derived from the partition* — everything else in
    ``run_config.gpu_config`` applies machine-wide.
    """
    request = request.canonicalize()
    config = request.run_config
    plans: list[TenantPlan] = []
    for tenant in request.tenants:
        spec = tenant.spec()
        model = SyntheticKernelModel(
            spec,
            scale=config.scale,
            seed=config.seed,
            num_ctas=config.num_ctas,
            warps_per_cta=config.warps_per_cta,
        )
        kernel = model.kernel_launch()
        kernel = replace(
            kernel,
            tenant=tenant.name,
            stream_factory=isolate_address_space(
                kernel.stream_factory, tenant.address_space
            ),
        )
        plans.append(
            TenantPlan(
                name=tenant.name,
                kernel=kernel,
                scheduler_factory=scheduler_factory(
                    tenant.scheduler, **tenant.scheduler_kwargs(config)
                ),
                sm_ids=tuple(tenant.sm_ids),
                scheduler_name=tenant.scheduler,
                enable_shared_cache=uses_shared_cache(tenant.scheduler),
                launch_cycle=tenant.launch_cycle,
            )
        )
    gpu = GPU(
        config.gpu_config.with_overrides(num_sms=request.machine_sms()),
        scheduler_factory=plans[0].scheduler_factory,
        dram_bandwidth_scale=config.dram_bandwidth_scale,
    )
    return plans, gpu, config


def _is_multi_tenant(request) -> bool:
    from repro.api import MultiTenantRequest

    return isinstance(request, MultiTenantRequest)


class ReferenceBackend:
    """The serialized per-SM execution loop (the original engine)."""

    name = "reference"

    def execute(self, request: "SimulationRequest") -> SimulationResult:
        if _is_multi_tenant(request):
            raise ValueError(
                "the 'reference' backend simulates SMs one after another and "
                "cannot co-locate tenants; run multi-tenant requests on the "
                "'lockstep' backend"
            )
        scheduler, kernel, gpu, config = materialize(request)
        return gpu.run(kernel, max_cycles=config.max_cycles, scheduler_name=scheduler)


class LockstepBackend:
    """Cycle-by-cycle multi-SM execution against the shared L2/DRAM."""

    name = "lockstep"

    def execute(self, request: "SimulationRequest") -> SimulationResult:
        if _is_multi_tenant(request):
            plans, gpu, config = materialize_tenants(request)
            return run_multi_tenant(gpu, plans, max_cycles=config.max_cycles)
        scheduler, kernel, gpu, config = materialize(request)
        return run_lockstep(
            gpu, kernel, max_cycles=config.max_cycles, scheduler_name=scheduler
        )


def _load_vector_backend():
    """Import hook for the numpy-gated engine (monkeypatched by tests)."""
    from repro.gpu.vector.backend import VectorBackend

    return VectorBackend


#: Human instruction appended to the ``vector`` unavailability message.
_VECTOR_INSTALL_HINT = "numpy is not installed (pip install 'repro-ciao[vector]')"


def _make_vector_backend():
    """Instantiate the ``vector`` engine, or explain why it cannot run."""
    try:
        backend_cls = _load_vector_backend()
    except ImportError as exc:
        # Distinguish "numpy absent" (the expected optional-extra case, with
        # its install hint) from a numpy/package that exists but fails to
        # import — pointing the latter at pip would mislead.
        if getattr(exc, "name", None) == "numpy":
            reason = _VECTOR_INSTALL_HINT
        else:
            reason = f"import failed: {exc}"
        raise BackendUnavailableError("vector", reason) from exc
    return backend_cls()


def _make_chaos_backend():
    """Instantiate the fault-injecting wrapper engine (needs an active plan).

    The ``chaos`` backend (:mod:`repro.harness.faults`) delegates to a real
    engine but injects failures/hangs/crashes from a seeded schedule.  Like
    ``vector`` it is always *registered*; selecting it without a configured
    :class:`~repro.harness.faults.FaultPlan` raises
    :class:`BackendUnavailableError` explaining how to configure one, so
    ``repro list --backends`` reports it honestly instead of crashing.
    """
    from repro.harness.faults import ChaosBackend, ChaosUnconfiguredError

    try:
        return ChaosBackend()
    except ChaosUnconfiguredError as exc:
        raise BackendUnavailableError("chaos", str(exc)) from exc


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: Registry = Registry("backend")


def register_backend(name, factory, *, aliases=(), replace=False):
    """Register an execution engine; ``factory()`` must yield a :class:`Backend`."""
    return _REGISTRY.register(name, factory, aliases=aliases, replace=replace)


register_backend("reference", ReferenceBackend, aliases=("serial", "serialized"))
register_backend("lockstep", LockstepBackend, aliases=("lock-step", "lock_step"))
register_backend("vector", _make_vector_backend, aliases=("numpy", "vectorized"))
register_backend("chaos", _make_chaos_backend, aliases=("fault", "faults"))


def backend_names() -> tuple[str, ...]:
    """Canonical names of every registered backend."""
    return _REGISTRY.names()


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Resolve ``name`` (or the environment / default) to a canonical name.

    Raises ``KeyError`` for unknown backends, naming the known ones.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    return _REGISTRY.canonical(name)


def get_backend(name: Optional[str] = None) -> Backend:
    """Instantiate the backend selected by ``name`` / ``REPRO_BACKEND``.

    Raises :class:`BackendUnavailableError` when the engine is registered
    but cannot run in this environment (e.g. ``vector`` without numpy).
    """
    return _REGISTRY.get(resolve_backend_name(name))()


def backend_availability() -> dict[str, Optional[str]]:
    """``{canonical name: None | reason-string}`` for every backend.

    ``None`` means the engine instantiates here; a string is the
    human-readable reason it cannot (surfaced by ``repro list --backends``).
    """
    availability: dict[str, Optional[str]] = {}
    for name in _REGISTRY.names():
        try:
            _REGISTRY.get(name)()
        except BackendUnavailableError as exc:
            availability[name] = exc.reason
        except Exception as exc:  # a third-party factory may raise anything
            # Listing backends must never crash `repro list`: report the
            # engine as unavailable with the raw cause instead.
            availability[name] = f"{type(exc).__name__}: {exc}"
        else:
            availability[name] = None
    return availability
