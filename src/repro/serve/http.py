"""Minimal stdlib HTTP/1.1 plumbing shared by ``repro serve`` and ``repro
worker``.

Extracted from :mod:`repro.serve.server` so the distributed sweep layer
(:mod:`repro.harness.distributed`) can reuse the exact same parser and
response writer without dragging in the serving stack (coalescer, batch
queue, stats).  The contract is deliberately tiny: one request per
connection, ``Content-Length`` bodies only, canonical JSON responses.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

#: Upper bound on accepted request bodies (a wire-form request is a few KB;
#: a full request *batch* a few hundred).
MAX_BODY_BYTES = 8 * 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def canonical_json(payload: Any) -> bytes:
    """The one JSON rendering every response path shares (byte-stable)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


@dataclass
class HttpRequest:
    """One parsed (minimal) HTTP/1.1 request."""

    method: str
    path: str
    query: str
    headers: Mapping[str, str]
    body: bytes


async def read_http_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request from ``reader`` (``None`` on immediate EOF)."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ValueError(f"malformed request line: {line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ValueError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > 100:
            raise ValueError("too many headers")
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ValueError("malformed Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ValueError(f"unacceptable Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    path, _, query = target.partition("?")
    return HttpRequest(method.upper(), path, query, headers, body)


async def respond(writer, status: int, payload, *, extra_headers=()) -> None:
    """Write one JSON (or pre-encoded bytes) response and flush it."""
    body = payload if isinstance(payload, bytes) else canonical_json(payload)
    head = (
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
    )
    for name, value in extra_headers:
        head += f"{name}: {value}\r\n"
    head += "\r\n"
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
