"""The ``repro serve`` daemon: simulation-as-a-service over HTTP/JSON.

A stdlib-only front end (raw ``asyncio.start_server`` + a minimal HTTP/1.1
parser — no new dependencies) that turns the library into a long-lived
service.  One :class:`ReproService` wires the existing pieces together:

* requests arrive as the existing versioned wire forms
  (:meth:`repro.api.SimulationRequest.from_dict` /
  :meth:`repro.api.MultiTenantRequest.from_dict`) on ``POST /simulate``;
* cache hits are served instantly from :class:`repro.harness.cache
  .ResultCache` via its side-effect-free :meth:`~repro.harness.cache
  .ResultCache.peek` path;
* identical in-flight requests coalesce into a single simulation
  (:class:`repro.serve.coalesce.Coalescer`, keyed on the same
  content-addressed cache key as the result cache);
* remaining misses queue into the batching dispatcher
  (:class:`repro.serve.queue.BatchQueue`), which drains into
  :func:`repro.api.run_batch` on a worker pool;
* ``GET /healthz`` / ``GET /stats`` / ``GET /jobs[/<id>]`` expose liveness,
  live counters (queue depth, hit/coalesce/miss split, per-backend
  throughput plus the bench-ledger summary) and job lifecycle records
  (:class:`repro.api.JobRecord`);
* ``POST /shutdown`` (or SIGTERM/SIGINT under :func:`run_service`) drains
  gracefully: intake stops, queued work finishes, a ``"kind": "serve"``
  row lands in the bench ledger, then the listener closes.

Response bodies for ``/simulate`` are the *canonical JSON rendering of the
result wire form* (sorted keys, compact separators) whichever path produced
them — cache hit, coalesced or executed — so identical requests always
receive byte-identical responses equal to a direct
``execute(request).to_dict()`` (asserted end to end by
``tests/test_serve.py`` and the CI serve-smoke job).
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict
from dataclasses import replace
from typing import Optional

from repro.api import (
    AnyRequest,
    JobRecord,
    JobState,
    SimulationRequest,
    _decode_cached_result,
    decode_request,
    result_digest,
)
from repro.harness.ledger import append_entry, read_ledger, summarize_ledger
from repro.harness.parallel import RetryPolicy
from repro.serve.coalesce import Coalescer
from repro.serve.http import (
    MAX_BODY_BYTES,
    REASONS as _REASONS,
    HttpRequest,
    canonical_json,
    read_http_request,
    respond,
)
from repro.serve.queue import BatchQueue, BatchTimeoutError, QueuedJob
from repro.serve.stats import ServiceStats
from repro.version import __version__

#: Default TCP port of ``repro serve`` (and ``repro submit``'s default URL).
DEFAULT_PORT = 8651

#: Historic aliases — the HTTP plumbing moved to :mod:`repro.serve.http`
#: (shared with ``repro worker``); these names remain importable.
_read_http_request = read_http_request
_respond = respond

#: The request-payload dispatcher now lives beside the wire forms
#: themselves (:func:`repro.api.decode_request`); this alias keeps the
#: serving layer's public name.
decode_request_payload = decode_request


class RejectedRequest(ValueError):
    """A payload that never became a job (bad schema, unknown names, ...)."""


class ServiceDraining(RuntimeError):
    """New simulation requests are rejected while the service drains."""


class ServiceOverloaded(RuntimeError):
    """The dispatch queue is too deep; the request was load-shed.

    Answered as 503 with a ``Retry-After`` header (``retry_after``
    seconds).  Followers of an in-flight job are never shed — they cost no
    queue slot — so shedding only applies to would-be leaders.
    """

    def __init__(self, depth: int, limit: int, retry_after: int) -> None:
        super().__init__(
            f"queue depth {depth} is at its limit ({limit}); retry in "
            f"{retry_after}s"
        )
        self.retry_after = retry_after


class ReproService:
    """The serving layer: cache -> coalesce -> batch -> respond."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache=None,
        workers: int = 2,
        batch_max: int = 16,
        linger: float = 0.05,
        backend: Optional[str] = None,
        max_job_records: int = 256,
        retry: Optional[RetryPolicy] = None,
        max_queue_depth: Optional[int] = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.host = host
        self.port = port
        self.cache = cache
        #: Fills in the engine for requests that left theirs ``None``
        #: (multi-tenant requests keep their ``lockstep`` default).
        self.backend = backend
        #: Load-shedding threshold: a would-be leader arriving while the
        #: dispatch queue is this deep gets 503 + Retry-After instead of a
        #: slot (``None`` disables shedding).
        self.max_queue_depth = max_queue_depth
        self.stats = ServiceStats()
        self.coalescer = Coalescer()
        self.queue = BatchQueue(
            cache=cache,
            workers=workers,
            batch_max=batch_max,
            linger=linger,
            retry=retry,
            on_batch_done=self.stats.record_batch,
            on_job_done=self._job_done,
            on_retry=self.stats.record_retried,
        )
        #: Drain summary (set once the queue has drained) for the CLI.
        self.drain_summary: Optional[dict] = None
        self.jobs: "OrderedDict[str, JobRecord]" = OrderedDict()
        self._max_job_records = max_job_records
        self._job_counter = 0
        self._draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._closed: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the dispatcher (call on the loop)."""
        self._closed = asyncio.Event()
        self.queue.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # Port 0 means "pick one": surface the kernel's choice.
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_shutdown(self) -> None:
        """Start the graceful drain (idempotent, loop-confined)."""
        if self._draining:
            return
        self._draining = True
        asyncio.get_running_loop().create_task(self._drain_and_stop())

    async def _drain_and_stop(self) -> None:
        summary = await self.queue.drain()
        self.drain_summary = summary
        if summary.get("drain_errors"):
            # Worker tasks that died during shutdown used to vanish into
            # gather(..., return_exceptions=True); account them instead.
            self.stats.record_drain_error(summary["drain_errors"])
        try:
            append_entry(self.stats.ledger_entry())
        except Exception:
            pass  # the ledger is best-effort; never block a shutdown on it
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self._closed is not None
        self._closed.set()

    async def wait_closed(self) -> None:
        """Wait until a graceful shutdown has completed."""
        assert self._closed is not None, "start() was not called"
        await self._closed.wait()

    # ------------------------------------------------------------------
    # request core (also the in-process API the tests drive directly)
    # ------------------------------------------------------------------
    def _new_record(self, request: AnyRequest, cache_key: str) -> JobRecord:
        self._job_counter += 1
        record = JobRecord.for_request(
            request,
            job_id=f"{cache_key[:12]}-{self._job_counter}",
            cache_key=cache_key,
            submitted_at=time.time(),
        )
        self.jobs[record.job_id] = record
        while len(self.jobs) > self._max_job_records:
            self.jobs.popitem(last=False)
        return record

    async def submit(self, request: AnyRequest):
        """Serve one request; returns ``(result, source, record)``.

        ``source`` is ``"cache"``, ``"coalesced"`` or ``"executed"`` —
        exactly one counter increments per request, so the ``/stats``
        books always reconcile (load-shed requests count under ``shed``).
        Raises :class:`RejectedRequest` for payloads that never became a
        job, :class:`ServiceDraining` during shutdown,
        :class:`ServiceOverloaded` when the queue is past its load-shedding
        depth, and the underlying simulation error for failed jobs.
        """
        if self._draining:
            self.stats.record_rejected()
            raise ServiceDraining("service is draining; not accepting requests")
        if self.backend is not None and (
            isinstance(request, SimulationRequest) and request.backend is None
        ):
            request = replace(request, backend=self.backend)
        try:
            cache_key = request.cache_key()
        except Exception as exc:
            self.stats.record_rejected()
            raise RejectedRequest(f"invalid request: {exc}") from exc
        self.stats.record_request()
        record = self._new_record(request, cache_key)

        # 1. Cache: serve hits instantly, via the side-effect-free peek.
        if self.cache is not None:
            hit = _decode_cached_result(self.cache.peek(cache_key))
            if hit is not None:
                self.stats.record_hit()
                record.advance(
                    JobState.DONE, source="cache", finished_at=time.time()
                )
                return hit, "cache", record

        # 2. Load shedding: a would-be *leader* past the queue-depth limit
        # is turned away with 503 + Retry-After before it costs a slot.
        # Followers piggyback on work already in flight, so they pass.
        if (
            self.max_queue_depth is not None
            and self.queue.depth >= self.max_queue_depth
            and not self.coalescer.inflight(cache_key)
        ):
            self.stats.record_shed()
            retry_after = max(1, round(self.queue.depth * 0.25))
            record.advance(
                JobState.FAILED,
                source="shed",
                error="load shed: dispatch queue at capacity",
                finished_at=time.time(),
            )
            raise ServiceOverloaded(
                self.queue.depth, self.max_queue_depth, retry_after
            )

        # 3. Single-flight: identical in-flight requests share one future.
        future, leader = self.coalescer.lease(cache_key)
        if leader:
            self.queue.put(QueuedJob(request, cache_key, record))
        try:
            result = await asyncio.shield(future)
        except Exception:
            self.stats.record_failed()
            if record.state not in (JobState.DONE, JobState.FAILED):
                record.advance(
                    JobState.FAILED,
                    source="coalesced",
                    error="coalesced onto a failed job",
                    finished_at=time.time(),
                )
            raise
        if leader:
            return result, "executed", record
        self.stats.record_coalesced()
        record.advance(JobState.DONE, source="coalesced", finished_at=time.time())
        return result, "coalesced", record

    def _job_done(self, job: QueuedJob, result, error) -> None:
        """Dispatcher callback (loop thread): settle one executed job."""
        now = time.time()
        if error is not None:
            if isinstance(error, BatchTimeoutError):
                self.stats.record_timed_out()
            job.record.advance(
                JobState.FAILED, source="executed", error=str(error), finished_at=now
            )
            self.coalescer.fail(job.cache_key, error)
        else:
            self._audit_cached(job, result)
            job.record.advance(JobState.DONE, source="executed", finished_at=now)
            self.coalescer.resolve(job.cache_key, result)

    def _audit_cached(self, job: QueuedJob, result) -> None:
        """Read-back audit: the envelope just persisted for an executed job
        must digest-match the result we are about to serve.  A divergence
        means the entry was torn or corrupted between ``put`` and here —
        quarantine it so no later request is served the damaged bytes.
        """
        if self.cache is None:
            return
        stored = self.cache.peek(job.cache_key)
        if stored is None:
            return  # uncacheable request or concurrent eviction: no envelope
        ok = result_digest(stored) == result_digest(result.to_dict())
        self.stats.record_audit(ok=ok)
        if not ok:
            self.cache.quarantine_entry(
                job.cache_key,
                "serve read-back audit: stored envelope diverged from the "
                "executed result",
            )

    def stats_payload(self) -> dict:
        """The ``/stats`` document: live counters + bench-ledger summary."""
        payload = self.stats.snapshot(
            queue_depth=self.queue.depth, inflight=len(self.coalescer)
        )
        payload["draining"] = self._draining
        payload["jobs_tracked"] = len(self.jobs)
        payload["reconciles"] = self.stats.reconciles()
        payload["version"] = __version__
        payload["breaker_state"] = self.queue.breaker_states()
        payload["quarantined"] = (
            self.cache.stats.quarantined if self.cache is not None else 0
        )
        # Per-backend throughput across sessions comes from the same
        # append-only ledger repro bench and the sweep engine feed.
        payload["ledger"] = summarize_ledger(read_ledger())
        return payload

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await _read_http_request(reader)
            except (ValueError, asyncio.IncompleteReadError) as exc:
                await _respond(writer, 400, {"error": f"bad request: {exc}"})
                return
            if request is None:
                return
            await self._route(request, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away mid-response; nothing to answer
        except Exception as exc:  # never let a handler bug kill the loop
            try:
                await _respond(writer, 500, {"error": f"internal error: {exc}"})
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(self, request: HttpRequest, writer) -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz":
            if method != "GET":
                await _respond(writer, 405, {"error": "use GET"})
                return
            await _respond(
                writer,
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "version": __version__,
                },
            )
        elif path == "/stats":
            if method != "GET":
                await _respond(writer, 405, {"error": "use GET"})
                return
            await _respond(writer, 200, self.stats_payload())
        elif path == "/jobs":
            if method != "GET":
                await _respond(writer, 405, {"error": "use GET"})
                return
            records = list(self.jobs.values())[-50:]
            await _respond(
                writer, 200, {"jobs": [r.to_dict() for r in reversed(records)]}
            )
        elif path.startswith("/jobs/"):
            if method != "GET":
                await _respond(writer, 405, {"error": "use GET"})
                return
            record = self.jobs.get(path[len("/jobs/"):])
            if record is None:
                await _respond(writer, 404, {"error": "unknown job"})
                return
            await _respond(writer, 200, record.to_dict())
        elif path == "/simulate":
            if method != "POST":
                await _respond(writer, 405, {"error": "use POST"})
                return
            await self._handle_simulate(request, writer)
        elif path == "/shutdown":
            if method != "POST":
                await _respond(writer, 405, {"error": "use POST"})
                return
            await _respond(writer, 200, {"status": "draining"})
            self.begin_shutdown()
        else:
            await _respond(writer, 404, {"error": f"unknown path {path!r}"})

    async def _handle_simulate(self, http: HttpRequest, writer) -> None:
        try:
            payload = json.loads(http.body.decode("utf-8"))
            request = decode_request_payload(payload)
        except (ValueError, UnicodeDecodeError) as exc:
            self.stats.record_rejected()
            await _respond(writer, 400, {"error": f"bad payload: {exc}"})
            return
        try:
            result, source, record = await self.submit(request)
        except ServiceDraining as exc:
            await _respond(writer, 503, {"error": str(exc)})
            return
        except ServiceOverloaded as exc:
            await _respond(
                writer,
                503,
                {"error": str(exc), "retry_after": exc.retry_after},
                extra_headers=(("Retry-After", str(exc.retry_after)),),
            )
            return
        except RejectedRequest as exc:
            await _respond(writer, 400, {"error": str(exc)})
            return
        except Exception as exc:
            await _respond(writer, 500, {"error": str(exc)})
            return
        # The body is the canonical rendering of the result wire form —
        # byte-identical across the cache / coalesced / executed paths and
        # to a direct execute(request).to_dict().  Job metadata rides in
        # headers so it can never perturb response bytes.
        wire = result.to_dict()
        body = canonical_json(wire)
        await _respond(
            writer,
            200,
            body,
            extra_headers=(
                ("X-Repro-Source", source),
                ("X-Repro-Job", record.job_id),
                ("X-Repro-Cache-Key", record.cache_key),
                # Content digest of the wire form: clients can verify the
                # body survived the transport (same blake2b the cache and
                # the distributed workers use).
                ("X-Repro-Digest", result_digest(wire)),
            ),
        )


async def run_service(service: ReproService, *, announce=None) -> None:
    """Start ``service``, announce the bound address, serve until drained.

    SIGINT/SIGTERM trigger the same graceful drain as ``POST /shutdown``
    (where the platform supports loop signal handlers).
    """
    import signal

    await service.start()
    if announce is not None:
        announce(f"repro serve listening on {service.address}")
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, service.begin_shutdown)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or unsupported platform
    await service.wait_closed()
