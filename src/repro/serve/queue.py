"""Batching dispatcher: queued misses drain into ``repro.api.run_batch``.

Requests that were neither cache hits nor coalesced land here.  The
dispatcher collects them into batches — up to ``batch_max`` requests, or
whatever arrived within the ``linger`` window after the first one — and
hands each batch to :func:`repro.api.run_batch` on a worker-thread pool.
Batching is what lets engines that intern per-kernel state (the ``vector``
backend's extracted traces) pay setup once per kernel instead of once per
request, exactly as the sweep engine's in-process path does.

Failure attribution: ``run_batch`` raises :class:`repro.api
.BatchExecutionError` naming one offending request (message now carries its
cache key and backend).  The dispatcher fails *only that job's* future and
re-runs the remainder of the batch, so one poisoned request never takes
innocent co-batched requests down with it.

Lifecycle: :meth:`BatchQueue.put` is loop-confined; simulation happens on
``ThreadPoolExecutor`` workers; results return to the loop through the
executor future, where job records advance (``QUEUED`` → ``RUNNING`` →
``DONE`` / ``FAILED``) and coalescer futures resolve.  :meth:`drain` stops
intake, waits for the queue and every in-flight batch to finish, then
shuts the pool down — the graceful half of drain-on-shutdown.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.api import AnyRequest, BatchExecutionError, JobRecord, JobState, run_batch


@dataclass
class QueuedJob:
    """One pending miss: the request, its identity and its lifecycle record."""

    request: AnyRequest
    cache_key: str
    record: JobRecord


class BatchQueue:
    """Collects :class:`QueuedJob` values and drains them in batches."""

    def __init__(
        self,
        *,
        cache=None,
        workers: int = 2,
        batch_max: int = 16,
        linger: float = 0.05,
        on_batch_done: Optional[Callable[[list, float], None]] = None,
        on_job_done: Optional[Callable[[QueuedJob, object, Optional[BaseException]], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if linger < 0:
            raise ValueError("linger must be >= 0")
        self._cache = cache
        self._batch_max = batch_max
        self._linger = linger
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._pending: List[QueuedJob] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._active: set[asyncio.Task] = set()
        self._closing = False
        #: ``(outcomes, wall_seconds)`` hook — the service's stats feed.
        self._on_batch_done = on_batch_done
        #: per-job completion hook — resolves coalescer futures / records.
        self._on_job_done = on_job_done

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Jobs queued but not yet dispatched."""
        return len(self._pending)

    @property
    def inflight_batches(self) -> int:
        return len(self._active)

    def start(self) -> None:
        """Start the dispatcher task (call from the event loop)."""
        if self._dispatcher is None:
            self._wakeup = asyncio.Event()
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    def put(self, job: QueuedJob) -> None:
        """Enqueue one miss (loop-confined; raises once draining began)."""
        if self._closing:
            raise RuntimeError("queue is draining; not accepting new jobs")
        self._pending.append(job)
        assert self._wakeup is not None, "BatchQueue.start() was not called"
        self._wakeup.set()

    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            if not self._pending:
                if self._closing:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            # Linger: give identical-arrival-time traffic a window to pile
            # into one batch before draining (0 = dispatch immediately).
            if self._linger and len(self._pending) < self._batch_max:
                await asyncio.sleep(self._linger)
            batch = self._pending[: self._batch_max]
            del self._pending[: len(batch)]
            for job in batch:
                job.record.advance(JobState.RUNNING)
            task = asyncio.get_running_loop().create_task(self._run_batch(batch))
            self._active.add(task)
            task.add_done_callback(self._active.discard)

    async def _run_batch(self, batch: List[QueuedJob]) -> None:
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        outcomes = await loop.run_in_executor(
            self._pool, self._execute_batch, [job.request for job in batch]
        )
        wall = time.perf_counter() - started
        executed = []
        for job, (result, error) in zip(batch, outcomes):
            if error is None and result is not None:
                cycles = max((s.cycles for s in result.per_sm), default=0)
                executed.append((result.backend, cycles))
            if self._on_job_done is not None:
                self._on_job_done(job, result, error)
        if self._on_batch_done is not None:
            self._on_batch_done(executed, wall)

    def _execute_batch(self, requests: List[AnyRequest]):
        """Worker-thread body: one ``run_batch`` call, retrying around
        individually-failing requests so attribution stays per job."""
        outcomes: list = [None] * len(requests)
        remaining = list(enumerate(requests))
        while remaining:
            try:
                results = run_batch(
                    [request for _, request in remaining], cache=self._cache
                )
            except BatchExecutionError as exc:
                position = next(
                    (
                        i
                        for i, (_, request) in enumerate(remaining)
                        if request is exc.request or request == exc.request
                    ),
                    None,
                )
                if position is None:
                    # Cannot map the failure onto a batch member: fail all.
                    for index, _ in remaining:
                        outcomes[index] = (None, exc)
                    break
                index, _ = remaining.pop(position)
                outcomes[index] = (None, exc)
                continue
            except Exception as exc:  # batch-level failure, no attribution
                for index, _ in remaining:
                    outcomes[index] = (None, exc)
                break
            for (index, _), result in zip(remaining, results):
                outcomes[index] = (result, None)
            break
        return outcomes

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Stop intake, run everything queued and wait for it to finish."""
        self._closing = True
        if self._wakeup is not None:
            self._wakeup.set()  # let an idle dispatcher observe _closing
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        while self._active:
            await asyncio.gather(*list(self._active), return_exceptions=True)
        self._pool.shutdown(wait=True)
