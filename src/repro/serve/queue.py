"""Batching dispatcher: queued misses drain into ``repro.api.run_batch``.

Requests that were neither cache hits nor coalesced land here.  The
dispatcher collects them into batches — up to ``batch_max`` requests, or
whatever arrived within the ``linger`` window after the first one — and
hands each batch to :func:`repro.api.run_batch` on a worker-thread pool.
Batching is what lets engines that intern per-kernel state (the ``vector``
backend's extracted traces) pay setup once per kernel instead of once per
request, exactly as the sweep engine's in-process path does.

Failure attribution: ``run_batch`` raises :class:`repro.api
.BatchExecutionError` naming one offending request (message now carries its
cache key and backend).  The dispatcher fails *only that job's* future and
re-runs the remainder of the batch, so one poisoned request never takes
innocent co-batched requests down with it.

Resilience (docs/RESILIENCE.md): the queue accepts the same
:class:`repro.harness.parallel.RetryPolicy` the sweep engine uses.  A
failing batch is retried up to ``max_attempts`` times with the policy's
deterministic backoff before the per-offender attribution above kicks in,
and ``timeout_seconds`` bounds each batch's wall time — a batch past its
deadline fails all its jobs with :class:`BatchTimeoutError` while the
worker thread is *abandoned*, not interrupted (Python threads cannot be
killed), so :meth:`drain` shuts the pool down without waiting on it.

Lifecycle: :meth:`BatchQueue.put` is loop-confined; simulation happens on
``ThreadPoolExecutor`` workers; results return to the loop through the
executor future, where job records advance (``QUEUED`` → ``RUNNING`` →
``DONE`` / ``FAILED``) and coalescer futures resolve.  :meth:`drain` stops
intake, waits for the queue and every in-flight batch to finish, shuts the
pool down, and returns a summary dict — worker-thread exceptions during
shutdown are *counted and surfaced* there (they were previously discarded
by ``asyncio.gather(..., return_exceptions=True)``).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.api import AnyRequest, BatchExecutionError, JobRecord, JobState, run_batch
from repro.harness.breaker import CircuitBreaker, CircuitOpenError
from repro.harness.faults import set_current_attempt
from repro.harness.parallel import RetryPolicy

#: Unattributed batch failures before a backend's circuit opens.  Higher
#: than the coordinator's per-worker threshold of 1: a backend is shared
#: state (one open circuit refuses every request targeting it), so it gets
#: more benefit of the doubt.
DEFAULT_BREAKER_THRESHOLD = 3


class BatchTimeoutError(RuntimeError):
    """A dispatched batch exceeded the queue's per-batch deadline."""


@dataclass
class QueuedJob:
    """One pending miss: the request, its identity and its lifecycle record."""

    request: AnyRequest
    cache_key: str
    record: JobRecord


class BatchQueue:
    """Collects :class:`QueuedJob` values and drains them in batches."""

    def __init__(
        self,
        *,
        cache=None,
        workers: int = 2,
        batch_max: int = 16,
        linger: float = 0.05,
        retry: Optional[RetryPolicy] = None,
        on_batch_done: Optional[Callable[[list, float], None]] = None,
        on_job_done: Optional[Callable[[QueuedJob, object, Optional[BaseException]], None]] = None,
        on_retry: Optional[Callable[[], None]] = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if linger < 0:
            raise ValueError("linger must be >= 0")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        self._cache = cache
        self._batch_max = batch_max
        self._linger = linger
        #: Shared policy object (same type the sweep engine takes): retry
        #: attempts + backoff apply per batch, ``timeout_seconds`` bounds
        #: each batch's wall time.  ``None`` keeps the historic behavior
        #: (one attempt, no deadline).
        self._retry = retry
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._pending: List[QueuedJob] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._active: set[asyncio.Task] = set()
        self._closing = False
        #: Batches whose worker thread outlived its deadline; their threads
        #: cannot be interrupted, so drain must not wait on the pool.
        self._abandoned = 0
        #: ``(outcomes, wall_seconds)`` hook — the service's stats feed.
        self._on_batch_done = on_batch_done
        #: per-job completion hook — resolves coalescer futures / records.
        self._on_job_done = on_job_done
        #: called (from the worker thread) on each batch retry.
        self._on_retry = on_retry
        #: Per-resolved-backend circuit breakers (docs/RESILIENCE.md): a
        #: backend whose batches keep failing *without attribution* (crash
        #: in the engine itself, not one poisoned request) is opened and
        #: probed with one request at a time instead of burning whole
        #: batches against it.  Attributed failures and timeouts don't
        #: count — they already have narrower handling.
        self._breaker_threshold = breaker_threshold
        self._breakers: dict[str, CircuitBreaker] = {}

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Jobs queued but not yet dispatched."""
        return len(self._pending)

    @property
    def inflight_batches(self) -> int:
        return len(self._active)

    @property
    def abandoned_batches(self) -> int:
        """Batches abandoned past their deadline (threads left to finish)."""
        return self._abandoned

    def start(self) -> None:
        """Start the dispatcher task (call from the event loop)."""
        if self._dispatcher is None:
            self._wakeup = asyncio.Event()
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    def put(self, job: QueuedJob) -> None:
        """Enqueue one miss (loop-confined; raises once draining began)."""
        if self._closing:
            raise RuntimeError("queue is draining; not accepting new jobs")
        self._pending.append(job)
        assert self._wakeup is not None, "BatchQueue.start() was not called"
        self._wakeup.set()

    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            if not self._pending:
                if self._closing:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            # Linger: give identical-arrival-time traffic a window to pile
            # into one batch before draining (0 = dispatch immediately).
            if self._linger and len(self._pending) < self._batch_max:
                await asyncio.sleep(self._linger)
            batch = self._pending[: self._batch_max]
            del self._pending[: len(batch)]
            for job in batch:
                job.record.advance(JobState.RUNNING)
            task = asyncio.get_running_loop().create_task(self._run_batch(batch))
            self._active.add(task)
            task.add_done_callback(self._active.discard)

    async def _run_batch(self, batch: List[QueuedJob]) -> None:
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        future = loop.run_in_executor(
            self._pool, self._execute_batch, [job.request for job in batch]
        )
        timeout = self._retry.timeout_seconds if self._retry is not None else None
        if timeout is not None:
            try:
                # shield(): on timeout the executor future keeps running in
                # its worker thread (threads cannot be interrupted); we stop
                # *waiting*, fail the batch's jobs, and mark the thread
                # abandoned so drain skips it.
                outcomes = await asyncio.wait_for(asyncio.shield(future), timeout)
            except asyncio.TimeoutError:
                self._abandoned += 1
                # A late result (or error) from the abandoned thread must
                # never surface as an unretrieved-exception warning.
                future.add_done_callback(lambda f: f.exception())
                error = BatchTimeoutError(
                    f"batch of {len(batch)} job(s) exceeded its "
                    f"{timeout}s deadline"
                )
                wall = time.perf_counter() - started
                if self._on_job_done is not None:
                    for job in batch:
                        self._on_job_done(job, None, error)
                if self._on_batch_done is not None:
                    self._on_batch_done([], wall)
                return
        else:
            outcomes = await future
        wall = time.perf_counter() - started
        executed = []
        for job, (result, error) in zip(batch, outcomes):
            if error is None and result is not None:
                cycles = max((s.cycles for s in result.per_sm), default=0)
                executed.append((result.backend, cycles))
            if self._on_job_done is not None:
                self._on_job_done(job, result, error)
        if self._on_batch_done is not None:
            self._on_batch_done(executed, wall)

    # -- circuit breakers ----------------------------------------------
    def _backend_name(self, request) -> Optional[str]:
        """The resolved engine name a request will execute on, or ``None``."""
        try:
            from repro.api import MultiTenantRequest
            from repro.backends import resolve_backend_name

            backend = getattr(request, "backend", None)
            if backend is None and isinstance(request, MultiTenantRequest):
                return "lockstep"
            return resolve_backend_name(backend)
        except Exception:
            return None

    def _breaker_for(self, backend: str) -> CircuitBreaker:
        breaker = self._breakers.get(backend)
        if breaker is None:
            breaker = CircuitBreaker(
                key=f"backend:{backend}",
                seed=self._retry.seed if self._retry is not None else 0,
                failure_threshold=self._breaker_threshold,
                probe_base=(
                    self._retry.backoff_base if self._retry is not None else 0.05
                ),
            )
            self._breakers[backend] = breaker
        return breaker

    def breaker_states(self) -> dict[str, str]:
        """``{backend: state}`` for every breaker created so far."""
        return {name: b.state for name, b in sorted(self._breakers.items())}

    def _execute_batch(self, requests: List[AnyRequest]):
        """Worker-thread body: one ``run_batch`` call, retried under the
        policy's backoff, then retried around individually-failing requests
        so attribution stays per job."""
        outcomes: list = [None] * len(requests)
        remaining = []
        for index, request in enumerate(requests):
            name = self._backend_name(request)
            if name is not None and not self._breaker_for(name).allow():
                # Open circuit: refuse instantly instead of burning a batch
                # attempt on a backend that just failed repeatedly.  (In
                # half-open state exactly one request per backend gets
                # through as the probe.)
                outcomes[index] = (None, CircuitOpenError(
                    f"backend {name!r} circuit is open after repeated "
                    "failures; retry shortly"
                ))
                continue
            remaining.append((index, request))
        max_attempts = self._retry.max_attempts if self._retry is not None else 1
        attempt = 1
        set_current_attempt(attempt)
        while remaining:
            try:
                results = run_batch(
                    [request for _, request in remaining], cache=self._cache
                )
            except BatchExecutionError as exc:
                if attempt < max_attempts:
                    if self._on_retry is not None:
                        self._on_retry()
                    time.sleep(
                        self._retry.backoff_seconds("serve-batch", attempt)
                    )
                    attempt += 1
                    set_current_attempt(attempt)
                    continue
                position = next(
                    (
                        i
                        for i, (_, request) in enumerate(remaining)
                        if request is exc.request or request == exc.request
                    ),
                    None,
                )
                if position is None:
                    # Cannot map the failure onto a batch member: fail all.
                    for index, _ in remaining:
                        outcomes[index] = (None, exc)
                    break
                index, _ = remaining.pop(position)
                outcomes[index] = (None, exc)
                continue
            except Exception as exc:  # batch-level failure, no attribution
                if attempt < max_attempts:
                    if self._on_retry is not None:
                        self._on_retry()
                    time.sleep(
                        self._retry.backoff_seconds("serve-batch", attempt)
                    )
                    attempt += 1
                    set_current_attempt(attempt)
                    continue
                for name in {
                    self._backend_name(request) for _, request in remaining
                }:
                    if name is not None:
                        self._breaker_for(name).record_failure()
                for index, _ in remaining:
                    outcomes[index] = (None, exc)
                break
            for name in {
                self._backend_name(request) for _, request in remaining
            }:
                if name is not None:
                    self._breaker_for(name).record_success()
            for (index, _), result in zip(remaining, results):
                outcomes[index] = (result, None)
            break
        return outcomes

    # ------------------------------------------------------------------
    async def drain(self) -> dict:
        """Stop intake, run everything queued, wait, and summarize.

        Returns ``{"drain_errors": int, "abandoned_batches": int,
        "errors": [str, ...]}``.  Worker-task exceptions are counted and
        returned instead of being silently discarded; the pool is shut down
        without waiting when any batch thread was abandoned past its
        deadline (it cannot be joined).
        """
        self._closing = True
        if self._wakeup is not None:
            self._wakeup.set()  # let an idle dispatcher observe _closing
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        errors: list[str] = []
        while self._active:
            settled = await asyncio.gather(
                *list(self._active), return_exceptions=True
            )
            for outcome in settled:
                if isinstance(outcome, BaseException):
                    errors.append(f"{type(outcome).__name__}: {outcome}")
        if self._abandoned:
            self._pool.shutdown(wait=False, cancel_futures=True)
        else:
            self._pool.shutdown(wait=True)
        return {
            "drain_errors": len(errors),
            "abandoned_batches": self._abandoned,
            "errors": errors,
        }
