"""Single-flight coalescing of identical in-flight simulation requests.

Two requests are *identical* exactly when their content-addressed cache
keys match (:meth:`repro.api.SimulationRequest.cache_key` — benchmark,
scheduler, full run configuration, backend and source fingerprint), so the
coalescer keys its in-flight registry on the same string the result cache
keys its entries on.  The first request for a key becomes the *leader* and
is enqueued for execution; every later request for the same key while the
leader is in flight becomes a *follower* that simply awaits the leader's
future — N identical concurrent requests cost exactly one simulation.

The registry is **loop-confined**: every method must be called from the
service's event-loop thread (worker threads hand results back through
``asyncio.run_coroutine_threadsafe`` / executor futures), so no lock is
needed and the lease check-then-insert is atomic by construction.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional, Tuple


class Coalescer:
    """In-flight futures keyed by content-addressed cache key."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def inflight(self, key: str) -> bool:
        return key in self._inflight

    # ------------------------------------------------------------------
    def lease(
        self, key: str, loop: Optional[asyncio.AbstractEventLoop] = None
    ) -> Tuple[asyncio.Future, bool]:
        """The shared future for ``key`` and whether the caller leads.

        Returns ``(future, True)`` when no identical request is in flight —
        the caller is the leader and must arrange for the future to be
        resolved (by enqueuing the request and eventually calling
        :meth:`resolve` or :meth:`fail`).  Returns ``(future, False)`` for
        followers, who just await it.  Await through ``asyncio.shield`` so
        one cancelled follower cannot cancel the shared future under
        everyone else.
        """
        future = self._inflight.get(key)
        if future is not None:
            return future, False
        if loop is None:
            loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        return future, True

    def resolve(self, key: str, value: Any) -> None:
        """Deliver the leader's result to every waiter and retire the key.

        The key is removed *before* waiters wake, so a request arriving
        after resolution starts a fresh flight (or, with a cache attached,
        is served from the entry the execution just wrote).
        """
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(value)

    def fail(self, key: str, exc: BaseException) -> None:
        """Deliver a failure to every waiter and retire the key."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(exc)

    def abort_all(self, exc: BaseException) -> None:
        """Fail every in-flight key (shutdown without drain)."""
        for key in list(self._inflight):
            self.fail(key, exc)
