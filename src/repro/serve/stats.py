"""Live service counters for the ``repro.serve`` layer.

One :class:`ServiceStats` instance is shared by the HTTP handlers (which
count requests, cache hits, coalesces and rejects on the event loop) and
the batch dispatcher (whose worker threads report executed batches).  All
mutation goes through ``record_*`` methods guarded by one lock, so the
``/stats`` endpoint always reads a consistent snapshot.

The central service invariant is :meth:`ServiceStats.reconciles`: every
accepted request was answered exactly one way —

    ``hits + coalesced + executed + failed + shed == requests``

``shed`` counts requests turned away (503 + ``Retry-After``) by the
queue-depth load-shedding threshold; ``retried`` and ``timed_out`` are
*informational* — a retried batch still resolves each of its jobs as
executed or failed, and a timed-out job is a kind of failure, so neither
adds a new way for a request to be answered.  The end-to-end suite and the
CI serve-smoke job both assert the invariant after mixed traffic.

At drain time :meth:`ledger_entry` renders the counters as one bench-ledger
row (``"kind": "serve"``, see :mod:`repro.harness.ledger`), so service
traffic lands in the same append-only trajectory as sweeps and bench runs
and shows up in ``repro cache stats``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class BackendThroughput:
    """Per-engine execution totals of one service session."""

    executed: int = 0
    cycles: int = 0
    wall_seconds: float = 0.0

    @property
    def cycles_per_second(self) -> float:
        return self.cycles / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "executed": self.executed,
            "cycles": self.cycles,
            "wall_seconds": round(self.wall_seconds, 6),
            "cycles_per_second": round(self.cycles_per_second, 2),
        }


@dataclass
class ServiceStats:
    """Hit/coalesce/execute counters plus per-backend throughput."""

    #: Requests whose payload parsed into a valid job descriptor.
    requests: int = 0
    #: Requests answered straight from the result cache.
    hits: int = 0
    #: Requests coalesced onto an identical in-flight job (single-flight).
    coalesced: int = 0
    #: Requests that ran a simulation (exactly one per distinct miss).
    executed: int = 0
    #: Requests whose simulation raised.
    failed: int = 0
    #: Payloads rejected before a job existed (bad JSON, schema drift,
    #: unknown benchmark/backend, draining server).
    rejected: int = 0
    #: Batches drained into ``repro.api.run_batch`` by the dispatcher.
    batches: int = 0
    #: Valid requests turned away under load (503 + ``Retry-After``).
    shed: int = 0
    #: Jobs whose batch exceeded its deadline (each also counts as failed).
    timed_out: int = 0
    #: Batch dispatch retries after a failure (informational).
    retried: int = 0
    #: Worker-thread exceptions surfaced during drain (would previously be
    #: silently discarded by ``asyncio.gather(..., return_exceptions=True)``).
    drain_errors: int = 0
    #: Results re-verified against their content digest after execution.
    audited: int = 0
    #: Audits whose recomputed digest did not match (integrity breach).
    audit_failures: int = 0
    started_at: float = field(default_factory=time.time)
    per_backend: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # ------------------------------------------------------------------
    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_coalesced(self) -> None:
        with self._lock:
            self.coalesced += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_timed_out(self, jobs: int = 1) -> None:
        with self._lock:
            self.timed_out += jobs

    def record_retried(self) -> None:
        with self._lock:
            self.retried += 1

    def record_drain_error(self, count: int = 1) -> None:
        with self._lock:
            self.drain_errors += count

    def record_audit(self, *, ok: bool) -> None:
        with self._lock:
            self.audited += 1
            if not ok:
                self.audit_failures += 1

    def record_batch(self, outcomes, wall_seconds: float) -> None:
        """Account one drained batch.

        ``outcomes`` is an iterable of ``(backend_name, cycles)`` pairs,
        one per successfully executed request; the batch's wall time is
        split evenly across them (a batch is one ``run_batch`` call, so
        per-request walls are not individually observable).
        """
        outcomes = list(outcomes)
        share = wall_seconds / len(outcomes) if outcomes else 0.0
        with self._lock:
            self.batches += 1
            for backend, cycles in outcomes:
                self.executed += 1
                slot = self.per_backend.get(backend)
                if slot is None:
                    slot = self.per_backend[backend] = BackendThroughput()
                slot.executed += 1
                slot.cycles += cycles
                slot.wall_seconds += share

    # ------------------------------------------------------------------
    @property
    def served(self) -> int:
        """Requests answered with a result (failures excluded)."""
        return self.hits + self.coalesced + self.executed

    def reconciles(self) -> bool:
        """The books balance: every accepted request was answered one way.

        Shed requests are "answered" with a 503 + ``Retry-After``; they
        enter ``requests`` (the payload was valid) and must balance too.
        """
        with self._lock:
            return (
                self.hits + self.coalesced + self.executed + self.failed
                + self.shed
                == self.requests
            )

    def snapshot(self, *, queue_depth: int = 0, inflight: int = 0) -> dict:
        """A consistent JSON-safe view for the ``/stats`` endpoint."""
        with self._lock:
            return {
                "requests": self.requests,
                "hits": self.hits,
                "coalesced": self.coalesced,
                "executed": self.executed,
                "failed": self.failed,
                "rejected": self.rejected,
                "batches": self.batches,
                "shed": self.shed,
                "timed_out": self.timed_out,
                "retried": self.retried,
                "drain_errors": self.drain_errors,
                "audited": self.audited,
                "audit_failures": self.audit_failures,
                "served": self.hits + self.coalesced + self.executed,
                "queue_depth": queue_depth,
                "inflight": inflight,
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "per_backend": {
                    name: slot.as_dict()
                    for name, slot in sorted(self.per_backend.items())
                },
            }

    def ledger_entry(self) -> dict:
        """One ``"kind": "serve"`` row for the bench ledger (drain time)."""
        with self._lock:
            return {
                "kind": "serve",
                "ts": round(time.time(), 3),
                "requests": self.requests,
                "hits": self.hits,
                "coalesced": self.coalesced,
                "executed": self.executed,
                "failed": self.failed,
                "rejected": self.rejected,
                "batches": self.batches,
                "shed": self.shed,
                "timed_out": self.timed_out,
                "retried": self.retried,
                "drain_errors": self.drain_errors,
                "audited": self.audited,
                "audit_failures": self.audit_failures,
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "backend": ",".join(sorted(self.per_backend)),
            }
