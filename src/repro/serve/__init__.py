"""``repro.serve`` — the async simulation-as-a-service layer.

Assembles the serving primitives the rest of the package already provides
— versioned request wire forms, content-addressed cache keys, ``run_batch``
and the result cache — into a long-lived stdlib-only HTTP/JSON daemon with
request coalescing, batched dispatch and live stats endpoints.  See
docs/SERVING.md and :mod:`repro.serve.server` for the full picture; the
CLI front ends are ``repro serve`` and ``repro submit``.
"""

from repro.serve.coalesce import Coalescer
from repro.serve.queue import BatchQueue, QueuedJob
from repro.serve.server import (
    DEFAULT_PORT,
    RejectedRequest,
    ReproService,
    ServiceDraining,
    canonical_json,
    decode_request_payload,
    run_service,
)
from repro.serve.stats import BackendThroughput, ServiceStats

__all__ = [
    "BackendThroughput",
    "BatchQueue",
    "Coalescer",
    "DEFAULT_PORT",
    "QueuedJob",
    "RejectedRequest",
    "ReproService",
    "ServiceDraining",
    "ServiceStats",
    "canonical_json",
    "decode_request_payload",
    "run_service",
]
