"""``repro.serve`` — the async simulation-as-a-service layer.

Assembles the serving primitives the rest of the package already provides
— versioned request wire forms, content-addressed cache keys, ``run_batch``
and the result cache — into a long-lived stdlib-only HTTP/JSON daemon with
request coalescing, batched dispatch, live stats endpoints and the shared
resilience policy (per-batch timeouts, bounded retry with backoff,
queue-depth load shedding — see docs/RESILIENCE.md).  See docs/SERVING.md
and :mod:`repro.serve.server` for the full picture; the CLI front ends are
``repro serve`` and ``repro submit``.
"""

from repro.serve.coalesce import Coalescer
from repro.serve.queue import BatchQueue, BatchTimeoutError, QueuedJob
from repro.serve.server import (
    DEFAULT_PORT,
    RejectedRequest,
    ReproService,
    ServiceDraining,
    ServiceOverloaded,
    canonical_json,
    decode_request_payload,
    run_service,
)
from repro.serve.stats import BackendThroughput, ServiceStats

__all__ = [
    "BackendThroughput",
    "BatchQueue",
    "BatchTimeoutError",
    "Coalescer",
    "DEFAULT_PORT",
    "QueuedJob",
    "RejectedRequest",
    "ReproService",
    "ServiceDraining",
    "ServiceOverloaded",
    "ServiceStats",
    "canonical_json",
    "decode_request_payload",
    "run_service",
]
