"""Run one (benchmark, scheduler) pair with the paper's methodology.

Historically this module owned the whole execution path; today it is a thin
convenience front end over :mod:`repro.api`: :func:`run_benchmark` builds a
:class:`~repro.api.SimulationRequest` and hands it to
:func:`repro.api.execute`, which dispatches to the selected backend
(``"reference"`` serialized SMs, ``"lockstep"`` cycle-level multi-SM, or any
engine registered with :func:`repro.backends.register_backend`).

The per-benchmark knobs the paper describes all live in the request:

* Best-SWL uses the profiled warp limit ``Nwrp`` from Table II;
* statPCAL's token count is also derived from the profiled limit (token
  holders keep L1D allocation rights, the rest bypass);
* the CIAO variants get the shared-memory cache enabled (CIAO-P / CIAO-C)
  and the default or caller-supplied :class:`~repro.core.config.CIAOParameters`;
* Figure 12 variants are supported through ``gpu_config`` /
  ``dram_bandwidth_scale`` overrides.

``RunConfig`` itself now lives in :mod:`repro.api`; it is re-exported here
(together with :func:`run_benchmark` / :func:`run_many`) so existing imports
keep working.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.api import (  # noqa: F401  (RunConfig re-exported for compatibility)
    RunConfig,
    SimulationRequest,
    execute,
    scheduler_kwargs_for,
)
from repro.gpu.gpu import SimulationResult
from repro.workloads.spec import BenchmarkSpec


def _scheduler_kwargs(scheduler: str, spec: BenchmarkSpec, run_config: RunConfig) -> dict:
    """Deprecated alias of :func:`repro.api.scheduler_kwargs_for`."""
    return scheduler_kwargs_for(scheduler, spec, run_config)


def run_benchmark(
    benchmark: str | BenchmarkSpec,
    scheduler: str = "gto",
    run_config: Optional[RunConfig] = None,
    *,
    backend: Optional[str] = None,
    **overrides,
) -> SimulationResult:
    """Simulate ``benchmark`` under ``scheduler`` and return the result.

    ``overrides`` are applied on top of ``run_config`` (e.g.
    ``run_benchmark("ATAX", "ciao-c", scale=0.5)``).  ``backend`` selects the
    execution engine (default: ``REPRO_BACKEND`` or ``"reference"``).
    """
    config = replace(run_config, **overrides) if run_config is not None else RunConfig(**overrides)
    return execute(SimulationRequest(benchmark, scheduler, config, backend=backend))


def run_many(
    benchmarks: list[str],
    schedulers: list[str],
    run_config: Optional[RunConfig] = None,
    *,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
    return_stats: bool = False,
    **overrides,
):
    """Run a benchmark x scheduler sweep through the parallel engine.

    Returns ``{benchmark: {scheduler: SimulationResult}}`` — or, when
    ``return_stats`` is true, a ``(results, SweepStats)`` pair so callers can
    surface cache hits and worker counts.

    ``workers=None`` resolves to ``REPRO_WORKERS`` or the CPU count (a
    single worker runs in-process with no pool); results are bit-identical
    for any worker count because every job's seed is fixed at submission.
    ``cache`` is ``"auto"`` (environment-default result cache), ``None``
    (disabled), or an explicit :class:`repro.harness.cache.ResultCache`.
    ``backend`` selects the execution engine for every job of the sweep.
    """
    from repro.harness.parallel import run_jobs

    config = replace(run_config, **overrides) if run_config is not None else RunConfig(**overrides)
    jobs = [
        SimulationRequest(benchmark, scheduler, config, backend=backend)
        for benchmark in benchmarks
        for scheduler in schedulers
    ]
    outcome = run_jobs(jobs, workers=workers, cache=cache)
    results = outcome.nested()
    if return_stats:
        return results, outcome.stats
    return results
