"""Run one (benchmark, scheduler) pair with the paper's methodology.

The runner wires together the workload registry, the scheduler registry and
the GPU model, applying the per-benchmark knobs the paper describes:

* Best-SWL uses the profiled warp limit ``Nwrp`` from Table II;
* statPCAL's token count is also derived from the profiled limit (token
  holders keep L1D allocation rights, the rest bypass);
* the CIAO variants get the shared-memory cache enabled (CIAO-P / CIAO-C)
  and the default or caller-supplied :class:`~repro.core.config.CIAOParameters`;
* Figure 12 variants are supported through ``gpu_config`` /
  ``dram_bandwidth_scale`` overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.config import CIAOParameters
from repro.gpu.config import GPUConfig
from repro.gpu.gpu import GPU, SimulationResult
from repro.sched.registry import (
    canonical_scheduler_name,
    create_scheduler,
    uses_shared_cache,
)
from repro.workloads.registry import get_benchmark
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.synthetic import SyntheticKernelModel


@dataclass
class RunConfig:
    """Sizing and configuration of one simulation run."""

    #: Scales the per-warp instruction count of the workload models
    #: (1.0 reproduces the default ~2000-2600 instructions per warp).
    scale: float = 1.0
    #: Workload RNG seed (streams are deterministic given the seed).
    seed: int = 1
    #: Optional launch-geometry overrides (defaults come from the spec).
    num_ctas: Optional[int] = None
    warps_per_cta: Optional[int] = None
    #: Machine configuration (Table I baseline when omitted).
    gpu_config: GPUConfig = field(default_factory=GPUConfig.gtx480)
    #: Fig. 12b knob: multiply DRAM bandwidth (2.0 = the "2X" variants).
    dram_bandwidth_scale: float = 1.0
    #: CIAO thresholds / epochs (paper defaults when omitted).
    ciao_params: Optional[CIAOParameters] = None
    #: Hard cycle budget per SM (guards against pathological runs).
    max_cycles: Optional[int] = None


def _scheduler_kwargs(scheduler: str, spec: BenchmarkSpec, run_config: RunConfig) -> dict:
    """Per-benchmark scheduler constructor arguments (profiled knobs)."""
    key = scheduler.lower()
    if key in ("best-swl", "best_swl", "bestswl"):
        return {"warp_limit": spec.nwrp}
    if key == "statpcal":
        # Token holders keep L1D allocation rights; the profiled limit is the
        # natural token count (Li et al. size tokens like a wavefront limit).
        return {"token_count": max(2, spec.nwrp)}
    if key.startswith("ciao"):
        params = run_config.ciao_params or CIAOParameters.paper_defaults()
        return {"params": params}
    return {}


def run_benchmark(
    benchmark: str | BenchmarkSpec,
    scheduler: str = "gto",
    run_config: Optional[RunConfig] = None,
    **overrides,
) -> SimulationResult:
    """Simulate ``benchmark`` under ``scheduler`` and return the result.

    ``overrides`` are applied on top of ``run_config`` (e.g.
    ``run_benchmark("ATAX", "ciao-c", scale=0.5)``).
    """
    # Canonicalise up front so execution, cache keys and the recorded
    # scheduler_name can never disagree about which policy ran.
    scheduler = canonical_scheduler_name(scheduler)
    config = replace(run_config, **overrides) if run_config is not None else RunConfig(**overrides)
    spec = benchmark if isinstance(benchmark, BenchmarkSpec) else get_benchmark(benchmark)

    model = SyntheticKernelModel(
        spec,
        scale=config.scale,
        seed=config.seed,
        num_ctas=config.num_ctas,
        warps_per_cta=config.warps_per_cta,
    )
    kernel = model.kernel_launch()

    kwargs = _scheduler_kwargs(scheduler, spec, config)
    gpu = GPU(
        config.gpu_config,
        scheduler_factory=lambda: create_scheduler(scheduler, **kwargs),
        enable_shared_cache=uses_shared_cache(scheduler),
        dram_bandwidth_scale=config.dram_bandwidth_scale,
    )
    return gpu.run(kernel, max_cycles=config.max_cycles, scheduler_name=scheduler)


def run_many(
    benchmarks: list[str],
    schedulers: list[str],
    run_config: Optional[RunConfig] = None,
    *,
    workers: Optional[int] = None,
    cache="auto",
    return_stats: bool = False,
    **overrides,
):
    """Run a benchmark x scheduler sweep through the parallel engine.

    Returns ``{benchmark: {scheduler: SimulationResult}}`` — or, when
    ``return_stats`` is true, a ``(results, SweepStats)`` pair so callers can
    surface cache hits and worker counts.

    ``workers=None`` resolves to ``REPRO_WORKERS`` or the CPU count (a
    single worker runs in-process with no pool); results are bit-identical
    for any worker count because every job's seed is fixed at submission.
    ``cache`` is ``"auto"`` (environment-default result cache), ``None``
    (disabled), or an explicit :class:`repro.harness.cache.ResultCache`.
    """
    from repro.harness.parallel import SweepJob, run_jobs

    config = replace(run_config, **overrides) if run_config is not None else RunConfig(**overrides)
    jobs = [
        SweepJob(benchmark, scheduler, config)
        for benchmark in benchmarks
        for scheduler in schedulers
    ]
    outcome = run_jobs(jobs, workers=workers, cache=cache)
    results = outcome.nested()
    if return_stats:
        return results, outcome.stats
    return results
