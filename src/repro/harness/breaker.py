"""Circuit breakers with seeded half-open probing.

Replaces the coordinator's permanent ``fleet.dead`` blacklist (a worker
that ever faltered could never rejoin) and gives the serve layer's
:class:`~repro.serve.queue.BatchQueue` the same protection per backend.

State machine (docs/RESILIENCE.md has the operator's view):

``closed``
    Normal operation — calls flow.  Failures accumulate; hitting
    ``failure_threshold`` consecutive failures trips the breaker open.
``open``
    Calls are refused until the probe deadline.  The deadline backs off
    exponentially with the number of times the breaker has opened, with
    a *seeded* jitter draw (the same blake2b unit-draw the chaos
    :class:`~repro.harness.faults.FaultPlan` uses) so a fleet of
    coordinators doesn't probe a recovering worker in lock-step.
``half-open``
    Past the deadline, :meth:`CircuitBreaker.allow` admits exactly one
    probe.  Success closes the breaker (a restarted worker rejoins);
    failure re-opens it with a longer deadline.

A success resets the consecutive-failure count but deliberately *not*
the open count: a target that keeps passing probes and then failing
again (e.g. a worker that is reachable but fails audits) backs off
further each round instead of oscillating at full speed.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.harness.faults import _unit_draw

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitOpenError(RuntimeError):
    """The target's circuit is open; the call was refused, not attempted."""


class CircuitBreaker:
    """A closed → open → half-open breaker guarding one unreliable target.

    Thread-safe; ``clock`` is injectable (tests drive it manually) and
    defaults to :func:`time.monotonic`.
    """

    def __init__(
        self,
        key: str = "",
        *,
        seed: int = 0,
        failure_threshold: int = 1,
        probe_base: float = 0.05,
        probe_factor: float = 2.0,
        probe_max: float = 30.0,
        jitter: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if probe_base < 0 or probe_max < 0:
            raise ValueError("probe delays must be >= 0")
        if probe_factor < 1.0:
            raise ValueError("probe_factor must be >= 1.0")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self.key = key
        self.seed = int(seed)
        self.failure_threshold = int(failure_threshold)
        self.probe_base = float(probe_base)
        self.probe_factor = float(probe_factor)
        self.probe_max = float(probe_max)
        self.jitter = float(jitter)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive failures while closed
        self._opens = 0  # times opened since construction (backoff exponent)
        self._probe_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def opens(self) -> int:
        with self._lock:
            return self._opens

    def probe_delay(self, opens: int) -> float:
        """The seeded open-duration before probe number ``opens``."""
        base = min(
            self.probe_max,
            self.probe_base * self.probe_factor ** max(0, opens - 1),
        )
        if not self.jitter or not base:
            return base
        draw = _unit_draw(self.seed, "probe", self.key, opens)
        return base * (1.0 + self.jitter * draw)

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In ``open`` state past the probe deadline this transitions to
        ``half-open`` and returns True exactly once — the caller *must*
        follow up with :meth:`record_success` or :meth:`record_failure`,
        otherwise the breaker stays half-open refusing everything.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN and self._clock() >= self._probe_at:
                self._state = HALF_OPEN
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            # _opens intentionally survives: see the module docstring.

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN or self._failures >= self.failure_threshold:
                self._opens += 1
                self._probe_at = self._clock() + self.probe_delay(self._opens)
                self._state = OPEN
                self._failures = 0

    def seconds_until_probe(self) -> float:
        """How long until the next probe is admitted (0 when not open)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self._probe_at - self._clock())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(key={self.key!r}, state={self.state!r}, "
            f"opens={self.opens})"
        )
