"""Parallel sweep engine: fan (benchmark, scheduler, config) jobs out.

This module is the single execution substrate behind :func:`run_many`, every
``figN_*`` / ``tableN_*`` experiment and the ``repro`` CLI.  A sweep is a
list of :class:`repro.api.SimulationRequest` values — the canonical job
descriptor shared with ``run_benchmark``, the result cache and the CLI
(:data:`SweepJob` remains as a compatibility alias) — and :func:`run_jobs`
executes them:

1. every job's cache key is computed up front (see
   :mod:`repro.harness.cache`) and hits are served without simulating;
2. the remaining jobs run on a ``ProcessPoolExecutor`` when ``workers > 1``,
   or in-process (no pool, no pickling) when ``workers == 1``;
3. fresh results are written back to the cache (in the versioned
   ``SimulationResult.to_dict`` schema) and the outcome is returned in
   submission order together with :class:`SweepStats`, which is also
   appended to the bench ledger (:mod:`repro.harness.ledger`).

Determinism: a job's seed is part of its ``RunConfig`` and is fixed at
submission time, never derived from worker identity or execution order, so a
sweep returns bit-identical :class:`SimulationResult` objects whatever the
worker count.  :func:`derive_seed` builds stable per-job seeds for callers
who want decorrelated seeds across a sweep (e.g. ``repro sweep
--seed-per-job``).

Fault tolerance (see docs/RESILIENCE.md): ``on_error`` selects what a
failing job does to the sweep — ``"raise"`` (the default, and the historic
behavior) aborts with :class:`SweepError`, ``"skip"`` records a typed
:class:`JobFailure` in the failed job's result slot and keeps going, and
``"retry"`` re-dispatches failed jobs under a :class:`RetryPolicy`
(bounded attempts, exponential backoff with deterministic seeded jitter).
The policy also carries per-job ``timeout_seconds`` and a
``straggler_seconds`` deadline past which a slow job is re-dispatched to an
idle worker with first-result-wins — safe by construction because results
are bit-identical whichever dispatch finishes.  A crashed worker
(``BrokenProcessPool``) respawns the pool and re-dispatches only the lost
jobs; ``manifest=`` appends per-job outcomes to an append-only checkpoint
file (:mod:`repro.harness.manifest`) so an interrupted sweep resumes by
re-running only what is not already ``done``-and-cached.

Backends: each request carries its own ``backend`` selection; ``run_jobs``'s
``backend`` argument fills it in for requests that left it ``None``, and the
environment default (``REPRO_BACKEND``) applies last, inside the worker.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

from repro.api import AnyRequest, MultiTenantRequest, SimulationRequest
from repro.gpu.gpu import SimulationResult
from repro.harness.cache import ResultCache
from repro.harness.faults import _unit_draw, set_current_attempt
from repro.harness.ledger import record_sweep
from repro.harness.manifest import ManifestEntry, append_outcome, scan_manifest
from repro.harness.runner import run_benchmark

#: Compatibility alias: the engine's job type *is* the canonical request.
SweepJob = SimulationRequest

#: ``cache`` argument sentinel: use the environment-default cache.
AUTO_CACHE = "auto"

#: Legal ``on_error`` modes of :func:`run_jobs`.
ON_ERROR_MODES = ("raise", "skip", "retry")

#: Version of the :meth:`RetryPolicy.to_dict` wire form.
RETRY_SCHEMA = 1


class SweepError(RuntimeError):
    """A job of a sweep failed; carries the offending job for context.

    On the pool path the error also carries how much of the sweep survived:
    ``completed`` results already landed (and were written to the cache)
    before the failure, and ``outstanding`` futures were cancelled or
    abandoned so the pool shuts down without orphaned workers.
    """

    def __init__(
        self,
        job: AnyRequest,
        cause: BaseException,
        *,
        completed: Optional[int] = None,
        outstanding: Optional[int] = None,
    ) -> None:
        message = (
            f"sweep job failed: benchmark={job.benchmark_name!r} "
            f"scheduler={job.scheduler!r} ({type(cause).__name__}: {cause})"
        )
        if completed is not None:
            message += (
                f"; {completed} job(s) had already completed (results "
                f"cached), {outstanding or 0} outstanding dispatch(es) "
                "cancelled"
            )
        super().__init__(message)
        self.job = job
        self.cause = cause
        self.completed = completed
        self.outstanding = outstanding


@dataclass(frozen=True)
class RetryPolicy:
    """Retry / timeout / straggler policy of one sweep (or serve queue).

    Backoff before retry ``n`` (1-based) is ``backoff_base *
    backoff_factor**(n-1)`` scaled by a deterministic seeded jitter in
    ``[1-jitter, 1+jitter]`` — the jitter is a pure function of
    ``(seed, job key, n)``, so two runs of the same sweep back off
    identically (no wall-clock or RNG state leaks into scheduling).
    """

    #: Most executions any one job may consume in ``on_error="retry"`` mode
    #: (the first attempt included); also bounds worker-crash re-dispatch.
    max_attempts: int = 3
    #: First backoff delay, in seconds.
    backoff_base: float = 0.05
    #: Multiplier applied per further retry (exponential backoff).
    backoff_factor: float = 2.0
    #: Fractional jitter amplitude (0 disables jitter).
    jitter: float = 0.5
    #: Jitter stream seed.
    seed: int = 0
    #: Per-job execution deadline; a dispatch running longer counts as
    #: timed out and is abandoned (pool path only — an in-process job
    #: cannot be interrupted).
    timeout_seconds: Optional[float] = None
    #: Straggler deadline: a dispatch still running after this long is
    #: duplicated onto an idle worker, first result wins (pool path only).
    straggler_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base must be >= 0 and backoff_factor >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        if self.straggler_seconds is not None and self.straggler_seconds <= 0:
            raise ValueError("straggler_seconds must be positive")

    def backoff_seconds(self, key: str, retry: int) -> float:
        """Deterministic backoff before retry ``retry`` (1-based) of ``key``."""
        base = self.backoff_base * self.backoff_factor ** max(0, retry - 1)
        if not self.jitter or not base:
            return base
        draw = _unit_draw(self.seed, "backoff", key, retry)
        return base * (1.0 + self.jitter * (2.0 * draw - 1.0))

    # -- wire format ---------------------------------------------------
    def to_dict(self) -> dict:
        """Versioned JSON-safe form (shipped to ``repro worker`` processes)."""
        from dataclasses import asdict

        return {
            "schema": RETRY_SCHEMA,
            "kind": "RetryPolicy",
            "data": asdict(self),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RetryPolicy":
        """Inverse of :meth:`to_dict` (raises ``ValueError`` on drift)."""
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"RetryPolicy payload must be a mapping, got {type(payload).__name__}"
            )
        if payload.get("kind") != "RetryPolicy" or payload.get("schema") != RETRY_SCHEMA:
            raise ValueError(
                f"unsupported RetryPolicy payload (kind={payload.get('kind')!r}, "
                f"schema={payload.get('schema')!r})"
            )
        data = payload.get("data")
        if not isinstance(data, Mapping):
            raise ValueError("RetryPolicy payload carries no data mapping")
        from dataclasses import fields as dc_fields

        known = {f.name for f in dc_fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown RetryPolicy fields {unknown}")
        return cls(**data)


@dataclass
class JobFailure:
    """Typed terminal failure of one sweep job (``on_error != "raise"``).

    Occupies the failed job's slot in :attr:`SweepOutcome.results`, in
    submission order, so callers can tell exactly which jobs failed and
    why without losing the successes around them.
    """

    job: AnyRequest
    error: str
    error_type: str
    attempts: int = 1
    timed_out: bool = False

    @property
    def benchmark_name(self) -> str:
        return self.job.benchmark_name

    @property
    def scheduler(self) -> str:
        return self.job.scheduler


@dataclass
class SweepStats:
    """Execution statistics of one sweep (surfaced by the CLI / reporting)."""

    jobs: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    #: Resolved backend name(s) the sweep's jobs ran on (comma-joined when
    #: a sweep mixes engines).
    backend: str = ""
    #: Jobs that ended in a terminal :class:`JobFailure`.
    failed: int = 0
    #: Extra dispatches beyond each job's first (retries after failures,
    #: straggler duplicates, crash re-dispatches).
    retried: int = 0
    #: Dispatches abandoned past ``RetryPolicy.timeout_seconds``.
    timed_out: int = 0
    #: Worker-returned jobs re-executed locally for verification
    #: (``run_distributed(..., audit_rate=...)``; docs/RESILIENCE.md).
    audited: int = 0
    #: Audits whose local re-execution digest diverged from the worker's —
    #: each one discarded that worker's outcomes and re-dispatched them.
    audit_failures: int = 0
    #: Worker outcome rows rejected because their payload did not match
    #: their own content digest (corruption in transit).
    corrupt: int = 0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.jobs if self.jobs else 0.0


@dataclass
class SweepOutcome:
    """Results of a sweep, aligned with the submitted job list.

    With ``on_error="skip"`` / ``"retry"`` a slot holds a
    :class:`JobFailure` instead of a :class:`SimulationResult` when that
    job exhausted its attempts; :meth:`failures` collects them.
    """

    jobs: list[SimulationRequest]
    results: list[SimulationResult]
    stats: SweepStats
    #: Corrupt manifest lines skipped while (re)loading this sweep's
    #: checkpoint manifest — nonzero means the manifest has damage that
    #: ``repro cache fsck --repair`` can remove.
    manifest_skipped: int = 0

    def __iter__(self):
        return iter(zip(self.jobs, self.results))

    @property
    def ok(self) -> bool:
        """Whether every job produced a result (no failure slots)."""
        return not any(isinstance(r, JobFailure) for r in self.results)

    def failures(self) -> list[JobFailure]:
        """The :class:`JobFailure` slots, in submission order."""
        return [r for r in self.results if isinstance(r, JobFailure)]

    def nested(self) -> dict[str, dict[str, SimulationResult]]:
        """``{benchmark: {scheduler: result}}`` view (``run_many`` shape)."""
        table: dict[str, dict[str, SimulationResult]] = {}
        for job, result in self:
            table.setdefault(job.benchmark_name, {})[job.scheduler] = result
        return table


def derive_seed(base_seed: int, *parts: object) -> int:
    """Deterministic per-job seed from a base seed and identifying parts.

    Stable across processes and Python versions (unlike ``hash``), so a
    sweep that decorrelates seeds per (benchmark, scheduler) still produces
    reproducible results.

    Each part is length-prefixed before hashing, so the part *boundaries*
    are part of the identity: ``derive_seed(s, "a:b", "c")`` and
    ``derive_seed(s, "a", "b:c")`` draw independent seeds.  (The historic
    ``":".join`` framing collapsed them — and the ``--tenants`` grammar
    puts ``:`` inside part strings — silently correlating seed streams.)
    """
    hasher = hashlib.blake2b(digest_size=8)
    for part in (base_seed, *parts):
        blob = str(part).encode()
        hasher.update(len(blob).to_bytes(4, "big"))
        hasher.update(blob)
    return int.from_bytes(hasher.digest(), "big") % (2**31 - 1) + 1


def parse_positive_int(text: object, *, what: str) -> int:
    """Parse ``text`` as a positive integer or fail with a one-line error.

    Shared by every knob that accepts a count from the environment or a
    worker roster (``REPRO_WORKERS``, ``--workers-at`` ports, ...) so a
    typo'd value dies with a message naming the knob instead of a bare
    ``ValueError`` traceback.
    """
    try:
        value = int(str(text).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{what} must be a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{what} must be a positive integer, got {text!r}")
    return value


def resolve_workers(workers: Optional[int], n_jobs: int) -> int:
    """Turn a ``workers`` argument into a concrete worker count.

    ``None`` means "auto": honour ``REPRO_WORKERS`` when set, else use the
    machine's CPU count.  The result is clamped to the job count (no idle
    processes) and floored at one.  A non-numeric or non-positive
    ``REPRO_WORKERS`` is rejected with an error naming the variable.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        workers = (
            parse_positive_int(env, what="REPRO_WORKERS")
            if env
            else (os.cpu_count() or 1)
        )
    return max(1, min(int(workers), max(1, n_jobs)))


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic partition of a job list by content-addressed cache key.

    The remote runner (:mod:`repro.harness.distributed`) shards a sweep
    across worker processes; the assignment must be a pure function of the
    jobs themselves — never of roster order arrival times or wall clocks —
    so re-planning the same sweep (a resume, a re-dispatch after a lost
    worker) always reproduces the same shard membership.  Each job goes to
    shard ``int(key[:16], 16) % n_shards``; keyless jobs (no cache, no
    manifest) fall back to their submission index.

    ``shards`` holds, per shard, the tuple of *positions into the planned
    job list* (not the jobs themselves), preserving submission order inside
    every shard.
    """

    n_shards: int
    shards: tuple[tuple[int, ...], ...]

    @classmethod
    def build(
        cls, keys: Sequence[Optional[str]], n_shards: int
    ) -> "ShardPlan":
        n_shards = max(1, int(n_shards))
        members: list[list[int]] = [[] for _ in range(n_shards)]
        for position, key in enumerate(keys):
            if key:
                shard = int(key[:16], 16) % n_shards
            else:
                shard = position % n_shards
            members[shard].append(position)
        return cls(
            n_shards=n_shards,
            shards=tuple(tuple(m) for m in members),
        )

    def chunks(self, chunk_size: int) -> list[tuple[int, tuple[int, ...]]]:
        """Split every shard into ``(shard_index, positions)`` dispatch units.

        Chunking bounds how much work one HTTP round trip carries (and how
        much a lost worker forfeits); order is shard-major then submission
        order, so the chunk list is as deterministic as the plan itself.
        """
        chunk_size = int(chunk_size)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        out: list[tuple[int, tuple[int, ...]]] = []
        for shard_index, positions in enumerate(self.shards):
            for start in range(0, len(positions), chunk_size):
                out.append((shard_index, positions[start:start + chunk_size]))
        return out


def _execute(job: AnyRequest, attempt: int = 1) -> SimulationResult:
    """Worker entry point: run one job (module-level so it pickles).

    ``attempt`` is the dispatch number of this execution, advertised to the
    fault-injection layer (:mod:`repro.harness.faults`) so a seeded chaos
    schedule advances with retries instead of replaying the same fault.
    """
    set_current_attempt(attempt)
    if isinstance(job, MultiTenantRequest):
        from repro.api import execute

        return execute(job)
    return run_benchmark(job.benchmark, job.scheduler, job.run_config,
                         backend=job.backend)


def _decode_cached(payload: Any) -> Optional[SimulationResult]:
    """Reconstruct a cached result; ``None`` (treated as a miss) on drift.

    Delegates to the one shared decoder so ``run_jobs`` and ``run_batch``
    can never disagree on what counts as a cache hit.
    """
    from repro.api import _decode_cached_result

    return _decode_cached_result(payload)


def _resolved_backends(jobs: Sequence[AnyRequest]) -> str:
    """Comma-joined resolved backend names of ``jobs`` ("" when unknown)."""
    try:
        return ",".join(sorted({job.resolved_backend() for job in jobs}))
    except KeyError:
        return ""


def _pool_context():
    """Prefer fork (cheap, inherits ``sys.path``) where available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _force_shutdown(pool: ProcessPoolExecutor) -> None:
    """Shut ``pool`` down without waiting for hung or abandoned workers.

    ``shutdown(wait=True)`` would block on a dispatch we already abandoned
    (a timed-out or hanging job); instead cancel what never started and
    terminate the worker processes so no orphans outlive the sweep.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(timeout=2.0)
        except Exception:
            pass


class _PendingJob:
    """Book-keeping of one not-yet-settled job on the pool path."""

    __slots__ = (
        "index", "job", "key", "fail_count", "dispatches", "inflight",
        "not_before", "running_since", "settled", "last_error", "timed_out",
    )

    def __init__(self, index: int, job: AnyRequest, key: Optional[str]) -> None:
        self.index = index
        self.job = job
        self.key = key
        self.fail_count = 0      # job-level failures consumed
        self.dispatches = 0      # total executions started (fault dimension)
        self.inflight: set = set()
        self.not_before: Optional[float] = None  # backoff gate (monotonic)
        #: When the current attempt actually started *executing* (a future
        #: can sit queued behind abandoned hung workers; deadlines must not
        #: run while it waits).  ``None`` until a dispatch reports running.
        self.running_since: Optional[float] = None
        self.settled = False
        self.last_error: Optional[BaseException] = None
        self.timed_out = False

    def backoff_key(self) -> str:
        return self.key or f"index:{self.index}"


class _PoolRunner:
    """The fault-tolerant process-pool execution loop of :func:`run_jobs`."""

    #: Poll granularity while deadlines (timeouts, backoff, stragglers) are
    #: armed; without any, the loop blocks until a future completes.
    TICK = 0.05

    def __init__(
        self,
        pending: list[tuple[int, AnyRequest, Optional[str]]],
        *,
        stats: SweepStats,
        results: list,
        cache: Optional[ResultCache],
        manifest_path: Optional[Path],
        on_error: str,
        policy: RetryPolicy,
        attempts_allowed: int,
    ) -> None:
        self.states = [_PendingJob(i, job, key) for i, job, key in pending]
        self.stats = stats
        self.results = results
        self.cache = cache
        self.manifest_path = manifest_path
        self.on_error = on_error
        self.policy = policy
        self.attempts_allowed = attempts_allowed
        #: Crash re-dispatch is infrastructure recovery, not a job retry,
        #: but still bounded so a deterministic crasher cannot loop forever.
        self.max_dispatches = max(attempts_allowed, 3)
        self.ready: deque[_PendingJob] = deque(self.states)
        self.waiting: list[_PendingJob] = []
        self.future_map: dict = {}
        self.abandoned: set = set()
        self.unsettled = len(self.states)
        self.pool: Optional[ProcessPoolExecutor] = None

    # -- dispatch ------------------------------------------------------
    def _dispatch(self, state: _PendingJob, *, duplicate: bool = False) -> None:
        state.dispatches += 1
        future = self.pool.submit(_execute, state.job, state.dispatches)
        self.future_map[future] = state
        state.inflight.add(future)
        state.not_before = None
        if not duplicate:
            state.running_since = None

    def _busy_workers(self) -> int:
        """Worker slots in use: live dispatches + abandoned-but-running."""
        self.abandoned = {f for f in self.abandoned if not f.done()}
        return len(self.future_map) + len(self.abandoned)

    def _observe_running(self, now: float) -> None:
        """Start each attempt's deadline clock when it actually executes."""
        for state in self.states:
            if state.settled or state.running_since is not None:
                continue
            if any(f.running() or f.done() for f in state.inflight):
                state.running_since = now

    def _record_manifest(self, state: _PendingJob, status: str, error: str = "") -> None:
        if self.manifest_path is None or state.key is None:
            return
        try:
            backend = state.job.resolved_backend()
        except KeyError:
            backend = str(state.job.backend or "")
        append_outcome(self.manifest_path, ManifestEntry(
            key=state.key,
            status=status,
            attempts=state.dispatches,
            benchmark=state.job.benchmark_name,
            scheduler=state.job.scheduler,
            backend=backend,
            error=error,
        ))

    # -- settlement ----------------------------------------------------
    def _abandon_inflight(self, state: _PendingJob) -> None:
        for future in state.inflight:
            self.future_map.pop(future, None)
            if not future.cancel():
                self.abandoned.add(future)
        state.inflight.clear()

    def _settle_success(self, state: _PendingJob, result: SimulationResult) -> None:
        state.settled = True
        self.unsettled -= 1
        self.results[state.index] = result
        if self.cache is not None and state.key is not None:
            self.cache.put(state.key, result.to_dict())
        self._record_manifest(state, "done")
        self._abandon_inflight(state)  # first result wins; drop any duplicate

    def _settle_failure(self, state: _PendingJob, exc: BaseException) -> None:
        state.settled = True
        self.unsettled -= 1
        self.stats.failed += 1
        self._abandon_inflight(state)
        status = "timeout" if state.timed_out else "failed"
        self._record_manifest(state, status, error=f"{type(exc).__name__}: {exc}")
        if self.on_error == "raise":
            completed = sum(
                1 for s in self.states
                if s.settled and not isinstance(self.results[s.index], JobFailure)
                and self.results[s.index] is not None
            )
            outstanding = len(self.future_map) + len(self.ready) + len(self.waiting)
            _force_shutdown(self.pool)
            raise SweepError(
                state.job, exc, completed=completed, outstanding=outstanding
            ) from exc
        self.results[state.index] = JobFailure(
            job=state.job,
            error=str(exc),
            error_type=type(exc).__name__,
            attempts=max(1, state.dispatches),
            timed_out=state.timed_out,
        )

    def _fail_attempt(
        self, state: _PendingJob, exc: BaseException, *, timed_out: bool = False
    ) -> None:
        state.last_error = exc
        state.timed_out = state.timed_out or timed_out
        state.fail_count += 1
        if state.inflight:
            # A duplicate dispatch of the same job is still running and may
            # yet win; hold judgement until the last dispatch settles.
            return
        if (
            self.on_error == "retry"
            and state.fail_count < self.attempts_allowed
            and state.dispatches < self.max_dispatches
        ):
            self.stats.retried += 1
            delay = self.policy.backoff_seconds(state.backoff_key(), state.fail_count)
            state.not_before = time.monotonic() + delay
            self.waiting.append(state)
            return
        self._settle_failure(state, exc)

    # -- pool-break recovery -------------------------------------------
    def _handle_pool_break(
        self, broken_states: list, exc: BaseException
    ) -> None:
        lost = sorted(
            {
                s.index: s
                for s in (*self.future_map.values(), *broken_states)
                if not s.settled
            }.values(),
            key=lambda s: s.index,
        )
        self.future_map.clear()
        for state in lost:
            state.inflight.clear()
        broken_pool, self.pool = self.pool, None
        broken_pool.shutdown(wait=False, cancel_futures=True)
        if self.on_error == "raise":
            completed = sum(1 for s in self.states if s.settled)
            named = lost[0] if lost else broken_states[0]
            raise SweepError(
                named.job,
                RuntimeError(
                    f"a worker process crashed while running this job "
                    f"({type(exc).__name__}: {exc})"
                ),
                completed=completed,
                outstanding=len(lost) + len(self.ready) + len(self.waiting),
            ) from exc
        # Respawn and re-dispatch only the lost jobs.  A crash consumes no
        # retry attempt (the job itself did not fail) but every re-dispatch
        # counts against max_dispatches, bounding crash loops.
        self.pool = ProcessPoolExecutor(
            max_workers=self.stats.workers, mp_context=_pool_context()
        )
        for state in lost:
            if state.dispatches >= self.max_dispatches:
                state.last_error = exc
                self._settle_failure(state, RuntimeError(
                    f"worker crashed on every dispatch "
                    f"({state.dispatches} of them): {exc}"
                ))
            else:
                self.stats.retried += 1
                self.ready.append(state)

    # -- deadline sweeps -----------------------------------------------
    def _check_timeouts(self, now: float) -> None:
        if self.policy.timeout_seconds is None:
            return
        for state in self.states:
            if state.settled or not state.inflight:
                continue
            if state.running_since is None:
                continue  # still queued; the deadline clock has not started
            if now - state.running_since <= self.policy.timeout_seconds:
                continue
            self.stats.timed_out += 1
            self._abandon_inflight(state)
            self._fail_attempt(
                state,
                TimeoutError(
                    f"job exceeded its {self.policy.timeout_seconds}s deadline"
                ),
                timed_out=True,
            )

    def _check_stragglers(self, now: float) -> None:
        if self.policy.straggler_seconds is None:
            return
        for state in self.states:
            if state.settled or len(state.inflight) != 1:
                continue
            if state.running_since is None:
                continue  # queued, not slow
            if now - state.running_since <= self.policy.straggler_seconds:
                continue
            if self._busy_workers() >= self.stats.workers:
                return  # no idle worker to duplicate onto
            if state.dispatches >= self.max_dispatches:
                continue
            self.stats.retried += 1
            self._dispatch(state, duplicate=True)

    # -- the loop ------------------------------------------------------
    def run(self) -> None:
        self.pool = ProcessPoolExecutor(
            max_workers=self.stats.workers, mp_context=_pool_context()
        )
        try:
            while self.unsettled:
                now = time.monotonic()
                for state in list(self.waiting):
                    if state.not_before is None or now >= state.not_before:
                        self.waiting.remove(state)
                        self.ready.append(state)
                while self.ready and self._busy_workers() < self.stats.workers:
                    self._dispatch(self.ready.popleft())
                self._observe_running(now)
                self._check_stragglers(now)

                if not self.future_map:
                    if not self.waiting and not self.ready:
                        # Engine invariant: every unsettled job is either
                        # dispatched, ready or backing off.  Failing loud
                        # beats silently returning None result slots.
                        raise RuntimeError(
                            f"sweep engine lost track of {self.unsettled} "
                            "unsettled job(s)"
                        )
                    if self.ready and self._busy_workers() >= self.stats.workers:
                        # Every worker is stuck on an abandoned (timed-out)
                        # call and no live dispatch exists: recycle the
                        # pool so pending work is not hostage to hung jobs.
                        stuck, self.pool = self.pool, ProcessPoolExecutor(
                            max_workers=self.stats.workers,
                            mp_context=_pool_context(),
                        )
                        _force_shutdown(stuck)
                        self.abandoned.clear()
                        continue
                    time.sleep(self.TICK)
                    continue
                ticking = (
                    self.policy.timeout_seconds is not None
                    or self.policy.straggler_seconds is not None
                    or bool(self.waiting)
                    or bool(self.ready)
                )
                done, _ = wait(
                    set(self.future_map),
                    timeout=self.TICK if ticking else None,
                    return_when=FIRST_COMPLETED,
                )
                broken_exc: Optional[BaseException] = None
                broken_states: list[_PendingJob] = []
                for future in done:
                    state = self.future_map.pop(future, None)
                    if state is None:
                        continue
                    state.inflight.discard(future)
                    if state.settled:
                        continue
                    exc = future.exception()
                    if isinstance(exc, BrokenProcessPool):
                        # A worker crash fails every in-flight future at
                        # once; collect them all before recovering.
                        broken_exc = exc
                        broken_states.append(state)
                        continue
                    if exc is None:
                        self._settle_success(state, future.result())
                    else:
                        self._fail_attempt(state, exc)
                if broken_exc is not None:
                    self._handle_pool_break(broken_states, broken_exc)
                    continue
                self._check_timeouts(time.monotonic())
        finally:
            if self.pool is not None:
                if any(not f.done() for f in self.abandoned):
                    _force_shutdown(self.pool)
                else:
                    self.pool.shutdown(wait=True)


def _run_inprocess_resilient(
    pending: list[tuple[int, AnyRequest, Optional[str]]],
    *,
    stats: SweepStats,
    results: list,
    cache: Optional[ResultCache],
    manifest_path: Optional[Path],
    on_error: str,
    policy: RetryPolicy,
    attempts_allowed: int,
) -> None:
    """The in-process (workers == 1) retry/skip loop.

    Timeouts and straggler duplicates need a pool — a job running in this
    very process cannot be interrupted — so only the retry/backoff half of
    the policy applies here (documented in docs/RESILIENCE.md).
    """
    for index, job, key in pending:
        attempt = 0
        while True:
            attempt += 1
            try:
                result = _execute(job, attempt)
            except Exception as exc:
                if on_error == "retry" and attempt < attempts_allowed:
                    stats.retried += 1
                    time.sleep(
                        policy.backoff_seconds(key or f"index:{index}", attempt)
                    )
                    continue
                stats.failed += 1
                if manifest_path is not None and key is not None:
                    append_outcome(manifest_path, ManifestEntry(
                        key=key, status="failed", attempts=attempt,
                        benchmark=job.benchmark_name, scheduler=job.scheduler,
                        error=f"{type(exc).__name__}: {exc}",
                    ))
                if on_error == "raise":
                    raise SweepError(job, exc) from exc
                results[index] = JobFailure(
                    job=job, error=str(exc), error_type=type(exc).__name__,
                    attempts=attempt,
                )
                break
            results[index] = result
            if cache is not None and key is not None:
                cache.put(key, result.to_dict())
            if manifest_path is not None and key is not None:
                append_outcome(manifest_path, ManifestEntry(
                    key=key, status="done", attempts=attempt,
                    benchmark=job.benchmark_name, scheduler=job.scheduler,
                ))
            break


def run_jobs(
    jobs: Sequence[AnyRequest],
    *,
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, None] = AUTO_CACHE,
    backend: Optional[str] = None,
    on_error: str = "raise",
    retry: Optional[RetryPolicy] = None,
    manifest: Union[str, Path, None] = None,
) -> SweepOutcome:
    """Execute ``jobs`` and return results in submission order.

    Jobs are :class:`SimulationRequest` values, :class:`MultiTenantRequest`
    values (co-located tenants, lock-step only), or a mix of both.
    ``cache`` is :data:`AUTO_CACHE` (environment default), ``None`` (caching
    off for this sweep), or an explicit :class:`ResultCache`.  Cache lookups
    and writes happen in the parent process; workers only ever simulate.
    ``backend`` selects the engine for jobs that did not pin one themselves
    (multi-tenant jobs with no pinned backend keep their ``lockstep``
    default — the serialized engine cannot run them).

    ``on_error`` picks the failure mode (:data:`ON_ERROR_MODES`):
    ``"raise"`` aborts on the first failure (historic behavior, the
    default), ``"skip"`` records a :class:`JobFailure` in the failed job's
    result slot and continues, ``"retry"`` re-dispatches failures under
    ``retry`` (a :class:`RetryPolicy`; a default-constructed one applies
    when omitted).  The policy's ``timeout_seconds`` / ``straggler_seconds``
    deadlines apply on the pool path in every mode.

    ``manifest`` names an append-only checkpoint file
    (:mod:`repro.harness.manifest`): per-job outcomes are appended as they
    settle, and — together with the content-addressed result cache — a
    re-run of the same sweep skips everything already completed and
    re-executes only failures, timeouts and never-ran jobs.
    """
    if on_error not in ON_ERROR_MODES:
        raise ValueError(
            f"unknown on_error mode {on_error!r} (choose from {ON_ERROR_MODES})"
        )
    policy = retry if retry is not None else RetryPolicy()
    attempts_allowed = policy.max_attempts if on_error == "retry" else 1

    jobs = list(jobs)
    if backend is not None:
        jobs = [
            job
            if job.backend is not None or isinstance(job, MultiTenantRequest)
            else replace(job, backend=backend)
            for job in jobs
        ]
    if isinstance(cache, str):
        if cache != AUTO_CACHE:
            raise ValueError(f"unknown cache mode {cache!r}")
        cache = ResultCache.from_env()
    manifest_path = Path(manifest) if manifest is not None else None
    manifest_skipped = 0
    if manifest_path is not None:
        # Touch-load for the resume contract: malformed files surface here,
        # and "done" keys whose results the cache still holds are served as
        # plain cache hits below (the manifest stores statuses, the cache
        # stores results — see repro.harness.manifest).  Damaged lines are
        # counted onto the outcome so sweep summaries can warn about them.
        manifest_skipped = scan_manifest(manifest_path)[1]

    start = time.perf_counter()
    results: list[Optional[SimulationResult]] = [None] * len(jobs)
    pending: list[tuple[int, AnyRequest, Optional[str]]] = []

    stats = SweepStats(jobs=len(jobs), backend=_resolved_backends(jobs))
    sweep_keys: list[str] = []
    for index, job in enumerate(jobs):
        key = None
        if cache is not None or manifest_path is not None:
            try:
                key = job.cache_key()
                sweep_keys.append(key)
            except Exception as exc:
                # Same contract as execution failures: an unknown benchmark
                # or scheduler surfaces as SweepError whether or not a cache
                # is attached — or as a JobFailure in skip/retry mode
                # (retrying a structurally-invalid job cannot help).
                if on_error == "raise":
                    raise SweepError(job, exc) from exc
                stats.failed += 1
                results[index] = JobFailure(
                    job=job, error=str(exc), error_type=type(exc).__name__,
                )
                continue
        if cache is not None:
            hit = _decode_cached(cache.get(key))
            if hit is not None:
                results[index] = hit
                stats.cache_hits += 1
                continue
        pending.append((index, job, key))

    stats.executed = len(pending)
    stats.workers = resolve_workers(workers, len(pending))

    if stats.workers <= 1:
        if pending:
            if on_error == "raise" and attempts_allowed == 1:
                # One repro.api.run_batch call: jobs are grouped per engine
                # so per-kernel setup (the vector engine's trace interning)
                # amortises across the sweep instead of per job.  The cache
                # is handed through so completed results are written as
                # they land — a failing job never discards the work done
                # before it — and the on_result hook checkpoints each
                # completion into the manifest as it happens.
                from repro.api import BatchExecutionError, run_batch

                on_result = None
                if manifest_path is not None:
                    keys = {i: key for i, (_, _, key) in enumerate(pending)}

                    def on_result(batch_index, job, _result):
                        key = keys.get(batch_index)
                        if key is None:
                            return
                        append_outcome(manifest_path, ManifestEntry(
                            key=key, status="done",
                            benchmark=job.benchmark_name,
                            scheduler=job.scheduler,
                        ))

                try:
                    outcomes = run_batch(
                        [job for _, job, _ in pending], cache=cache,
                        on_result=on_result,
                    )
                except BatchExecutionError as exc:
                    if manifest_path is not None:
                        try:
                            append_outcome(manifest_path, ManifestEntry(
                                key=exc.request.cache_key(), status="failed",
                                benchmark=exc.request.benchmark_name,
                                scheduler=exc.request.scheduler,
                                error=str(exc.__cause__ or exc),
                            ))
                        except Exception:
                            pass
                    raise SweepError(exc.request, exc.__cause__ or exc) from exc
                except Exception as exc:
                    raise SweepError(pending[0][1], exc) from exc
                for (index, _job, _key), result in zip(pending, outcomes):
                    results[index] = result
            else:
                _run_inprocess_resilient(
                    pending,
                    stats=stats,
                    results=results,
                    cache=cache,
                    manifest_path=manifest_path,
                    on_error=on_error,
                    policy=policy,
                    attempts_allowed=attempts_allowed,
                )
    elif pending:
        _PoolRunner(
            pending,
            stats=stats,
            results=results,
            cache=cache,
            manifest_path=manifest_path,
            on_error=on_error,
            policy=policy,
            attempts_allowed=attempts_allowed,
        ).run()

    stats.wall_seconds = time.perf_counter() - start
    try:
        record_sweep(stats, keys=sweep_keys or None)
    except Exception:
        pass  # the ledger is best-effort; never fail a sweep over it
    return SweepOutcome(
        jobs=jobs,
        results=results,
        stats=stats,
        manifest_skipped=manifest_skipped,
    )
