"""Parallel sweep engine: fan (benchmark, scheduler, config) jobs out.

This module is the single execution substrate behind :func:`run_many`, every
``figN_*`` / ``tableN_*`` experiment and the ``repro`` CLI.  A sweep is a
list of :class:`repro.api.SimulationRequest` values — the canonical job
descriptor shared with ``run_benchmark``, the result cache and the CLI
(:data:`SweepJob` remains as a compatibility alias) — and :func:`run_jobs`
executes them:

1. every job's cache key is computed up front (see
   :mod:`repro.harness.cache`) and hits are served without simulating;
2. the remaining jobs run on a ``ProcessPoolExecutor`` when ``workers > 1``,
   or in-process (no pool, no pickling) when ``workers == 1``;
3. fresh results are written back to the cache (in the versioned
   ``SimulationResult.to_dict`` schema) and the outcome is returned in
   submission order together with :class:`SweepStats`, which is also
   appended to the bench ledger (:mod:`repro.harness.ledger`).

Determinism: a job's seed is part of its ``RunConfig`` and is fixed at
submission time, never derived from worker identity or execution order, so a
sweep returns bit-identical :class:`SimulationResult` objects whatever the
worker count.  :func:`derive_seed` builds stable per-job seeds for callers
who want decorrelated seeds across a sweep (e.g. ``repro sweep
--seed-per-job``).

Backends: each request carries its own ``backend`` selection; ``run_jobs``'s
``backend`` argument fills it in for requests that left it ``None``, and the
environment default (``REPRO_BACKEND``) applies last, inside the worker.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Any, Optional, Sequence, Union

from repro.api import AnyRequest, MultiTenantRequest, SimulationRequest
from repro.gpu.gpu import SimulationResult
from repro.harness.cache import ResultCache
from repro.harness.ledger import record_sweep
from repro.harness.runner import run_benchmark

#: Compatibility alias: the engine's job type *is* the canonical request.
SweepJob = SimulationRequest

#: ``cache`` argument sentinel: use the environment-default cache.
AUTO_CACHE = "auto"


class SweepError(RuntimeError):
    """A job of a sweep failed; carries the offending job for context."""

    def __init__(self, job: AnyRequest, cause: BaseException) -> None:
        super().__init__(
            f"sweep job failed: benchmark={job.benchmark_name!r} "
            f"scheduler={job.scheduler!r} ({type(cause).__name__}: {cause})"
        )
        self.job = job


@dataclass
class SweepStats:
    """Execution statistics of one sweep (surfaced by the CLI / reporting)."""

    jobs: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    #: Resolved backend name(s) the sweep's jobs ran on (comma-joined when
    #: a sweep mixes engines).
    backend: str = ""

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.jobs if self.jobs else 0.0


@dataclass
class SweepOutcome:
    """Results of a sweep, aligned with the submitted job list."""

    jobs: list[SimulationRequest]
    results: list[SimulationResult]
    stats: SweepStats

    def __iter__(self):
        return iter(zip(self.jobs, self.results))

    def nested(self) -> dict[str, dict[str, SimulationResult]]:
        """``{benchmark: {scheduler: result}}`` view (``run_many`` shape)."""
        table: dict[str, dict[str, SimulationResult]] = {}
        for job, result in self:
            table.setdefault(job.benchmark_name, {})[job.scheduler] = result
        return table


def derive_seed(base_seed: int, *parts: object) -> int:
    """Deterministic per-job seed from a base seed and identifying parts.

    Stable across processes and Python versions (unlike ``hash``), so a
    sweep that decorrelates seeds per (benchmark, scheduler) still produces
    reproducible results.
    """
    blob = ":".join([str(base_seed), *[str(p) for p in parts]])
    digest = hashlib.blake2b(blob.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % (2**31 - 1) + 1


def resolve_workers(workers: Optional[int], n_jobs: int) -> int:
    """Turn a ``workers`` argument into a concrete worker count.

    ``None`` means "auto": honour ``REPRO_WORKERS`` when set, else use the
    machine's CPU count.  The result is clamped to the job count (no idle
    processes) and floored at one.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        workers = int(env) if env else (os.cpu_count() or 1)
    return max(1, min(int(workers), max(1, n_jobs)))


def _execute(job: AnyRequest) -> SimulationResult:
    """Worker entry point: run one job (module-level so it pickles)."""
    if isinstance(job, MultiTenantRequest):
        from repro.api import execute

        return execute(job)
    return run_benchmark(job.benchmark, job.scheduler, job.run_config,
                         backend=job.backend)


def _decode_cached(payload: Any) -> Optional[SimulationResult]:
    """Reconstruct a cached result; ``None`` (treated as a miss) on drift.

    Delegates to the one shared decoder so ``run_jobs`` and ``run_batch``
    can never disagree on what counts as a cache hit.
    """
    from repro.api import _decode_cached_result

    return _decode_cached_result(payload)


def _resolved_backends(jobs: Sequence[AnyRequest]) -> str:
    """Comma-joined resolved backend names of ``jobs`` ("" when unknown)."""
    try:
        return ",".join(sorted({job.resolved_backend() for job in jobs}))
    except KeyError:
        return ""


def _pool_context():
    """Prefer fork (cheap, inherits ``sys.path``) where available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_jobs(
    jobs: Sequence[AnyRequest],
    *,
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, None] = AUTO_CACHE,
    backend: Optional[str] = None,
) -> SweepOutcome:
    """Execute ``jobs`` and return results in submission order.

    Jobs are :class:`SimulationRequest` values, :class:`MultiTenantRequest`
    values (co-located tenants, lock-step only), or a mix of both.
    ``cache`` is :data:`AUTO_CACHE` (environment default), ``None`` (caching
    off for this sweep), or an explicit :class:`ResultCache`.  Cache lookups
    and writes happen in the parent process; workers only ever simulate.
    ``backend`` selects the engine for jobs that did not pin one themselves
    (multi-tenant jobs with no pinned backend keep their ``lockstep``
    default — the serialized engine cannot run them).
    """
    jobs = list(jobs)
    if backend is not None:
        jobs = [
            job
            if job.backend is not None or isinstance(job, MultiTenantRequest)
            else replace(job, backend=backend)
            for job in jobs
        ]
    if isinstance(cache, str):
        if cache != AUTO_CACHE:
            raise ValueError(f"unknown cache mode {cache!r}")
        cache = ResultCache.from_env()

    start = time.perf_counter()
    results: list[Optional[SimulationResult]] = [None] * len(jobs)
    pending: list[tuple[int, SimulationRequest, Optional[str]]] = []

    stats = SweepStats(jobs=len(jobs), backend=_resolved_backends(jobs))
    for index, job in enumerate(jobs):
        key = None
        if cache is not None:
            try:
                key = job.cache_key()
            except Exception as exc:
                # Same contract as execution failures: an unknown benchmark
                # or scheduler surfaces as SweepError whether or not a cache
                # is attached.
                raise SweepError(job, exc) from exc
            hit = _decode_cached(cache.get(key))
            if hit is not None:
                results[index] = hit
                stats.cache_hits += 1
                continue
        pending.append((index, job, key))

    stats.executed = len(pending)
    stats.workers = resolve_workers(workers, len(pending))

    if stats.workers <= 1:
        if pending:
            # One repro.api.run_batch call: jobs are grouped per engine so
            # per-kernel setup (the vector engine's trace interning)
            # amortises across the sweep instead of per job.  The cache is
            # handed through so completed results are written as they land
            # — a failing job never discards the work done before it.
            from repro.api import BatchExecutionError, run_batch

            try:
                outcomes = run_batch([job for _, job, _ in pending], cache=cache)
            except BatchExecutionError as exc:
                raise SweepError(exc.request, exc.__cause__ or exc) from exc
            except Exception as exc:
                raise SweepError(pending[0][1], exc) from exc
            for (index, _job, _key), result in zip(pending, outcomes):
                results[index] = result
    elif pending:
        with ProcessPoolExecutor(
            max_workers=stats.workers, mp_context=_pool_context()
        ) as pool:
            futures = {
                pool.submit(_execute, job): (index, job, key)
                for index, job, key in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index, job, key = futures[future]
                    exc = future.exception()
                    if exc is not None:
                        for other in remaining:
                            other.cancel()
                        raise SweepError(job, exc) from exc
                    result = future.result()
                    results[index] = result
                    if cache is not None and key is not None:
                        cache.put(key, result.to_dict())

    stats.wall_seconds = time.perf_counter() - start
    try:
        record_sweep(stats)
    except Exception:
        pass  # the ledger is best-effort; never fail a sweep over it
    return SweepOutcome(jobs=jobs, results=results, stats=stats)
