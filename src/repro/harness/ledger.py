"""Append-only bench ledger: sweep statistics across sessions.

Every sweep the engine runs (:func:`repro.harness.parallel.run_jobs`)
appends one JSON line — wall time, job/cache counters, worker count,
backend — to a small ledger file.  Because the result cache persists across
sessions, the ledger is what makes *warm-vs-cold* performance trends
visible over time: a perf PR can show that a figure regeneration went from
N cold seconds to M warm seconds rather than quoting a one-off timing.
``repro cache stats`` prints the summary.

Environment knobs:

``REPRO_LEDGER``
    Set to ``0`` / ``off`` / ``false`` to disable recording (the test suite
    does this to stay hermetic).
``REPRO_LEDGER_PATH``
    Ledger file path (default ``.repro/bench_ledger.jsonl`` under the
    current working directory).

Recording is strictly best-effort: a read-only filesystem or concurrent
writer can never fail a sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.harness.integrity import fsync_enabled

_FALSY = ("0", "off", "false", "no")

#: Default ledger location, relative to the working directory.
DEFAULT_LEDGER_PATH = Path(".repro") / "bench_ledger.jsonl"


def ledger_enabled() -> bool:
    """Whether the environment allows ledger recording."""
    return os.environ.get("REPRO_LEDGER", "1").lower() not in _FALSY


def ledger_path() -> Path:
    """Ledger file honouring ``REPRO_LEDGER_PATH``."""
    env = os.environ.get("REPRO_LEDGER_PATH")
    if env:
        return Path(env).expanduser()
    return DEFAULT_LEDGER_PATH


def append_entry(
    entry: dict, *, path: Optional[Path] = None, fsync: Optional[bool] = None
) -> Optional[Path]:
    """Append one raw JSON entry to the ledger (best-effort).

    Returns the path written, or ``None`` when recording is disabled or the
    write failed.  An explicit ``path`` bypasses the enable/disable
    environment check.  Used by :func:`record_sweep` and by the bench
    harness (:mod:`repro.harness.bench`), which stamps its entries with
    ``"kind": "bench"``.  ``fsync`` syncs the line to stable storage;
    ``None`` defers to the opt-in ``REPRO_FSYNC`` knob
    (:func:`repro.harness.integrity.fsync_enabled`).
    """
    if path is None:
        if not ledger_enabled():
            return None
        path = ledger_path()
    try:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            if fsync if fsync is not None else fsync_enabled():
                os.fsync(fh.fileno())
    except OSError:
        return None
    return path


def keys_digest(keys: Iterable[str]) -> str:
    """Content digest of a sweep's cache-key *set* (order-insensitive).

    Stamped onto sweep ledger rows so rows describing the same work — a
    distributed shard's row returned by its worker *and* re-dispatched
    after a coordinator retry — can be recognised as duplicates when
    ledgers merge (:func:`merge_ledger_entries`).
    """
    blob = "\n".join(sorted(set(keys)))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def sweep_entry(stats, *, keys: Optional[Sequence[str]] = None) -> dict:
    """The ledger row describing one sweep's ``SweepStats``.

    ``keys`` (the sweep's content-addressed cache keys, when known) adds a
    ``keys_digest`` identity so merged ledgers can drop duplicate rows.
    """
    entry = {
        "ts": round(time.time(), 3),
        "jobs": stats.jobs,
        "cache_hits": stats.cache_hits,
        "executed": stats.executed,
        "workers": stats.workers,
        "wall_seconds": round(stats.wall_seconds, 6),
        "cache_hit_rate": round(stats.cache_hit_rate, 6),
        "backend": getattr(stats, "backend", ""),
        "failed": getattr(stats, "failed", 0),
        "retried": getattr(stats, "retried", 0),
        "timed_out": getattr(stats, "timed_out", 0),
        # -- integrity counters (docs/RESILIENCE.md) ------------------------
        "audited": getattr(stats, "audited", 0),
        "audit_failures": getattr(stats, "audit_failures", 0),
        "corrupt": getattr(stats, "corrupt", 0),
    }
    if keys:
        entry["keys_digest"] = keys_digest(keys)
    return entry


def record_sweep(
    stats, *, path: Optional[Path] = None, keys: Optional[Sequence[str]] = None
) -> Optional[Path]:
    """Append one ledger entry for ``stats`` (a ``SweepStats``).

    Returns the path written, or ``None`` when recording is disabled or the
    write failed (best-effort by design).  An explicit ``path`` bypasses the
    enable/disable environment check.
    """
    return append_entry(sweep_entry(stats, keys=keys), path=path)


def read_ledger_report(path: Optional[Path] = None) -> tuple[list[dict], int]:
    """Parse the ledger into ``(entries, skipped_line_count)``.

    Corrupt lines contribute no entry but are counted — ``repro cache
    stats`` warns about them and ``repro cache fsck --repair`` removes the
    damage after preserving the original bytes in quarantine.
    """
    path = Path(path) if path is not None else ledger_path()
    entries: list[dict] = []
    skipped = 0
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if isinstance(entry, dict):
                    entries.append(entry)
                else:
                    skipped += 1
    except OSError:
        return [], 0
    return entries, skipped


def read_ledger(path: Optional[Path] = None) -> list[dict]:
    """Parse the ledger into a list of entries (corrupt lines are skipped)."""
    return read_ledger_report(path)[0]


def merge_ledger_entries(groups: Iterable[Iterable[dict]]) -> list[dict]:
    """Merge several ledgers' rows, dropping duplicate rows once.

    Distributed sweeps merge ledger rows from many machines, and a
    coordinator retry can deliver the *same* shard row twice — historically
    :func:`summarize_ledger` then double-counted that machine's sweep.
    Rows are deduplicated by their content identity: ``(kind,
    keys_digest)`` for sweep rows that carry one, ``(kind, rev, case
    fingerprint)`` for bench rows.  Rows with no identity (legacy sweep
    rows, serve drain rows) are kept verbatim — they describe sessions, not
    re-mergeable work units.
    """
    merged: list[dict] = []
    seen: set[tuple] = set()
    for entries in groups:
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            kind = entry.get("kind", "sweep")
            ident: Optional[tuple] = None
            if entry.get("keys_digest"):
                ident = (kind, entry["keys_digest"])
            elif kind == "bench" and entry.get("rev"):
                ident = (kind, entry["rev"], entry.get("ts"))
            if ident is not None:
                if ident in seen:
                    continue
                seen.add(ident)
            merged.append(entry)
    return merged


def summarize_ledger(entries: list[dict]) -> dict:
    """Aggregate ledger entries into the warm-vs-cold trajectory summary.

    A sweep counts as *cold* when it simulated every job (no cache hits) and
    *warm* when at least half its jobs were served from the cache.  Bench
    entries (``"kind": "bench"``, written by ``repro bench``) are summarised
    separately as the simulator-throughput trajectory, and serve entries
    (``"kind": "serve"``, written by ``repro serve`` at drain time) as the
    service-traffic trajectory (requests, hit/coalesce/execute split).
    Audit rows (``"kind": "audit"``, written by the distributed
    coordinator when a worker's results fail verification) are counted but
    never aggregated as sweeps.
    """
    bench = [e for e in entries if e.get("kind") == "bench"]
    serve = [e for e in entries if e.get("kind") == "serve"]
    audits = [e for e in entries if e.get("kind") == "audit"]
    entries = [e for e in entries if e.get("kind") not in ("bench", "serve", "audit")]
    total_jobs = sum(e.get("jobs", 0) for e in entries)
    total_hits = sum(e.get("cache_hits", 0) for e in entries)
    cold = [e for e in entries if e.get("jobs") and not e.get("cache_hits")]
    warm = [e for e in entries if e.get("jobs") and e.get("cache_hit_rate", 0.0) >= 0.5]

    def _mean_wall(subset: list[dict]) -> float:
        return (
            sum(e.get("wall_seconds", 0.0) for e in subset) / len(subset)
            if subset
            else 0.0
        )

    by_backend: dict[str, int] = {}
    for e in entries:
        for name in str(e.get("backend", "")).split(","):
            name = name.strip()
            if name:
                by_backend[name] = by_backend.get(name, 0) + 1
    bench_cps = [e.get("cycles_per_second", 0.0) for e in bench]
    return {
        "sweeps": len(entries),
        "jobs": total_jobs,
        "cache_hits": total_hits,
        "hit_rate": total_hits / total_jobs if total_jobs else 0.0,
        "wall_seconds": sum(e.get("wall_seconds", 0.0) for e in entries),
        "cold_sweeps": len(cold),
        "warm_sweeps": len(warm),
        # -- resilience counters (docs/RESILIENCE.md) -----------------------
        "failed": sum(e.get("failed", 0) for e in entries),
        "retried": sum(e.get("retried", 0) for e in entries),
        "timed_out": sum(e.get("timed_out", 0) for e in entries),
        # -- integrity counters (docs/RESILIENCE.md) ------------------------
        "audited": sum(e.get("audited", 0) for e in entries),
        "audit_failures": sum(e.get("audit_failures", 0) for e in entries),
        "corrupt": sum(e.get("corrupt", 0) for e in entries),
        "audit_rows": len(audits),
        "mean_cold_wall_seconds": _mean_wall(cold),
        "mean_warm_wall_seconds": _mean_wall(warm),
        "sweeps_by_backend": by_backend,
        # -- simulator-throughput trajectory (repro bench) -----------------
        "bench_runs": len(bench),
        "bench_latest_cycles_per_second": bench_cps[-1] if bench_cps else 0.0,
        "bench_best_cycles_per_second": max(bench_cps) if bench_cps else 0.0,
        "bench_latest_rev": str(bench[-1].get("rev", "")) if bench else "",
        # -- service-traffic trajectory (repro serve drain rows) -----------
        "serve_sessions": len(serve),
        "serve_requests": sum(e.get("requests", 0) for e in serve),
        "serve_hits": sum(e.get("hits", 0) for e in serve),
        "serve_coalesced": sum(e.get("coalesced", 0) for e in serve),
        "serve_executed": sum(e.get("executed", 0) for e in serve),
        "serve_failed": sum(e.get("failed", 0) for e in serve),
        "serve_retried": sum(e.get("retried", 0) for e in serve),
        "serve_timed_out": sum(e.get("timed_out", 0) for e in serve),
        "serve_shed": sum(e.get("shed", 0) for e in serve),
    }
