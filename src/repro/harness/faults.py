"""Seeded fault injection: the ``chaos`` wrapper backend and its schedule.

Every recovery path in the resilience layer (retries, timeouts, straggler
re-dispatch, worker-crash respawn — see :mod:`repro.harness.parallel` and
docs/RESILIENCE.md) needs faults to recover *from*, and those faults must be
reproducible or the tests that exercise them are flaky by construction.
This module provides both halves:

* :class:`FaultPlan` — a deterministic, seeded fault schedule.  Whether a
  given execution attempt of a given job faults (and how) is a pure
  function of ``(plan seed, job fault key, attempt number)``: same seed ⇒
  same faults, on any machine, in any process.  The *fault key* is the
  request's content-addressed cache key computed with a pinned code
  version, so the schedule does not drift every time an unrelated source
  file changes.
* :class:`ChaosBackend` — an execution engine registered like any other
  (``repro.backends``, name ``"chaos"``) that delegates to a real engine
  but consults the active :class:`FaultPlan` first.  Fault kinds:

  ``fail``
      raise :class:`InjectedFault` instead of simulating;
  ``hang``
      sleep ``hang_seconds`` *then* simulate normally — the job is slow
      but correct, which is exactly what per-job timeouts and straggler
      re-dispatch must handle;
  ``crash``
      kill the worker process with ``os._exit`` mid-job (downgraded to an
      :class:`InjectedFault` when running in the main process, so
      ``workers=1`` chaos can never take the interpreter down);
  ``corrupt``
      simulate normally, then deterministically flip one bit in a numeric
      leaf of the result (:func:`corrupt_result`) — a *silent* wrongness
      fault that retries cannot fix; only the integrity layer (digest
      checks, ``--audit-rate`` verification, ``repro cache fsck``) catches
      it.  Opt-in only: never part of :data:`FAULT_KINDS`, the default
      kind set, so recovery-oriented chaos stays bit-exact.

Because the delegate engine produces the actual result, a chaos sweep over
the *default* kinds that completes under ``on_error="retry"`` is
bit-identical to a fault-free sweep — the acceptance gate of the CI
``chaos-smoke`` job (``scripts/chaos_smoke.py``); the ``integrity-smoke``
job covers the ``corrupt`` kind's detection end to end.

Configuration travels two ways so process-pool workers see the same plan
as the parent: :func:`configure_chaos` sets a module global (inherited by
forked workers and in-process runs) and mirrors the plan into the
``REPRO_CHAOS`` environment variable (``SEED:RATE[:KINDS]``, the same
grammar ``repro sweep --chaos`` accepts), which spawn-based pools read.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import os
import struct
import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

#: Environment variable carrying the active fault plan across processes.
CHAOS_ENV = "REPRO_CHAOS"

#: The *default* fault kinds — recoverable faults only, so a default chaos
#: sweep with retries stays bit-identical to a fault-free one.
FAULT_KINDS = ("fail", "hang", "crash")

#: Every kind a plan may name, including the opt-in silent-wrongness
#: ``corrupt`` kind (``--chaos SEED:RATE:corrupt``).
VALID_FAULT_KINDS = FAULT_KINDS + ("corrupt",)

#: Pinned code-version string for fault keys: the schedule is keyed on the
#: request *content*, not on the current source fingerprint, so it stays
#: stable across unrelated code changes (unlike result-cache keys).
FAULT_KEY_VERSION = "chaos-fault-plan-v1"


class InjectedFault(RuntimeError):
    """A failure injected by the chaos backend (seeded, reproducible)."""


class ChaosUnconfiguredError(RuntimeError):
    """The ``chaos`` backend was selected without an active fault plan."""


def _unit_draw(seed: int, *parts: object) -> float:
    """Deterministic uniform draw in [0, 1) from a seed and parts."""
    blob = ":".join([str(seed), *[str(p) for p in parts]])
    digest = hashlib.blake2b(blob.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, per-fault-key fault schedule (same seed ⇒ same faults)."""

    #: Schedule seed; the whole plan is deterministic in it.
    seed: int = 1
    #: Probability that any given (fault key, attempt) draw injects a fault.
    rate: float = 0.2
    #: Fault kinds this plan may inject (subset of
    #: :data:`VALID_FAULT_KINDS`; defaults to the recoverable trio).
    kinds: Tuple[str, ...] = FAULT_KINDS
    #: How long a ``hang`` fault sleeps before simulating normally.
    hang_seconds: float = 0.1
    #: Delegate engine name; ``None`` resolves to the environment default
    #: (``REPRO_BACKEND`` / ``"reference"``), never to ``chaos`` itself.
    delegate: Optional[str] = None
    #: When non-empty, faults are injected *only* on these attempt numbers
    #: — the deterministic "fail once, then succeed" shape the recovery
    #: tests pin (e.g. ``only_attempts=(1,)`` with ``rate=1.0``).
    only_attempts: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate!r}")
        unknown = [k for k in self.kinds if k not in VALID_FAULT_KINDS]
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {unknown} (choose from {VALID_FAULT_KINDS})"
            )
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")

    # -- the schedule --------------------------------------------------
    def fault_for(self, fault_key: str, attempt: int) -> Optional[str]:
        """The fault kind injected for ``(fault_key, attempt)``, or ``None``.

        Pure and deterministic: callers (tests, the chaos-smoke script) can
        enumerate the schedule up front and assert recovery against it.
        """
        if not self.kinds or self.rate <= 0.0:
            return None
        if self.only_attempts and attempt not in self.only_attempts:
            return None
        if _unit_draw(self.seed, fault_key, attempt, "gate") >= self.rate:
            return None
        pick = _unit_draw(self.seed, fault_key, attempt, "kind")
        return self.kinds[min(int(pick * len(self.kinds)), len(self.kinds) - 1)]

    def scheduled_kinds(
        self, fault_keys: Sequence[str], *, attempts: int = 1
    ) -> dict[str, int]:
        """``{kind: count}`` over ``fault_keys`` x ``1..attempts`` draws."""
        counts: dict[str, int] = {}
        for key in fault_keys:
            for attempt in range(1, attempts + 1):
                kind = self.fault_for(key, attempt)
                if kind is not None:
                    counts[kind] = counts.get(kind, 0) + 1
        return counts

    # -- wire form (the --chaos / REPRO_CHAOS grammar) -----------------
    def to_spec(self) -> str:
        """``SEED:RATE[:KINDS]`` — round-trips through :meth:`from_spec`."""
        spec = f"{self.seed}:{self.rate!r}"
        if tuple(self.kinds) != FAULT_KINDS:
            spec += ":" + "+".join(self.kinds)
        return spec

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse ``SEED:RATE[:KIND+KIND...]`` (the ``--chaos`` argument)."""
        parts = [p.strip() for p in str(text).split(":")]
        if len(parts) < 2 or len(parts) > 3 or not parts[0] or not parts[1]:
            raise ValueError(
                f"bad chaos spec {text!r} (expected SEED:RATE[:KINDS], "
                "e.g. 7:0.2 or 7:0.2:fail+hang)"
            )
        try:
            seed = int(parts[0])
            rate = float(parts[1])
        except ValueError:
            raise ValueError(
                f"bad chaos spec {text!r}: SEED must be an int and RATE a float"
            ) from None
        kinds = FAULT_KINDS
        if len(parts) == 3 and parts[2]:
            kinds = tuple(k.strip() for k in parts[2].split("+") if k.strip())
        return cls(seed=seed, rate=rate, kinds=kinds)


# ---------------------------------------------------------------------------
# Active-plan plumbing (module global + environment mirror + attempt hints)
# ---------------------------------------------------------------------------
_ACTIVE_PLAN: Optional[FaultPlan] = None
_ATTEMPT_LOCAL = threading.local()


def configure_chaos(plan: Optional[FaultPlan], *, mirror_env: bool = True) -> None:
    """Install ``plan`` as the active fault plan (``None`` clears it).

    With ``mirror_env`` (the default) the plan's spec is also written to
    ``REPRO_CHAOS`` so spawn-based pool workers — which do not inherit this
    module's globals — reconstruct the same schedule.  Note the spec only
    carries ``seed``/``rate``/``kinds``; tests that rely on
    ``only_attempts`` or a custom delegate should run in-process or under a
    fork-based pool.
    """
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    if mirror_env:
        if plan is None:
            os.environ.pop(CHAOS_ENV, None)
        else:
            os.environ[CHAOS_ENV] = plan.to_spec()


def active_plan() -> Optional[FaultPlan]:
    """The configured plan, falling back to the ``REPRO_CHAOS`` environment."""
    if _ACTIVE_PLAN is not None:
        return _ACTIVE_PLAN
    spec = os.environ.get(CHAOS_ENV)
    if spec:
        return FaultPlan.from_spec(spec)
    return None


def set_current_attempt(attempt: int) -> None:
    """Record the execution attempt number for this thread's next job.

    The sweep engine (and the serve dispatcher's retry loop) call this
    before each dispatch so the chaos schedule advances with retries —
    without it every retry would replay attempt 1's fault forever.
    """
    _ATTEMPT_LOCAL.value = int(attempt)


def current_attempt() -> int:
    """The attempt number recorded for this thread (default 1)."""
    return getattr(_ATTEMPT_LOCAL, "value", 1)


def fault_key_for(request) -> str:
    """The stable fault-schedule key of ``request``.

    The content-addressed cache key with a *pinned* code version: two runs
    of the same job always draw the same faults, even across commits.
    """
    return request.cache_key(code_version=FAULT_KEY_VERSION)


# ---------------------------------------------------------------------------
# Seeded result corruption (the ``corrupt`` fault kind)
# ---------------------------------------------------------------------------
def _numeric_leaves(node, leaves) -> None:
    """Collect (container, slot) of every corruptible numeric leaf.

    Deterministic order (dict keys sorted); bools, non-finite floats and
    ``"schema"`` fields are skipped — flipping a schema stamp would make
    the payload *undecodable* rather than silently wrong, and the corrupt
    kind exists to model the silent case.
    """
    if isinstance(node, dict):
        for key in sorted(node, key=str):
            if key == "schema":
                continue
            value = node[key]
            if isinstance(value, bool):
                continue
            if isinstance(value, int) or (
                isinstance(value, float) and math.isfinite(value)
            ):
                leaves.append((node, key))
            else:
                _numeric_leaves(value, leaves)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            if isinstance(value, bool):
                continue
            if isinstance(value, int) or (
                isinstance(value, float) and math.isfinite(value)
            ):
                leaves.append((node, index))
            else:
                _numeric_leaves(value, leaves)


def _flip_bit(value):
    """Flip the lowest bit of a number (floats via their IEEE-754 image)."""
    if isinstance(value, int):
        return value ^ 1
    bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0] ^ 1
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def corrupt_result(result, *, seed: int, fault_key: str):
    """Return ``result`` with one seeded bit flip in a numeric leaf.

    The corruption is a pure function of ``(seed, fault_key)`` — the same
    draw discipline as the fault schedule — so tests can predict exactly
    which leaf diverges.  The flipped payload still decodes through
    ``SimulationResult.from_dict``; only its *value* (and therefore its
    content digest) is wrong.  Results with no finite numeric leaf are
    returned unchanged.
    """
    payload = result.to_dict()
    leaves: list = []
    _numeric_leaves(payload, leaves)
    if not leaves:
        return result
    pick = _unit_draw(seed, fault_key, "corrupt-leaf")
    container, slot = leaves[min(int(pick * len(leaves)), len(leaves) - 1)]
    container[slot] = _flip_bit(container[slot])
    return type(result).from_dict(payload)


# ---------------------------------------------------------------------------
# The wrapper backend
# ---------------------------------------------------------------------------
class ChaosBackend:
    """Delegating engine that injects the active plan's faults first."""

    name = "chaos"

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        plan = plan if plan is not None else active_plan()
        if plan is None:
            raise ChaosUnconfiguredError(
                "the 'chaos' backend needs a fault plan: call "
                "repro.harness.faults.configure_chaos(FaultPlan(...)), set "
                "REPRO_CHAOS=SEED:RATE, or pass --chaos SEED:RATE to repro sweep"
            )
        self.plan = plan

    def _delegate_name(self, request) -> str:
        from repro.api import MultiTenantRequest
        from repro.backends import resolve_backend_name

        name = self.plan.delegate
        if name is None:
            if isinstance(request, MultiTenantRequest):
                name = "lockstep"
            else:
                name = resolve_backend_name(None)
        name = resolve_backend_name(name)
        if name == self.name:
            raise ValueError(
                "the chaos backend cannot delegate to itself; set "
                "FaultPlan.delegate (or REPRO_BACKEND) to a real engine"
            )
        return name

    def execute(self, request):
        from repro.backends import get_backend

        fault_key = fault_key_for(request)
        fault = self.plan.fault_for(fault_key, current_attempt())
        if fault == "fail":
            raise InjectedFault(
                f"injected failure (seed {self.plan.seed}, attempt "
                f"{current_attempt()}) for {request.benchmark_name}/"
                f"{request.scheduler}"
            )
        if fault == "crash":
            if multiprocessing.current_process().name != "MainProcess":
                os._exit(13)  # a worker dying mid-job, as abruptly as possible
            raise InjectedFault(
                f"injected crash downgraded to failure in the main process "
                f"(seed {self.plan.seed}, attempt {current_attempt()})"
            )
        if fault == "hang":
            time.sleep(self.plan.hang_seconds)
        result = get_backend(self._delegate_name(request)).execute(request)
        if fault == "corrupt":
            result = corrupt_result(
                result, seed=self.plan.seed, fault_key=fault_key
            )
        return result
