"""``repro bench`` — the simulator-throughput harness.

The sweep ledger (PR 2) tracks *sweep wall time*, which conflates cache
behaviour, pool startup and scheduling; it says nothing about how fast the
cycle engine itself is.  This module measures **simulated cycles per
second** — the metric every hot-path optimisation must move — on a pinned
workload matrix, so the perf trajectory of the simulator is reproducible
and queryable across commits:

* :func:`bench_matrix` pins the (benchmark x scheduler) grid: the standard
  figure workloads (one per workload class of Table II, under the Figure 8
  core schedulers) or a ``--quick`` smoke subset.
* :func:`run_bench` executes each case through :func:`repro.api.execute`
  (no result cache, no process pool — pure engine time), best-of-``repeats``
  wall time per case.
* :func:`write_report` stores the report as ``BENCH_<rev>.json`` next to
  your working tree; :func:`record_bench` appends a one-line summary to the
  bench ledger so ``repro cache stats`` shows the trajectory.
* :func:`compare_reports` checks a report against a checked-in baseline and
  lists every case whose throughput regressed beyond a tolerance — CI runs
  this via ``scripts/bench.py --quick --baseline benchmarks/bench_baseline.json``.

See docs/PERFORMANCE.md for how to read and regenerate the artifacts.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.api import RunConfig, SimulationRequest, execute
from repro.harness.ledger import append_entry, ledger_enabled
from repro.version import __version__

#: Version of the ``BenchReport`` JSON envelope.
BENCH_SCHEMA = 1

#: The standard figure workloads: one benchmark per workload class the paper
#: evaluates (LWS linear algebra, SWS, MapReduce, CI), under the Figure 8
#: core schedulers (baseline, locality-aware, full CIAO).
STANDARD_BENCHMARKS: tuple[str, ...] = ("ATAX", "SYRK", "WC", "Backprop")
STANDARD_SCHEDULERS: tuple[str, ...] = ("gto", "ccws", "ciao-c")
STANDARD_SCALE = 0.3

#: The CI smoke subset (a few seconds instead of a few minutes).
QUICK_BENCHMARKS: tuple[str, ...] = ("ATAX", "SYRK")
QUICK_SCHEDULERS: tuple[str, ...] = ("gto", "ciao-c")
QUICK_SCALE = 0.05

#: Co-location scenario measured by the quick matrix, so the multi-tenant
#: lock-step driver is perf-gated alongside the single-kernel engines.
QUICK_SCENARIO = "thrash-vs-compute"


@dataclass(frozen=True)
class BenchCase:
    """One pinned measurement: benchmark x scheduler x backend x sizing.

    When ``scenario`` is set the case measures a co-location scenario from
    :data:`repro.harness.experiments.COLOCATION_SCENARIOS` instead (always
    on the lock-step engine); ``benchmark`` / ``scheduler`` then only label
    the report row.
    """

    benchmark: str
    scheduler: str
    backend: str = "reference"
    scale: float = STANDARD_SCALE
    seed: int = 1
    scenario: Optional[str] = None

    def request(self):
        """The simulation request this case measures."""
        if self.scenario is not None:
            from repro.harness.experiments import colocation_scenario

            return colocation_scenario(
                self.scenario, scale=self.scale, seed=self.seed
            )
        return SimulationRequest(
            self.benchmark,
            self.scheduler,
            RunConfig(scale=self.scale, seed=self.seed),
            backend=self.backend,
        )


def bench_matrix(
    *,
    quick: bool = False,
    backend: str = "reference",
    benchmarks: Optional[Sequence[str]] = None,
    schedulers: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
    seed: int = 1,
) -> list[BenchCase]:
    """The pinned (benchmark x scheduler) grid for one backend.

    Explicit ``benchmarks`` / ``schedulers`` / ``scale`` override the pinned
    matrix (used by tests and ad-hoc measurements); the defaults are the
    standard figure workloads, or the quick smoke subset when ``quick``.
    """
    pinned = benchmarks is None and schedulers is None
    if benchmarks is None:
        benchmarks = QUICK_BENCHMARKS if quick else STANDARD_BENCHMARKS
    if schedulers is None:
        schedulers = QUICK_SCHEDULERS if quick else STANDARD_SCHEDULERS
    if scale is None:
        scale = QUICK_SCALE if quick else STANDARD_SCALE
    cases = [
        BenchCase(benchmark=b, scheduler=s, backend=backend, scale=scale, seed=seed)
        for b in benchmarks
        for s in schedulers
    ]
    if quick and pinned:
        # Perf-gate the vector engine whenever it can run here (numpy
        # present): one smoke case rides along in the pinned quick matrix
        # so CI holds the batched engine to its committed floor.
        from repro.backends import backend_availability, resolve_backend_name

        if (
            resolve_backend_name(backend) != "vector"
            and backend_availability().get("vector") is None
        ):
            cases.append(
                BenchCase(
                    benchmark=QUICK_BENCHMARKS[0],
                    scheduler=QUICK_SCHEDULERS[0],
                    backend="vector",
                    scale=scale,
                    seed=seed,
                )
            )
        # Perf-gate the multi-tenant lock-step driver from day one: one
        # co-location scenario rides along in the pinned quick matrix.
        cases.append(
            BenchCase(
                benchmark=f"scenario:{QUICK_SCENARIO}",
                scheduler="co-located",
                backend="lockstep",
                scale=scale,
                seed=seed,
                scenario=QUICK_SCENARIO,
            )
        )
    return cases


def git_revision() -> str:
    """Short git revision of the working tree (``"worktree"`` when unknown).

    Uncommitted changes append ``-dirty`` so reports from a modified tree
    can never overwrite (or be misattributed to) the clean commit's report.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "worktree"
    rev = out.stdout.strip()
    if out.returncode != 0 or not rev:
        return "worktree"
    try:
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return rev
    if status.returncode == 0 and status.stdout.strip():
        rev += "-dirty"
    return rev


def run_case(case: BenchCase, *, repeats: int = 1) -> dict:
    """Measure one case: best-of-``repeats`` wall time, cycles/sec.

    ``cycles`` sums the simulated cycle count over every SM, so multi-SM
    backends are credited for all the machine state they advance.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    request = case.request()
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = execute(request)
        wall = time.perf_counter() - start
        if wall < best:
            best = wall
    assert result is not None
    cycles = sum(stats.cycles for stats in result.per_sm)
    instructions = sum(stats.instructions_issued for stats in result.per_sm)
    return {
        **asdict(case),
        "backend": result.backend,  # resolved name (case may carry an alias)
        "wall_seconds": round(best, 6),
        "cycles": cycles,
        "cycles_per_second": round(cycles / best, 2) if best > 0 else 0.0,
        "warp_instructions": instructions,
        "warp_instructions_per_second": round(instructions / best, 2) if best > 0 else 0.0,
    }


def run_bench(
    cases: Sequence[BenchCase],
    *,
    repeats: int = 1,
    quick: bool = False,
    warmup: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run ``cases`` and assemble the versioned ``BenchReport`` dict."""
    if not cases:
        raise ValueError("bench needs at least one case")
    if warmup:
        # One throwaway run so import/alloc warm-up is not billed to case 0.
        run_case(cases[0], repeats=1)
    measured = []
    for case in cases:
        if progress is not None:
            progress(f"bench: {case.benchmark}/{case.scheduler}/{case.backend}")
        measured.append(run_case(case, repeats=repeats))
    total_wall = sum(c["wall_seconds"] for c in measured)
    total_cycles = sum(c["cycles"] for c in measured)
    return {
        "schema": BENCH_SCHEMA,
        "kind": "BenchReport",
        "version": __version__,
        "rev": git_revision(),
        "quick": quick,
        "repeats": repeats,
        "cases": measured,
        "aggregate": {
            "wall_seconds": round(total_wall, 6),
            "cycles": total_cycles,
            "cycles_per_second": round(total_cycles / total_wall, 2) if total_wall else 0.0,
        },
    }


def write_report(report: dict, out_dir: str | Path = ".") -> Path:
    """Write ``report`` as ``BENCH_<rev>.json`` under ``out_dir``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{report.get('rev', 'worktree')}.json"
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path


def record_bench(report: dict, *, path: Optional[Path] = None) -> Optional[Path]:
    """Append the report's summary line to the bench ledger (best-effort)."""
    if path is None and not ledger_enabled():
        return None
    backends = sorted({c["backend"] for c in report.get("cases", ())})
    entry = {
        "kind": "bench",
        "ts": round(time.time(), 3),
        "rev": report.get("rev", ""),
        "quick": bool(report.get("quick", False)),
        "cases": len(report.get("cases", ())),
        "backend": ",".join(backends),
        "wall_seconds": report.get("aggregate", {}).get("wall_seconds", 0.0),
        "cycles": report.get("aggregate", {}).get("cycles", 0),
        "cycles_per_second": report.get("aggregate", {}).get("cycles_per_second", 0.0),
    }
    return append_entry(entry, path=path)


# ---------------------------------------------------------------------------
# Baseline comparison (the CI regression gate)
# ---------------------------------------------------------------------------
def load_report(path: str | Path) -> dict:
    """Load and minimally validate a ``BENCH_*.json`` report."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or payload.get("kind") != "BenchReport":
        raise ValueError(f"{path} is not a BenchReport")
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {payload.get('schema')!r} "
            f"(supported: {BENCH_SCHEMA})"
        )
    return payload


def _case_key(case: dict) -> tuple:
    return (
        case.get("benchmark"),
        case.get("scheduler"),
        case.get("backend"),
        case.get("scale"),
        case.get("seed"),
    )


def case_deltas(report: dict, baseline: dict) -> list[dict]:
    """Per-case throughput comparison against ``baseline`` (informational).

    One row per case of ``report`` with its ``cycles_per_second``, the
    baseline's, and the speedup ratio / percentage delta.  Cases absent from
    the baseline — e.g. a backend the baseline predates, like new ``vector``
    rows — carry ``None`` for the baseline fields instead of failing, so the
    summary can always be produced.  Surfaced by ``repro bench --json`` as
    ``"deltas"``.
    """
    baseline_cases = {_case_key(c): c for c in baseline.get("cases", ())}
    deltas: list[dict] = []
    for case in report.get("cases", ()):
        current = case.get("cycles_per_second", 0.0)
        ref = baseline_cases.get(_case_key(case))
        reference = ref.get("cycles_per_second", 0.0) if ref is not None else None
        row = {
            "benchmark": case.get("benchmark"),
            "scheduler": case.get("scheduler"),
            "backend": case.get("backend"),
            "cycles_per_second": current,
            "baseline_cycles_per_second": reference,
            "speedup": None,
            "delta_pct": None,
        }
        if reference:
            row["speedup"] = round(current / reference, 3)
            row["delta_pct"] = round((current / reference - 1.0) * 100.0, 1)
        deltas.append(row)
    return deltas


def compare_reports(report: dict, baseline: dict, *, tolerance: float = 0.30) -> list[str]:
    """Regression check: current throughput vs a baseline report.

    Returns a human-readable message per regressed case (and one for the
    aggregate) where ``cycles_per_second`` fell below ``baseline * (1 -
    tolerance)``.  Cases present on only one side are ignored — the gate
    compares like with like, so report cases absent from the baseline (new
    ``vector`` rows against an older baseline) never trip it; use
    :func:`case_deltas` to *see* them.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    problems: list[str] = []
    baseline_cases = {_case_key(c): c for c in baseline.get("cases", ())}
    matched_current_cps = 0.0
    matched_baseline_cps_wall: list[tuple[float, float]] = []
    matched_wall = 0.0
    matched_cycles = 0
    for case in report.get("cases", ()):
        ref = baseline_cases.get(_case_key(case))
        if ref is None:
            continue
        matched_wall += case.get("wall_seconds", 0.0)
        matched_cycles += case.get("cycles", 0)
        matched_baseline_cps_wall.append(
            (ref.get("cycles_per_second", 0.0), ref.get("wall_seconds", 0.0))
        )
        current = case.get("cycles_per_second", 0.0)
        reference = ref.get("cycles_per_second", 0.0)
        if reference > 0 and current < reference * (1.0 - tolerance):
            problems.append(
                f"{case['benchmark']}/{case['scheduler']}/{case['backend']}: "
                f"{current:.0f} cyc/s < {(1.0 - tolerance):.0%} of baseline "
                f"{reference:.0f} cyc/s"
            )
    if matched_baseline_cps_wall and matched_wall > 0:
        matched_current_cps = matched_cycles / matched_wall
        baseline_cycles = sum(cps * wall for cps, wall in matched_baseline_cps_wall)
        baseline_wall = sum(wall for _, wall in matched_baseline_cps_wall)
        if baseline_wall > 0:
            baseline_cps = baseline_cycles / baseline_wall
            if baseline_cps > 0 and matched_current_cps < baseline_cps * (1.0 - tolerance):
                problems.append(
                    f"aggregate: {matched_current_cps:.0f} cyc/s < "
                    f"{(1.0 - tolerance):.0%} of baseline {baseline_cps:.0f} cyc/s"
                )
    return problems
