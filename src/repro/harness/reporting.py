"""Reporting helpers: text tables, geometric means, normalisation."""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty input).

    Non-positive values are clamped to a tiny epsilon so a single degenerate
    run cannot produce a domain error; the evaluation only feeds IPC ratios,
    which are positive in practice.
    """
    values = list(values)
    if not values:
        return 0.0
    eps = 1e-12
    log_sum = sum(math.log(max(v, eps)) for v in values)
    return math.exp(log_sum / len(values))


def normalize_to(values: Mapping[str, float], baseline_key: str) -> dict[str, float]:
    """Normalise every value to ``values[baseline_key]`` (1.0 for the baseline)."""
    baseline = values.get(baseline_key, 0.0)
    if baseline <= 0:
        return {key: 0.0 for key in values}
    return {key: value / baseline for key, value in values.items()}


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of dict rows as an aligned, pipe-separated text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        " | ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered
    )
    return f"{header}\n{separator}\n{body}"


def format_sweep_stats(stats, cache_stats=None) -> str:
    """One-line summary of a sweep's execution statistics.

    ``stats`` is a :class:`repro.harness.parallel.SweepStats`;
    ``cache_stats`` optionally a :class:`repro.harness.cache.CacheStats` for
    the cache the sweep used.  The ``repro`` CLI prints this after every
    sweep so users can see parallelism and cache effectiveness at a glance.
    """
    parts = [
        f"{stats.jobs} job{'s' if stats.jobs != 1 else ''}",
        f"{stats.executed} simulated",
        f"{stats.cache_hits} cached ({stats.cache_hit_rate:.0%})",
        f"{stats.workers} worker{'s' if stats.workers != 1 else ''}",
        f"{stats.wall_seconds:.2f}s wall",
    ]
    if stats.executed:
        parts.append(f"{stats.wall_seconds / stats.executed:.2f}s/sim")
    # Resilience counters appear only when something actually went wrong,
    # so the healthy-sweep line stays as short as it always was.
    if getattr(stats, "failed", 0):
        parts.append(f"{stats.failed} failed")
    if getattr(stats, "retried", 0):
        parts.append(f"{stats.retried} retried")
    if getattr(stats, "timed_out", 0):
        parts.append(f"{stats.timed_out} timed out")
    if getattr(stats, "audited", 0):
        parts.append(f"{stats.audited} audited")
    if getattr(stats, "audit_failures", 0):
        parts.append(f"{stats.audit_failures} audit failures")
    if getattr(stats, "corrupt", 0):
        parts.append(f"{stats.corrupt} corrupt")
    if cache_stats is not None and cache_stats.errors:
        parts.append(f"{cache_stats.errors} cache errors")
    if cache_stats is not None and getattr(cache_stats, "quarantined", 0):
        parts.append(f"{cache_stats.quarantined} quarantined")
    return "sweep: " + ", ".join(parts)


def summarize_speedups(normalized: Mapping[str, Mapping[str, float]], schedulers: Sequence[str]) -> dict[str, float]:
    """Geometric-mean speedup per scheduler across benchmarks.

    ``normalized`` maps benchmark -> {scheduler -> normalised IPC}.
    """
    result: dict[str, float] = {}
    for scheduler in schedulers:
        result[scheduler] = geometric_mean(
            per_sched[scheduler]
            for per_sched in normalized.values()
            if scheduler in per_sched
        )
    return result
