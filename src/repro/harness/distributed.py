"""Cross-machine sharded sweeps: ``repro worker`` + the sweep coordinator.

This is the remote runner beside :class:`repro.harness.parallel._PoolRunner`
— the ROADMAP's "refactor that unlocks millions-of-users sweep volume".
Every ingredient already existed; this module only wires them together:

* **Workers** (:class:`WorkerServer`, the ``repro worker`` entry point) are
  long-lived processes reusing the serve layer's HTTP plumbing
  (:mod:`repro.serve.http`).  ``POST /batch`` accepts a
  :func:`repro.api.encode_request_batch` payload — the same versioned
  request wire forms ``repro serve`` speaks — executes it through
  :func:`repro.harness.parallel.run_jobs` with the full retry / timeout /
  chaos stack, and answers one outcome row per job plus the shard's sweep
  statistics and ledger row.
* **The coordinator** (:func:`run_distributed`, behind ``repro sweep
  --workers-at``) partitions the job list by content-addressed cache key
  (:class:`repro.harness.parallel.ShardPlan`), dispatches shard chunks to
  the workers, streams per-job outcomes into the *existing* append-only
  manifest as they arrive (so ``repro sweep --resume`` works across
  machines unchanged), merges results and ledger rows with dedup by cache
  key, and re-dispatches chunks lost to dead or unreachable workers onto
  healthy ones under the existing :class:`~repro.harness.parallel
  .RetryPolicy`.

Exactness: a job's seed lives in its ``RunConfig`` and results are
bit-identical wherever they execute, so a sharded sweep returns — by
construction — exactly what the single-machine sweep returns, whatever the
roster, chunking or failure history (asserted over the golden matrix by
``tests/test_distributed.py`` and the CI ``distributed-smoke`` job).  See
docs/DISTRIBUTED.md.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.api import (
    BATCH_SCHEMA,
    AnyRequest,
    MultiTenantRequest,
    decode_request_batch,
    encode_request_batch,
    result_digest,
)
from repro.gpu.gpu import SimulationResult
from repro.harness.breaker import CircuitBreaker
from repro.harness.cache import ResultCache
from repro.harness.integrity import audit_selected
from repro.harness.ledger import append_entry, merge_ledger_entries, record_sweep, sweep_entry
from repro.harness.manifest import ManifestEntry, append_outcome, scan_manifest
from repro.harness.parallel import (
    AUTO_CACHE,
    ON_ERROR_MODES,
    JobFailure,
    RetryPolicy,
    ShardPlan,
    SweepError,
    SweepOutcome,
    SweepStats,
    _decode_cached,
    _execute,
    _resolved_backends,
    parse_positive_int,
    run_jobs,
)
from repro.serve.http import canonical_json, read_http_request, respond
from repro.version import __version__

#: Default TCP port of ``repro worker`` (``repro serve`` owns 8651).
DEFAULT_WORKER_PORT = 8652

#: Version of the worker's ``POST /batch`` response envelope.
OUTCOME_SCHEMA = 1

#: Jobs per dispatch chunk: the unit one HTTP round trip carries and the
#: most a lost worker forfeits.  Small enough that re-dispatch is cheap,
#: large enough to amortise the wire overhead.
DEFAULT_CHUNK_SIZE = 4

#: Fallback HTTP read timeout (seconds) when no policy deadline is set.  A
#: *dead* worker surfaces as an immediate connection error; this bound only
#: catches a worker that accepted a chunk and then hung.
DEFAULT_REQUEST_TIMEOUT = 600.0

#: Ceiling on a worker circuit breaker's probe backoff: an open worker is
#: re-probed at least this often, so a restarted worker rejoins quickly
#: however long it was down.
PROBE_MAX_SECONDS = 2.0


# ---------------------------------------------------------------------------
# Worker rosters
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerRef:
    """One worker endpoint of a distributed sweep roster."""

    host: str
    port: int

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"


def parse_workers_at(text: str, *, what: str = "--workers-at") -> tuple[WorkerRef, ...]:
    """Parse a ``host:port,host:port`` roster with one-line errors.

    Accepts bare ``HOST:PORT`` entries or full ``http://HOST:PORT`` URLs;
    every malformed entry dies with a message naming the offending value
    (the same contract as the ``REPRO_WORKERS`` validation).
    """
    refs: list[WorkerRef] = []
    for raw in str(text).split(","):
        entry = raw.strip()
        if not entry:
            continue
        if entry.startswith("http://"):
            entry = entry[len("http://"):].rstrip("/")
        host, sep, port_text = entry.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"{what} entry {raw.strip()!r} must look like HOST:PORT"
            )
        port = parse_positive_int(port_text, what=f"{what} port in {raw.strip()!r}")
        if port > 65535:
            raise ValueError(f"{what} port {port} in {raw.strip()!r} is out of range")
        refs.append(WorkerRef(host=host, port=port))
    if not refs:
        raise ValueError(f"{what} names no workers")
    return tuple(refs)


def load_worker_roster(path: Union[str, Path]) -> tuple[WorkerRef, ...]:
    """Read a ``shards.json`` roster: ``{"workers": ["host:port", ...]}``.

    A bare JSON list of ``host:port`` strings is accepted too.  Errors name
    the file and the offending entry.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot read worker roster {path}: {exc}") from None
    except ValueError as exc:
        raise ValueError(f"worker roster {path} is not valid JSON: {exc}") from None
    if isinstance(payload, dict):
        payload = payload.get("workers")
    if not isinstance(payload, list) or not all(isinstance(e, str) for e in payload):
        raise ValueError(
            f'worker roster {path} must be {{"workers": ["host:port", ...]}} '
            "or a JSON list of host:port strings"
        )
    return parse_workers_at(",".join(payload), what=f"worker roster {path}")


# ---------------------------------------------------------------------------
# The worker process (``repro worker``)
# ---------------------------------------------------------------------------
class WorkerServer:
    """A long-lived sweep worker: ``POST /batch`` in, outcome rows out.

    Reuses the serve layer's HTTP plumbing verbatim; execution goes through
    :func:`run_jobs`, so the PR 8 resilience stack (per-job retry with
    seeded backoff, timeouts and straggler duplication on the pool path,
    seeded chaos via ``REPRO_CHAOS``) applies on the worker exactly as it
    does locally.  Batches execute one at a time — the worker's own
    ``--workers`` pool is the intra-batch parallelism.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_WORKER_PORT,
        workers: int = 1,
        backend: Optional[str] = None,
        cache: Union[ResultCache, str, None] = AUTO_CACHE,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.host = host
        self.port = port
        self.workers = workers
        self.backend = backend
        self.cache = cache
        self.batches = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self._busy = False
        self._draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._closed: Optional[asyncio.Event] = None
        self._batch_lock: Optional[asyncio.Lock] = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._closed = asyncio.Event()
        self._batch_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def begin_shutdown(self) -> None:
        if self._draining:
            return
        self._draining = True
        asyncio.get_running_loop().create_task(self._stop())

    async def _stop(self) -> None:
        # Let an in-flight batch finish: the lock serialises against it.
        assert self._batch_lock is not None
        async with self._batch_lock:
            pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self._closed is not None
        self._closed.set()

    async def wait_closed(self) -> None:
        assert self._closed is not None, "start() was not called"
        await self._closed.wait()

    # -- HTTP ----------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_http_request(reader)
            except (ValueError, asyncio.IncompleteReadError) as exc:
                await respond(writer, 400, {"error": f"bad request: {exc}"})
                return
            if request is None:
                return
            await self._route(request, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass  # coordinator went away mid-response
        except Exception as exc:  # never let a handler bug kill the loop
            try:
                await respond(writer, 500, {"error": f"internal error: {exc}"})
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(self, request, writer) -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz":
            if method != "GET":
                await respond(writer, 405, {"error": "use GET"})
                return
            await respond(writer, 200, {
                "status": "draining" if self._draining else "ok",
                "kind": "worker",
                "busy": self._busy,
                "workers": self.workers,
                "version": __version__,
                # Schema advertisement: the coordinator refuses to dispatch
                # to a worker speaking a different batch schema (a clear
                # error instead of a decode traceback mid-sweep).
                "batch_schema": BATCH_SCHEMA,
                "outcome_schema": OUTCOME_SCHEMA,
            })
        elif path == "/batch":
            if method != "POST":
                await respond(writer, 405, {"error": "use POST"})
                return
            await self._handle_batch(request, writer)
        elif path == "/shutdown":
            if method != "POST":
                await respond(writer, 405, {"error": "use POST"})
                return
            await respond(writer, 200, {"status": "stopping"})
            self.begin_shutdown()
        else:
            await respond(writer, 404, {"error": f"unknown path {path!r}"})

    async def _handle_batch(self, http_request, writer) -> None:
        if self._draining:
            await respond(writer, 503, {"error": "worker is draining"})
            return
        try:
            payload = json.loads(http_request.body.decode("utf-8"))
            jobs = decode_request_batch(payload)
            options = payload.get("options") or {}
            on_error = options.get("on_error", "skip")
            if on_error not in ("skip", "retry"):
                raise ValueError(
                    f"worker on_error must be 'skip' or 'retry', got {on_error!r}"
                )
            retry_payload = options.get("retry")
            retry = (
                RetryPolicy.from_dict(retry_payload)
                if retry_payload is not None
                else None
            )
        except (ValueError, UnicodeDecodeError) as exc:
            await respond(writer, 400, {"error": f"bad batch payload: {exc}"})
            return
        assert self._batch_lock is not None
        async with self._batch_lock:
            self._busy = True
            try:
                loop = asyncio.get_running_loop()
                outcome = await loop.run_in_executor(
                    None,
                    lambda: run_jobs(
                        jobs,
                        workers=self.workers,
                        cache=self.cache,
                        backend=self.backend,
                        on_error=on_error,
                        retry=retry,
                    ),
                )
            except Exception as exc:
                await respond(writer, 500, {
                    "error": f"{type(exc).__name__}: {exc}",
                })
                return
            finally:
                self._busy = False
        rows = []
        keys: list[str] = []
        for job, result in outcome:
            if isinstance(result, JobFailure):
                self.jobs_failed += 1
                rows.append({
                    "status": "timeout" if result.timed_out else "failed",
                    "result": None,
                    "error": result.error,
                    "error_type": result.error_type,
                    "attempts": result.attempts,
                    "timed_out": result.timed_out,
                })
            else:
                self.jobs_done += 1
                wire = result.to_dict()
                rows.append({
                    "status": "done",
                    "result": wire,
                    # Content digest of the result payload: the coordinator
                    # verifies it on receipt, so corruption in transit (or a
                    # worker serialisation bug) is detected, not merged.
                    "digest": result_digest(wire),
                    "error": None,
                    "error_type": None,
                    "attempts": 1,
                    "timed_out": False,
                })
            try:
                keys.append(job.cache_key())
            except Exception:
                pass
        self.batches += 1
        stats = outcome.stats
        await respond(writer, 200, canonical_json({
            "schema": OUTCOME_SCHEMA,
            "kind": "BatchOutcome",
            "outcomes": rows,
            "stats": {
                "jobs": stats.jobs,
                "cache_hits": stats.cache_hits,
                "executed": stats.executed,
                "workers": stats.workers,
                "backend": stats.backend,
                "failed": stats.failed,
                "retried": stats.retried,
                "timed_out": stats.timed_out,
                "wall_seconds": stats.wall_seconds,
            },
            "ledger_row": sweep_entry(stats, keys=keys or None),
        }))


async def run_worker(server: WorkerServer, *, announce=None) -> None:
    """Start ``server``, announce the bound address, serve until stopped.

    SIGINT/SIGTERM trigger the same graceful stop as ``POST /shutdown``
    (an in-flight batch finishes first).
    """
    import signal

    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, server.begin_shutdown)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or unsupported platform
    # Announce last: the line is the readiness contract scripts wait on,
    # so signals must already drain gracefully by the time it prints.
    if announce is not None:
        announce(f"repro worker listening on {server.address}")
    await server.wait_closed()


# ---------------------------------------------------------------------------
# The coordinator side
# ---------------------------------------------------------------------------
class WorkerClient:
    """Blocking HTTP client for one worker endpoint (stdlib only)."""

    def __init__(self, ref: WorkerRef, *, timeout: float = DEFAULT_REQUEST_TIMEOUT) -> None:
        self.ref = ref
        self.timeout = timeout

    def _request(self, method: str, path: str, body: Optional[bytes] = None) -> dict:
        conn = http.client.HTTPConnection(
            self.ref.host, self.ref.port, timeout=self.timeout
        )
        try:
            conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = conn.getresponse()
            data = response.read()
            if response.status != 200:
                raise WorkerError(
                    f"worker {self.ref.address} answered {response.status}: "
                    f"{data[:200].decode(errors='replace')}"
                )
            return json.loads(data)
        finally:
            conn.close()

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def run_batch(
        self,
        requests: Sequence[AnyRequest],
        *,
        on_error: str = "skip",
        retry: Optional[RetryPolicy] = None,
    ) -> dict:
        payload = encode_request_batch(requests)
        payload["options"] = {
            "on_error": on_error,
            "retry": retry.to_dict() if retry is not None else None,
        }
        answer = self._request("POST", "/batch", canonical_json(payload))
        if (
            answer.get("kind") != "BatchOutcome"
            or answer.get("schema") != OUTCOME_SCHEMA
            or not isinstance(answer.get("outcomes"), list)
            or len(answer["outcomes"]) != len(requests)
        ):
            raise WorkerError(
                f"worker {self.ref.address} returned a malformed batch outcome"
            )
        return answer

    def shutdown(self) -> None:
        self._request("POST", "/shutdown", b"")


class WorkerError(RuntimeError):
    """A worker answered, but not with a usable batch outcome."""


class WorkerSchemaError(ValueError):
    """A roster worker speaks a different wire schema than this coordinator.

    A ``ValueError`` so the CLI surfaces it as a one-line error (mixing
    repro versions across a roster is an operator mistake, not a crash).
    """


def _worker_schema_drift(health: dict) -> Optional[str]:
    """Why this ``/healthz`` payload disqualifies the worker, or ``None``."""
    kind = health.get("kind")
    if kind != "worker":
        return f"is not a repro worker (healthz kind={kind!r})"
    remote = health.get("batch_schema")
    if remote != BATCH_SCHEMA:
        return (
            f"speaks batch schema {remote!r} but this coordinator speaks "
            f"{BATCH_SCHEMA} (worker version {health.get('version', '?')}, "
            f"coordinator {__version__}) — upgrade one side so they match"
        )
    return None


@dataclass
class _Chunk:
    """One dispatch unit: a few (index, job, key) items of one shard."""

    shard: int
    items: list  # [(index, job, key), ...]
    dispatches: int = 0
    last_error: Optional[BaseException] = None

    def backoff_key(self) -> str:
        return f"shard:{self.shard}:{self.items[0][0]}"


@dataclass
class _Fleet:
    """Shared coordinator state across per-worker dispatch threads."""

    queues: dict  # worker position -> deque[_Chunk]
    #: Per-worker circuit breakers (closed → open → half-open) replacing
    #: the old permanent ``dead`` set: a worker that faltered is probed
    #: with seeded backoff and rejoins when its ``/healthz`` answers again.
    breakers: dict = field(default_factory=dict)
    orphans: deque = field(default_factory=deque)
    unsettled: int = 0
    #: Consecutive failed worker contacts (probe or dispatch) fleet-wide,
    #: reset by any success.  Together with "every breaker is open" this
    #: bounds termination when the whole roster is gone.
    probe_failures: int = 0
    #: Workers that failed an audit: everything they return from now on is
    #: audited (100% sampling) until the sweep ends.
    distrusted: set = field(default_factory=set)
    #: Workers whose first returned result has been force-audited.
    handshaken: set = field(default_factory=set)
    #: Chunks already merged per worker (kept only while auditing) so an
    #: audit failure can roll back everything that worker contributed.
    merged: dict = field(default_factory=dict)
    error: Optional[BaseException] = None
    lock: threading.Lock = field(default_factory=threading.Lock)
    wake: threading.Condition = field(init=False)

    def __post_init__(self) -> None:
        self.wake = threading.Condition(self.lock)


def run_distributed(
    jobs: Sequence[AnyRequest],
    workers: Sequence[WorkerRef],
    *,
    cache: Union[ResultCache, str, None] = AUTO_CACHE,
    backend: Optional[str] = None,
    on_error: str = "raise",
    retry: Optional[RetryPolicy] = None,
    manifest: Union[str, Path, None] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    request_timeout: Optional[float] = None,
    audit_rate: float = 0.0,
) -> SweepOutcome:
    """Execute ``jobs`` across ``workers`` and return a local-identical outcome.

    The distributed counterpart of :func:`repro.harness.parallel.run_jobs`
    with the same signature shape and the same return type: results in
    submission order, cache hits served locally before anything is
    dispatched, per-job outcomes streamed into ``manifest`` as they settle.
    Shard membership is a pure function of the jobs' cache keys
    (:class:`ShardPlan`), so a resume re-plans identically.

    Failure semantics mirror ``run_jobs``: ``on_error="raise"`` aborts with
    :class:`SweepError` on the first failed job, ``"skip"`` / ``"retry"``
    leave typed :class:`JobFailure` slots (retries happen *on the worker*,
    under the shipped :class:`RetryPolicy`).  Additionally the coordinator
    re-dispatches chunks lost to unreachable workers onto healthy ones —
    bounded by ``retry.max_attempts`` dispatches per chunk with the
    policy's seeded backoff — and counts each extra dispatch in
    ``stats.retried``.

    Integrity (docs/RESILIENCE.md): every worker is health-checked (and
    schema-checked — see :class:`WorkerSchemaError`) before its first
    dispatch and after any failure, behind a per-worker
    :class:`~repro.harness.breaker.CircuitBreaker`, so a restarted worker
    rejoins instead of staying blacklisted.  Worker results are verified
    against their shipped content digests, and ``audit_rate`` > 0
    additionally re-executes a seeded sample of worker-returned jobs
    locally: a digest mismatch discards *everything* that worker
    contributed (results un-merged, wrongly cached entries quarantined),
    re-dispatches it elsewhere, marks the worker distrusted (100% audits
    from then on), and records an audit row in the manifest and ledger.
    """
    if on_error not in ON_ERROR_MODES:
        raise ValueError(
            f"unknown on_error mode {on_error!r} (choose from {ON_ERROR_MODES})"
        )
    audit_rate = float(audit_rate)
    if not 0.0 <= audit_rate <= 1.0:
        raise ValueError(f"audit_rate must be in [0, 1], got {audit_rate!r}")
    workers = tuple(workers)
    if not workers:
        raise ValueError("run_distributed needs at least one worker")
    policy = retry if retry is not None else RetryPolicy()
    worker_on_error = "retry" if on_error == "retry" else "skip"
    timeout = request_timeout
    if timeout is None:
        timeout = policy.straggler_seconds or DEFAULT_REQUEST_TIMEOUT

    jobs = list(jobs)
    if backend is not None:
        jobs = [
            job
            if job.backend is not None or isinstance(job, MultiTenantRequest)
            else replace(job, backend=backend)
            for job in jobs
        ]
    if isinstance(cache, str):
        if cache != AUTO_CACHE:
            raise ValueError(f"unknown cache mode {cache!r}")
        cache = ResultCache.from_env()
    manifest_path = Path(manifest) if manifest is not None else None
    manifest_skipped = 0
    if manifest_path is not None:
        # Touch-load: malformed files surface here; damaged lines are
        # counted onto the outcome so sweep summaries can warn about them.
        manifest_skipped = scan_manifest(manifest_path)[1]

    start = time.perf_counter()
    results: list[Any] = [None] * len(jobs)
    stats = SweepStats(
        jobs=len(jobs), workers=len(workers), backend=_resolved_backends(jobs)
    )
    pending: list[tuple[int, AnyRequest, str]] = []
    sweep_keys: list[str] = []
    for index, job in enumerate(jobs):
        # Keys are mandatory here (they define the shard plan and the
        # result merge); a job that cannot produce one fails the same way
        # an unknown benchmark fails in run_jobs.
        try:
            key = job.cache_key()
        except Exception as exc:
            if on_error == "raise":
                raise SweepError(job, exc) from exc
            stats.failed += 1
            results[index] = JobFailure(
                job=job, error=str(exc), error_type=type(exc).__name__,
            )
            continue
        sweep_keys.append(key)
        if cache is not None:
            hit = _decode_cached(cache.get(key))
            if hit is not None:
                results[index] = hit
                stats.cache_hits += 1
                continue
        pending.append((index, job, key))
    stats.executed = len(pending)

    ledger_rows: list[dict] = []
    if pending:
        plan = ShardPlan.build([key for _, _, key in pending], len(workers))
        fleet = _Fleet(
            queues={},
            breakers={
                position: CircuitBreaker(
                    key=f"worker:{position}",
                    seed=policy.seed,
                    failure_threshold=1,
                    probe_base=policy.backoff_base,
                    probe_factor=policy.backoff_factor,
                    probe_max=PROBE_MAX_SECONDS,
                    jitter=policy.jitter,
                )
                for position in range(len(workers))
            },
        )
        chunks: list[_Chunk] = []
        for shard_index, positions in plan.chunks(chunk_size):
            chunk = _Chunk(shard=shard_index, items=[pending[p] for p in positions])
            chunks.append(chunk)
            fleet.queues.setdefault(shard_index, deque()).append(chunk)
        fleet.unsettled = len(chunks)

        def record_outcome(chunk: _Chunk, answer: dict) -> None:
            """Merge one chunk's outcome rows (called under the lock)."""
            worker_stats = answer.get("stats") or {}
            stats.retried += int(worker_stats.get("retried", 0) or 0)
            stats.timed_out += int(worker_stats.get("timed_out", 0) or 0)
            row = answer.get("ledger_row")
            if isinstance(row, dict):
                ledger_rows.append(row)
            for (index, job, key), outcome in zip(chunk.items, answer["outcomes"]):
                attempts = int(outcome.get("attempts", 1) or 1) + chunk.dispatches - 1
                result = None
                if outcome.get("status") == "done" and outcome.get("result") is not None:
                    digest = outcome.get("digest")
                    if isinstance(digest, str) and result_digest(
                        outcome["result"]
                    ) != digest:
                        # The payload does not match its own content digest:
                        # it was corrupted in transit (or the worker
                        # serialised garbage).  Reject, never merge.
                        stats.corrupt += 1
                        outcome = {
                            **outcome,
                            "error": "result digest mismatch in transit "
                                     "(corrupt batch envelope)",
                            "error_type": "IntegrityError",
                        }
                    else:
                        try:
                            result = SimulationResult.from_dict(outcome["result"])
                        except Exception:
                            result = None  # wire drift: count the job as failed
                if result is not None:
                    results[index] = result
                    if cache is not None:
                        cache.put(key, result.to_dict())
                    if manifest_path is not None:
                        append_outcome(manifest_path, ManifestEntry(
                            key=key, status="done", attempts=attempts,
                            benchmark=job.benchmark_name,
                            scheduler=job.scheduler,
                            backend=str(worker_stats.get("backend", "")),
                        ))
                    continue
                stats.failed += 1
                error = str(outcome.get("error") or "worker reported no result")
                error_type = str(outcome.get("error_type") or "RuntimeError")
                timed_out = bool(outcome.get("timed_out"))
                if manifest_path is not None:
                    append_outcome(manifest_path, ManifestEntry(
                        key=key,
                        status="timeout" if timed_out else "failed",
                        attempts=attempts,
                        benchmark=job.benchmark_name,
                        scheduler=job.scheduler,
                        error=f"{error_type}: {error}",
                    ))
                if on_error == "raise" and fleet.error is None:
                    fleet.error = SweepError(
                        job, RuntimeError(f"{error_type}: {error}")
                    )
                    continue
                results[index] = JobFailure(
                    job=job, error=error, error_type=error_type,
                    attempts=attempts, timed_out=timed_out,
                )

        def settle_lost_chunk(chunk: _Chunk) -> None:
            """Give up on a chunk no worker could run (under the lock)."""
            cause = chunk.last_error or RuntimeError("no healthy workers")
            for index, job, key in chunk.items:
                stats.failed += 1
                if manifest_path is not None:
                    append_outcome(manifest_path, ManifestEntry(
                        key=key, status="failed", attempts=chunk.dispatches,
                        benchmark=job.benchmark_name, scheduler=job.scheduler,
                        error=f"{type(cause).__name__}: {cause}",
                    ))
                if on_error == "raise":
                    if fleet.error is None:
                        fleet.error = SweepError(job, cause)
                else:
                    results[index] = JobFailure(
                        job=job, error=str(cause),
                        error_type=type(cause).__name__,
                        attempts=max(1, chunk.dispatches),
                    )

        def settle_chunk_or_orphan(chunk: _Chunk) -> None:
            """Re-queue a failed chunk, or settle it if out of attempts
            (called under the lock)."""
            if chunk.dispatches >= policy.max_attempts:
                settle_lost_chunk(chunk)
                fleet.unsettled -= 1
            else:
                fleet.orphans.append(chunk)

        def fleet_hopeless() -> bool:
            """Whether nobody will ever run the orphans (under the lock).

            Every breaker open *and* the collective probe budget spent:
            with no permanent dead set, this is what bounds termination
            when the whole roster is unreachable — any single success
            resets the budget.
            """
            return fleet.probe_failures >= policy.max_attempts * len(
                workers
            ) and all(b.state != "closed" for b in fleet.breakers.values())

        def audit_answer(
            chunk: _Chunk, answer: dict, *, distrusted: bool, handshaken: bool
        ) -> tuple[Optional[tuple], int]:
            """Re-execute a seeded sample of ``answer``'s done rows locally.

            Runs *off* the lock (re-execution is real simulation work).
            Returns ``(mismatch, audited)`` where ``mismatch`` is
            ``(index, job, key, detail)`` for the first digest divergence.
            Chaos-wrapped jobs are audited against the chaos *delegate*:
            the reference result is the ground truth the retry stack
            converges to, and re-drawing faults locally would audit the
            schedule, not the worker.
            """
            audited = 0
            first_done = True
            for (index, job, key), outcome in zip(chunk.items, answer["outcomes"]):
                if outcome.get("status") != "done":
                    continue
                if not isinstance(outcome.get("result"), dict):
                    continue
                selected = distrusted or audit_selected(policy.seed, key, audit_rate)
                if first_done and not handshaken:
                    # Handshake audit: a worker's first returned result is
                    # always verified, so a worker that lies about
                    # everything is caught before any outcome merges.
                    selected = True
                first_done = False
                if not selected:
                    continue
                audited += 1
                audit_job = job
                if getattr(job, "backend", None) == "chaos":
                    from repro.harness.faults import active_plan

                    plan_now = active_plan()
                    audit_job = replace(
                        job,
                        backend=plan_now.delegate if plan_now is not None else None,
                    )
                local = _execute(audit_job)
                local_digest = result_digest(local.to_dict())
                remote_digest = result_digest(outcome["result"])
                if local_digest != remote_digest:
                    return (
                        index,
                        job,
                        key,
                        f"local {local_digest[:12]} != worker {remote_digest[:12]}",
                    ), audited
            return None, audited

        def discard_worker_outcomes(
            position: int, chunk: _Chunk, mismatch: tuple
        ) -> None:
            """Audit failed: roll back everything ``position`` contributed
            (called under the lock)."""
            _, job, key, detail = mismatch
            stats.audit_failures += 1
            fleet.distrusted.add(position)
            error = (
                f"audit mismatch: worker {workers[position].address} returned "
                f"a result diverging from local re-execution ({detail})"
            )
            if manifest_path is not None:
                append_outcome(manifest_path, ManifestEntry(
                    key=key, status="failed", attempts=chunk.dispatches,
                    benchmark=job.benchmark_name, scheduler=job.scheduler,
                    error=error,
                ))
            ledger_rows.append({
                "kind": "audit",
                "ts": round(time.time(), 3),
                "worker": workers[position].address,
                "key": key,
                "verdict": "mismatch",
                "detail": detail,
            })
            # The in-flight chunk goes back up for grabs (its dispatch was
            # spent on a worker whose answers cannot be trusted) ...
            chunk.last_error = RuntimeError(error)
            settle_chunk_or_orphan(chunk)
            # ... and every chunk previously merged from this worker is
            # un-merged: result slots reset, wrongly cached entries
            # quarantined (a manifest "done" row whose cache entry is gone
            # simply re-runs on resume), chunks re-queued elsewhere.
            for merged in fleet.merged.pop(position, []):
                for m_index, _m_job, m_key in merged.items:
                    if isinstance(results[m_index], JobFailure):
                        stats.failed -= 1
                    results[m_index] = None
                    if cache is not None:
                        cache.quarantine_entry(
                            m_key,
                            f"audit: outcomes from "
                            f"{workers[position].address} discarded",
                        )
                fleet.orphans.append(merged)
                fleet.unsettled += 1

        def worker_loop(position: int, ref: WorkerRef) -> None:
            client = WorkerClient(ref, timeout=timeout)
            breaker = fleet.breakers[position]
            own = fleet.queues.get(position) or deque()
            validated = False  # healthz + schema verified since last failure

            def contact_failed(exc: BaseException, chunk: Optional[_Chunk]) -> None:
                """A probe or dispatch round trip failed (takes the lock)."""
                with fleet.wake:
                    breaker.record_failure()
                    fleet.probe_failures += 1
                    if chunk is not None:
                        chunk.last_error = exc
                        settle_chunk_or_orphan(chunk)
                    # Chunks still queued on an unreachable worker count one
                    # failed dispatch each — the same accounting as a failed
                    # round trip — and go up for grabs by the rest of the
                    # fleet.
                    while own:
                        lost = own.popleft()
                        lost.dispatches += 1
                        lost.last_error = exc
                        settle_chunk_or_orphan(lost)
                    if fleet_hopeless():
                        while fleet.orphans:
                            settle_lost_chunk(fleet.orphans.popleft())
                            fleet.unsettled -= 1
                    fleet.wake.notify_all()

            while True:
                chunk: Optional[_Chunk] = None
                with fleet.wake:
                    while True:
                        if fleet.unsettled == 0 or fleet.error is not None:
                            return
                        if validated and breaker.state == "closed":
                            if own:
                                chunk = own.popleft()
                                break
                            if fleet.orphans:
                                chunk = fleet.orphans.popleft()
                                break
                        elif breaker.allow():
                            break  # probe /healthz off-lock
                        fleet.wake.wait(timeout=0.05)
                    if chunk is not None:
                        chunk.dispatches += 1
                        redispatch = chunk.dispatches > 1

                if chunk is None:
                    # Probe: health + schema check before (re)admitting the
                    # worker.  Cheap, and the only path out of an open
                    # breaker — so a restarted worker rejoins here.
                    try:
                        health = client.healthz()
                    except (
                        OSError, http.client.HTTPException, WorkerError, ValueError,
                    ) as exc:
                        contact_failed(exc, None)
                        continue
                    problem = _worker_schema_drift(health)
                    if problem is not None:
                        with fleet.wake:
                            if fleet.error is None:
                                fleet.error = WorkerSchemaError(
                                    f"worker {ref.address} {problem}"
                                )
                            fleet.wake.notify_all()
                        return
                    validated = True
                    with fleet.wake:
                        breaker.record_success()
                        fleet.probe_failures = 0
                        fleet.wake.notify_all()
                    continue

                if redispatch:
                    with fleet.lock:
                        stats.retried += 1
                    time.sleep(
                        policy.backoff_seconds(chunk.backoff_key(), chunk.dispatches - 1)
                    )
                try:
                    answer = client.run_batch(
                        [job for _, job, _ in chunk.items],
                        on_error=worker_on_error,
                        retry=retry,
                    )
                except (
                    OSError, http.client.HTTPException, WorkerError, ValueError,
                ) as exc:
                    validated = False  # must re-pass healthz before rejoining
                    contact_failed(exc, chunk)
                    continue

                mismatch = None
                audit_count = 0
                if audit_rate > 0.0:
                    with fleet.lock:
                        is_distrusted = position in fleet.distrusted
                        is_handshaken = position in fleet.handshaken
                    try:
                        mismatch, audit_count = audit_answer(
                            chunk, answer,
                            distrusted=is_distrusted,
                            handshaken=is_handshaken,
                        )
                    except Exception as exc:
                        # The coordinator itself cannot re-execute (missing
                        # backend, bad config): auditing is impossible, and
                        # silently skipping it would be a false "verified".
                        with fleet.wake:
                            if fleet.error is None:
                                fleet.error = SweepError(
                                    chunk.items[0][1],
                                    RuntimeError(
                                        f"audit re-execution failed: {exc}"
                                    ),
                                )
                            fleet.wake.notify_all()
                        return

                with fleet.wake:
                    stats.audited += audit_count
                    if audit_count:
                        fleet.handshaken.add(position)
                    if mismatch is not None:
                        validated = False
                        breaker.record_failure()
                        discard_worker_outcomes(position, chunk, mismatch)
                        fleet.wake.notify_all()
                        continue
                    record_outcome(chunk, answer)
                    if audit_rate > 0.0:
                        fleet.merged.setdefault(position, []).append(chunk)
                    fleet.unsettled -= 1
                    breaker.record_success()
                    fleet.probe_failures = 0
                    fleet.wake.notify_all()

        threads = [
            threading.Thread(
                target=worker_loop, args=(position, ref),
                name=f"repro-dispatch-{position}", daemon=True,
            )
            for position, ref in enumerate(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if fleet.error is not None:
            raise fleet.error

    stats.wall_seconds = time.perf_counter() - start
    try:
        record_sweep(stats, keys=sweep_keys or None)
        for row in merge_ledger_entries([ledger_rows]):
            append_entry(row)
    except Exception:
        pass  # the ledger is best-effort; never fail a sweep over it
    return SweepOutcome(
        jobs=jobs,
        results=results,
        stats=stats,
        manifest_skipped=manifest_skipped,
    )
