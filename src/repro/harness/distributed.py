"""Cross-machine sharded sweeps: ``repro worker`` + the sweep coordinator.

This is the remote runner beside :class:`repro.harness.parallel._PoolRunner`
— the ROADMAP's "refactor that unlocks millions-of-users sweep volume".
Every ingredient already existed; this module only wires them together:

* **Workers** (:class:`WorkerServer`, the ``repro worker`` entry point) are
  long-lived processes reusing the serve layer's HTTP plumbing
  (:mod:`repro.serve.http`).  ``POST /batch`` accepts a
  :func:`repro.api.encode_request_batch` payload — the same versioned
  request wire forms ``repro serve`` speaks — executes it through
  :func:`repro.harness.parallel.run_jobs` with the full retry / timeout /
  chaos stack, and answers one outcome row per job plus the shard's sweep
  statistics and ledger row.
* **The coordinator** (:func:`run_distributed`, behind ``repro sweep
  --workers-at``) partitions the job list by content-addressed cache key
  (:class:`repro.harness.parallel.ShardPlan`), dispatches shard chunks to
  the workers, streams per-job outcomes into the *existing* append-only
  manifest as they arrive (so ``repro sweep --resume`` works across
  machines unchanged), merges results and ledger rows with dedup by cache
  key, and re-dispatches chunks lost to dead or unreachable workers onto
  healthy ones under the existing :class:`~repro.harness.parallel
  .RetryPolicy`.

Exactness: a job's seed lives in its ``RunConfig`` and results are
bit-identical wherever they execute, so a sharded sweep returns — by
construction — exactly what the single-machine sweep returns, whatever the
roster, chunking or failure history (asserted over the golden matrix by
``tests/test_distributed.py`` and the CI ``distributed-smoke`` job).  See
docs/DISTRIBUTED.md.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.api import (
    AnyRequest,
    MultiTenantRequest,
    decode_request_batch,
    encode_request_batch,
)
from repro.gpu.gpu import SimulationResult
from repro.harness.cache import ResultCache
from repro.harness.ledger import append_entry, merge_ledger_entries, record_sweep, sweep_entry
from repro.harness.manifest import ManifestEntry, append_outcome, load_manifest
from repro.harness.parallel import (
    AUTO_CACHE,
    ON_ERROR_MODES,
    JobFailure,
    RetryPolicy,
    ShardPlan,
    SweepError,
    SweepOutcome,
    SweepStats,
    _decode_cached,
    _resolved_backends,
    parse_positive_int,
    run_jobs,
)
from repro.serve.http import canonical_json, read_http_request, respond
from repro.version import __version__

#: Default TCP port of ``repro worker`` (``repro serve`` owns 8651).
DEFAULT_WORKER_PORT = 8652

#: Version of the worker's ``POST /batch`` response envelope.
OUTCOME_SCHEMA = 1

#: Jobs per dispatch chunk: the unit one HTTP round trip carries and the
#: most a lost worker forfeits.  Small enough that re-dispatch is cheap,
#: large enough to amortise the wire overhead.
DEFAULT_CHUNK_SIZE = 4

#: Fallback HTTP read timeout (seconds) when no policy deadline is set.  A
#: *dead* worker surfaces as an immediate connection error; this bound only
#: catches a worker that accepted a chunk and then hung.
DEFAULT_REQUEST_TIMEOUT = 600.0


# ---------------------------------------------------------------------------
# Worker rosters
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerRef:
    """One worker endpoint of a distributed sweep roster."""

    host: str
    port: int

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"


def parse_workers_at(text: str, *, what: str = "--workers-at") -> tuple[WorkerRef, ...]:
    """Parse a ``host:port,host:port`` roster with one-line errors.

    Accepts bare ``HOST:PORT`` entries or full ``http://HOST:PORT`` URLs;
    every malformed entry dies with a message naming the offending value
    (the same contract as the ``REPRO_WORKERS`` validation).
    """
    refs: list[WorkerRef] = []
    for raw in str(text).split(","):
        entry = raw.strip()
        if not entry:
            continue
        if entry.startswith("http://"):
            entry = entry[len("http://"):].rstrip("/")
        host, sep, port_text = entry.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"{what} entry {raw.strip()!r} must look like HOST:PORT"
            )
        port = parse_positive_int(port_text, what=f"{what} port in {raw.strip()!r}")
        if port > 65535:
            raise ValueError(f"{what} port {port} in {raw.strip()!r} is out of range")
        refs.append(WorkerRef(host=host, port=port))
    if not refs:
        raise ValueError(f"{what} names no workers")
    return tuple(refs)


def load_worker_roster(path: Union[str, Path]) -> tuple[WorkerRef, ...]:
    """Read a ``shards.json`` roster: ``{"workers": ["host:port", ...]}``.

    A bare JSON list of ``host:port`` strings is accepted too.  Errors name
    the file and the offending entry.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot read worker roster {path}: {exc}") from None
    except ValueError as exc:
        raise ValueError(f"worker roster {path} is not valid JSON: {exc}") from None
    if isinstance(payload, dict):
        payload = payload.get("workers")
    if not isinstance(payload, list) or not all(isinstance(e, str) for e in payload):
        raise ValueError(
            f'worker roster {path} must be {{"workers": ["host:port", ...]}} '
            "or a JSON list of host:port strings"
        )
    return parse_workers_at(",".join(payload), what=f"worker roster {path}")


# ---------------------------------------------------------------------------
# The worker process (``repro worker``)
# ---------------------------------------------------------------------------
class WorkerServer:
    """A long-lived sweep worker: ``POST /batch`` in, outcome rows out.

    Reuses the serve layer's HTTP plumbing verbatim; execution goes through
    :func:`run_jobs`, so the PR 8 resilience stack (per-job retry with
    seeded backoff, timeouts and straggler duplication on the pool path,
    seeded chaos via ``REPRO_CHAOS``) applies on the worker exactly as it
    does locally.  Batches execute one at a time — the worker's own
    ``--workers`` pool is the intra-batch parallelism.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_WORKER_PORT,
        workers: int = 1,
        backend: Optional[str] = None,
        cache: Union[ResultCache, str, None] = AUTO_CACHE,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.host = host
        self.port = port
        self.workers = workers
        self.backend = backend
        self.cache = cache
        self.batches = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self._busy = False
        self._draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._closed: Optional[asyncio.Event] = None
        self._batch_lock: Optional[asyncio.Lock] = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._closed = asyncio.Event()
        self._batch_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def begin_shutdown(self) -> None:
        if self._draining:
            return
        self._draining = True
        asyncio.get_running_loop().create_task(self._stop())

    async def _stop(self) -> None:
        # Let an in-flight batch finish: the lock serialises against it.
        assert self._batch_lock is not None
        async with self._batch_lock:
            pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self._closed is not None
        self._closed.set()

    async def wait_closed(self) -> None:
        assert self._closed is not None, "start() was not called"
        await self._closed.wait()

    # -- HTTP ----------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_http_request(reader)
            except (ValueError, asyncio.IncompleteReadError) as exc:
                await respond(writer, 400, {"error": f"bad request: {exc}"})
                return
            if request is None:
                return
            await self._route(request, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass  # coordinator went away mid-response
        except Exception as exc:  # never let a handler bug kill the loop
            try:
                await respond(writer, 500, {"error": f"internal error: {exc}"})
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(self, request, writer) -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz":
            if method != "GET":
                await respond(writer, 405, {"error": "use GET"})
                return
            await respond(writer, 200, {
                "status": "draining" if self._draining else "ok",
                "kind": "worker",
                "busy": self._busy,
                "workers": self.workers,
                "version": __version__,
            })
        elif path == "/batch":
            if method != "POST":
                await respond(writer, 405, {"error": "use POST"})
                return
            await self._handle_batch(request, writer)
        elif path == "/shutdown":
            if method != "POST":
                await respond(writer, 405, {"error": "use POST"})
                return
            await respond(writer, 200, {"status": "stopping"})
            self.begin_shutdown()
        else:
            await respond(writer, 404, {"error": f"unknown path {path!r}"})

    async def _handle_batch(self, http_request, writer) -> None:
        if self._draining:
            await respond(writer, 503, {"error": "worker is draining"})
            return
        try:
            payload = json.loads(http_request.body.decode("utf-8"))
            jobs = decode_request_batch(payload)
            options = payload.get("options") or {}
            on_error = options.get("on_error", "skip")
            if on_error not in ("skip", "retry"):
                raise ValueError(
                    f"worker on_error must be 'skip' or 'retry', got {on_error!r}"
                )
            retry_payload = options.get("retry")
            retry = (
                RetryPolicy.from_dict(retry_payload)
                if retry_payload is not None
                else None
            )
        except (ValueError, UnicodeDecodeError) as exc:
            await respond(writer, 400, {"error": f"bad batch payload: {exc}"})
            return
        assert self._batch_lock is not None
        async with self._batch_lock:
            self._busy = True
            try:
                loop = asyncio.get_running_loop()
                outcome = await loop.run_in_executor(
                    None,
                    lambda: run_jobs(
                        jobs,
                        workers=self.workers,
                        cache=self.cache,
                        backend=self.backend,
                        on_error=on_error,
                        retry=retry,
                    ),
                )
            except Exception as exc:
                await respond(writer, 500, {
                    "error": f"{type(exc).__name__}: {exc}",
                })
                return
            finally:
                self._busy = False
        rows = []
        keys: list[str] = []
        for job, result in outcome:
            if isinstance(result, JobFailure):
                self.jobs_failed += 1
                rows.append({
                    "status": "timeout" if result.timed_out else "failed",
                    "result": None,
                    "error": result.error,
                    "error_type": result.error_type,
                    "attempts": result.attempts,
                    "timed_out": result.timed_out,
                })
            else:
                self.jobs_done += 1
                rows.append({
                    "status": "done",
                    "result": result.to_dict(),
                    "error": None,
                    "error_type": None,
                    "attempts": 1,
                    "timed_out": False,
                })
            try:
                keys.append(job.cache_key())
            except Exception:
                pass
        self.batches += 1
        stats = outcome.stats
        await respond(writer, 200, canonical_json({
            "schema": OUTCOME_SCHEMA,
            "kind": "BatchOutcome",
            "outcomes": rows,
            "stats": {
                "jobs": stats.jobs,
                "cache_hits": stats.cache_hits,
                "executed": stats.executed,
                "workers": stats.workers,
                "backend": stats.backend,
                "failed": stats.failed,
                "retried": stats.retried,
                "timed_out": stats.timed_out,
                "wall_seconds": stats.wall_seconds,
            },
            "ledger_row": sweep_entry(stats, keys=keys or None),
        }))


async def run_worker(server: WorkerServer, *, announce=None) -> None:
    """Start ``server``, announce the bound address, serve until stopped.

    SIGINT/SIGTERM trigger the same graceful stop as ``POST /shutdown``
    (an in-flight batch finishes first).
    """
    import signal

    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, server.begin_shutdown)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or unsupported platform
    # Announce last: the line is the readiness contract scripts wait on,
    # so signals must already drain gracefully by the time it prints.
    if announce is not None:
        announce(f"repro worker listening on {server.address}")
    await server.wait_closed()


# ---------------------------------------------------------------------------
# The coordinator side
# ---------------------------------------------------------------------------
class WorkerClient:
    """Blocking HTTP client for one worker endpoint (stdlib only)."""

    def __init__(self, ref: WorkerRef, *, timeout: float = DEFAULT_REQUEST_TIMEOUT) -> None:
        self.ref = ref
        self.timeout = timeout

    def _request(self, method: str, path: str, body: Optional[bytes] = None) -> dict:
        conn = http.client.HTTPConnection(
            self.ref.host, self.ref.port, timeout=self.timeout
        )
        try:
            conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = conn.getresponse()
            data = response.read()
            if response.status != 200:
                raise WorkerError(
                    f"worker {self.ref.address} answered {response.status}: "
                    f"{data[:200].decode(errors='replace')}"
                )
            return json.loads(data)
        finally:
            conn.close()

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def run_batch(
        self,
        requests: Sequence[AnyRequest],
        *,
        on_error: str = "skip",
        retry: Optional[RetryPolicy] = None,
    ) -> dict:
        payload = encode_request_batch(requests)
        payload["options"] = {
            "on_error": on_error,
            "retry": retry.to_dict() if retry is not None else None,
        }
        answer = self._request("POST", "/batch", canonical_json(payload))
        if (
            answer.get("kind") != "BatchOutcome"
            or answer.get("schema") != OUTCOME_SCHEMA
            or not isinstance(answer.get("outcomes"), list)
            or len(answer["outcomes"]) != len(requests)
        ):
            raise WorkerError(
                f"worker {self.ref.address} returned a malformed batch outcome"
            )
        return answer

    def shutdown(self) -> None:
        self._request("POST", "/shutdown", b"")


class WorkerError(RuntimeError):
    """A worker answered, but not with a usable batch outcome."""


@dataclass
class _Chunk:
    """One dispatch unit: a few (index, job, key) items of one shard."""

    shard: int
    items: list  # [(index, job, key), ...]
    dispatches: int = 0
    last_error: Optional[BaseException] = None

    def backoff_key(self) -> str:
        return f"shard:{self.shard}:{self.items[0][0]}"


@dataclass
class _Fleet:
    """Shared coordinator state across per-worker dispatch threads."""

    queues: dict  # worker position -> deque[_Chunk]
    orphans: deque = field(default_factory=deque)
    unsettled: int = 0
    dead: set = field(default_factory=set)
    error: Optional[BaseException] = None
    lock: threading.Lock = field(default_factory=threading.Lock)
    wake: threading.Condition = field(init=False)

    def __post_init__(self) -> None:
        self.wake = threading.Condition(self.lock)


def run_distributed(
    jobs: Sequence[AnyRequest],
    workers: Sequence[WorkerRef],
    *,
    cache: Union[ResultCache, str, None] = AUTO_CACHE,
    backend: Optional[str] = None,
    on_error: str = "raise",
    retry: Optional[RetryPolicy] = None,
    manifest: Union[str, Path, None] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    request_timeout: Optional[float] = None,
) -> SweepOutcome:
    """Execute ``jobs`` across ``workers`` and return a local-identical outcome.

    The distributed counterpart of :func:`repro.harness.parallel.run_jobs`
    with the same signature shape and the same return type: results in
    submission order, cache hits served locally before anything is
    dispatched, per-job outcomes streamed into ``manifest`` as they settle.
    Shard membership is a pure function of the jobs' cache keys
    (:class:`ShardPlan`), so a resume re-plans identically.

    Failure semantics mirror ``run_jobs``: ``on_error="raise"`` aborts with
    :class:`SweepError` on the first failed job, ``"skip"`` / ``"retry"``
    leave typed :class:`JobFailure` slots (retries happen *on the worker*,
    under the shipped :class:`RetryPolicy`).  Additionally the coordinator
    re-dispatches chunks lost to dead workers onto healthy ones — bounded
    by ``retry.max_attempts`` dispatches per chunk with the policy's seeded
    backoff — and counts each extra dispatch in ``stats.retried``.
    """
    if on_error not in ON_ERROR_MODES:
        raise ValueError(
            f"unknown on_error mode {on_error!r} (choose from {ON_ERROR_MODES})"
        )
    workers = tuple(workers)
    if not workers:
        raise ValueError("run_distributed needs at least one worker")
    policy = retry if retry is not None else RetryPolicy()
    worker_on_error = "retry" if on_error == "retry" else "skip"
    timeout = request_timeout
    if timeout is None:
        timeout = policy.straggler_seconds or DEFAULT_REQUEST_TIMEOUT

    jobs = list(jobs)
    if backend is not None:
        jobs = [
            job
            if job.backend is not None or isinstance(job, MultiTenantRequest)
            else replace(job, backend=backend)
            for job in jobs
        ]
    if isinstance(cache, str):
        if cache != AUTO_CACHE:
            raise ValueError(f"unknown cache mode {cache!r}")
        cache = ResultCache.from_env()
    manifest_path = Path(manifest) if manifest is not None else None
    if manifest_path is not None:
        load_manifest(manifest_path)  # touch-load: malformed files surface here

    start = time.perf_counter()
    results: list[Any] = [None] * len(jobs)
    stats = SweepStats(
        jobs=len(jobs), workers=len(workers), backend=_resolved_backends(jobs)
    )
    pending: list[tuple[int, AnyRequest, str]] = []
    sweep_keys: list[str] = []
    for index, job in enumerate(jobs):
        # Keys are mandatory here (they define the shard plan and the
        # result merge); a job that cannot produce one fails the same way
        # an unknown benchmark fails in run_jobs.
        try:
            key = job.cache_key()
        except Exception as exc:
            if on_error == "raise":
                raise SweepError(job, exc) from exc
            stats.failed += 1
            results[index] = JobFailure(
                job=job, error=str(exc), error_type=type(exc).__name__,
            )
            continue
        sweep_keys.append(key)
        if cache is not None:
            hit = _decode_cached(cache.get(key))
            if hit is not None:
                results[index] = hit
                stats.cache_hits += 1
                continue
        pending.append((index, job, key))
    stats.executed = len(pending)

    ledger_rows: list[dict] = []
    if pending:
        plan = ShardPlan.build([key for _, _, key in pending], len(workers))
        fleet = _Fleet(queues={})
        chunks: list[_Chunk] = []
        for shard_index, positions in plan.chunks(chunk_size):
            chunk = _Chunk(shard=shard_index, items=[pending[p] for p in positions])
            chunks.append(chunk)
            fleet.queues.setdefault(shard_index, deque()).append(chunk)
        fleet.unsettled = len(chunks)

        def record_outcome(chunk: _Chunk, answer: dict) -> None:
            """Merge one chunk's outcome rows (called under the lock)."""
            worker_stats = answer.get("stats") or {}
            stats.retried += int(worker_stats.get("retried", 0) or 0)
            stats.timed_out += int(worker_stats.get("timed_out", 0) or 0)
            row = answer.get("ledger_row")
            if isinstance(row, dict):
                ledger_rows.append(row)
            for (index, job, key), outcome in zip(chunk.items, answer["outcomes"]):
                attempts = int(outcome.get("attempts", 1) or 1) + chunk.dispatches - 1
                result = None
                if outcome.get("status") == "done" and outcome.get("result") is not None:
                    try:
                        result = SimulationResult.from_dict(outcome["result"])
                    except Exception:
                        result = None  # wire drift: count the job as failed
                if result is not None:
                    results[index] = result
                    if cache is not None:
                        cache.put(key, result.to_dict())
                    if manifest_path is not None:
                        append_outcome(manifest_path, ManifestEntry(
                            key=key, status="done", attempts=attempts,
                            benchmark=job.benchmark_name,
                            scheduler=job.scheduler,
                            backend=str(worker_stats.get("backend", "")),
                        ))
                    continue
                stats.failed += 1
                error = str(outcome.get("error") or "worker reported no result")
                error_type = str(outcome.get("error_type") or "RuntimeError")
                timed_out = bool(outcome.get("timed_out"))
                if manifest_path is not None:
                    append_outcome(manifest_path, ManifestEntry(
                        key=key,
                        status="timeout" if timed_out else "failed",
                        attempts=attempts,
                        benchmark=job.benchmark_name,
                        scheduler=job.scheduler,
                        error=f"{error_type}: {error}",
                    ))
                if on_error == "raise" and fleet.error is None:
                    fleet.error = SweepError(
                        job, RuntimeError(f"{error_type}: {error}")
                    )
                    continue
                results[index] = JobFailure(
                    job=job, error=error, error_type=error_type,
                    attempts=attempts, timed_out=timed_out,
                )

        def settle_lost_chunk(chunk: _Chunk) -> None:
            """Give up on a chunk no worker could run (under the lock)."""
            cause = chunk.last_error or RuntimeError("no healthy workers")
            for index, job, key in chunk.items:
                stats.failed += 1
                if manifest_path is not None:
                    append_outcome(manifest_path, ManifestEntry(
                        key=key, status="failed", attempts=chunk.dispatches,
                        benchmark=job.benchmark_name, scheduler=job.scheduler,
                        error=f"{type(cause).__name__}: {cause}",
                    ))
                if on_error == "raise":
                    if fleet.error is None:
                        fleet.error = SweepError(job, cause)
                else:
                    results[index] = JobFailure(
                        job=job, error=str(cause),
                        error_type=type(cause).__name__,
                        attempts=max(1, chunk.dispatches),
                    )

        def worker_loop(position: int, ref: WorkerRef) -> None:
            client = WorkerClient(ref, timeout=timeout)
            own = fleet.queues.get(position) or deque()
            while True:
                with fleet.wake:
                    while True:
                        if fleet.unsettled == 0 or fleet.error is not None:
                            return
                        if position in fleet.dead:
                            return
                        if own:
                            chunk = own.popleft()
                            break
                        if fleet.orphans:
                            chunk = fleet.orphans.popleft()
                            break
                        fleet.wake.wait(timeout=0.05)
                    chunk.dispatches += 1
                    redispatch = chunk.dispatches > 1
                if redispatch:
                    with fleet.lock:
                        stats.retried += 1
                    time.sleep(
                        policy.backoff_seconds(chunk.backoff_key(), chunk.dispatches - 1)
                    )
                try:
                    answer = client.run_batch(
                        [job for _, job, _ in chunk.items],
                        on_error=worker_on_error,
                        retry=retry,
                    )
                except (
                    OSError, http.client.HTTPException, WorkerError, ValueError,
                ) as exc:
                    with fleet.wake:
                        chunk.last_error = exc
                        fleet.dead.add(position)
                        # This worker's whole queue is lost with it; chunks
                        # already tried elsewhere keep their dispatch count.
                        while own:
                            fleet.orphans.append(own.popleft())
                        live = len(workers) - len(fleet.dead)
                        if chunk.dispatches >= policy.max_attempts or live == 0:
                            settle_lost_chunk(chunk)
                            fleet.unsettled -= 1
                        else:
                            fleet.orphans.append(chunk)
                        if live == 0:
                            # Nobody is coming for the orphans; settle them.
                            while fleet.orphans:
                                settle_lost_chunk(fleet.orphans.popleft())
                                fleet.unsettled -= 1
                        fleet.wake.notify_all()
                    return
                with fleet.wake:
                    record_outcome(chunk, answer)
                    fleet.unsettled -= 1
                    fleet.wake.notify_all()

        threads = [
            threading.Thread(
                target=worker_loop, args=(position, ref),
                name=f"repro-dispatch-{position}", daemon=True,
            )
            for position, ref in enumerate(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if fleet.error is not None:
            raise fleet.error

    stats.wall_seconds = time.perf_counter() - start
    try:
        record_sweep(stats, keys=sweep_keys or None)
        for row in merge_ledger_entries([ledger_rows]):
            append_entry(row)
    except Exception:
        pass  # the ledger is best-effort; never fail a sweep over it
    return SweepOutcome(jobs=jobs, results=results, stats=stats)
