"""Content-addressed on-disk cache for simulation results.

Every (benchmark, scheduler, configuration) job the sweep engine executes is
fully determined by its inputs: the workload models are seeded, the simulator
has no other sources of nondeterminism, and the scheduler state is rebuilt
from scratch per run.  That makes simulation results safe to memoise on disk,
keyed by a stable hash of

* the full :class:`~repro.workloads.spec.BenchmarkSpec` (Table II facts plus
  every synthetic-model parameter),
* the canonical scheduler name and the constructor kwargs the runner derives
  for it (warp limits, token counts, CIAO parameters),
* the complete :class:`~repro.harness.runner.RunConfig` (scale, seed, launch
  geometry, GPU configuration, DRAM scaling, cycle budget), and
* a fingerprint of the ``repro`` package source, so any code change
  invalidates the cache automatically — no manual version bumps needed.

Environment knobs (see docs/EXPERIMENTS.md):

``REPRO_CACHE_DIR``
    Cache directory (default ``~/.cache/repro-ciao``).
``REPRO_RESULT_CACHE``
    Set to ``0`` / ``off`` / ``false`` to disable caching entirely (CI does
    this to stay hermetic).
``REPRO_CACHE_VERSION``
    Overrides the source fingerprint, pinning cache validity manually.
``REPRO_QUARANTINE_DIR``
    Where corrupt entries are preserved (default ``.repro/quarantine``);
    see :mod:`repro.harness.integrity`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.harness.integrity import (
    default_quarantine_dir,
    quarantine_file,
    result_digest,
)

#: Bumped when the cache payload layout changes (not when simulation
#: semantics change — the code fingerprint covers that).  Schema 2: the
#: sweep engine stores results in the versioned ``SimulationResult.to_dict``
#: form instead of pickled result objects.  Kept at 2 in *cache keys*
#: (changing it would orphan every existing entry for no semantic reason).
CACHE_SCHEMA = 2

#: On-disk envelope schema.  Schema 3 adds a ``"digest"`` field — the
#: blake2b content digest of the stored result (see
#: :func:`repro.harness.integrity.result_digest`) — verified on every
#: read.  Schema-2 (digest-less) envelopes written by older versions
#: remain readable; ``repro cache fsck --repair`` re-writes them into the
#: digested form.
ENVELOPE_SCHEMA = 3

_FALSY = ("0", "off", "false", "no")


def cache_enabled_by_env() -> bool:
    """Whether the environment allows result caching at all."""
    return os.environ.get("REPRO_RESULT_CACHE", "1").lower() not in _FALSY


def default_cache_dir() -> Path:
    """Cache root honouring ``REPRO_CACHE_DIR``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-ciao"


_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every ``.py`` file in the ``repro`` package.

    Any source change — a fixed bug, a retuned workload model — yields a new
    fingerprint and therefore fresh cache keys, so stale results can never be
    served after an edit.  ``REPRO_CACHE_VERSION`` overrides the computed
    value for users who want to pin validity across checkouts.
    """
    global _CODE_FINGERPRINT
    env = os.environ.get("REPRO_CACHE_VERSION")
    if env:
        return env
    if _CODE_FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_FINGERPRINT = digest.hexdigest()[:20]
    return _CODE_FINGERPRINT


def canonicalize(value: Any) -> Any:
    """Reduce a configuration object to JSON-serialisable primitives.

    Dataclasses become ``{"__type__": name, fields...}`` so two different
    config classes with identical field values cannot collide; enums become
    their qualified name; mappings are key-sorted by the JSON encoder later.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: dict[str, Any] = {"__type__": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = canonicalize(getattr(value, f.name))
        return out
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, Mapping):
        return {str(k): canonicalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return [canonicalize(v) for v in items]
    if isinstance(value, float):
        # repr() round-trips exactly; formatting would alias nearby floats.
        return f"f:{value!r}"
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return f"repr:{value!r}"


def job_key(
    spec: Any,
    scheduler: str,
    scheduler_kwargs: Mapping[str, Any],
    run_config: Any,
    *,
    backend: str = "reference",
    code_version: Optional[str] = None,
) -> str:
    """Stable content hash identifying one simulation job.

    ``backend`` is the *resolved* execution-engine name: engines may model
    timing differently (e.g. lock-step multi-SM contention), so their
    results must never be served from each other's cache entries.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "code": code_version if code_version is not None else code_fingerprint(),
        "benchmark": canonicalize(spec),
        "scheduler": scheduler,
        "scheduler_kwargs": canonicalize(dict(scheduler_kwargs)),
        "run_config": canonicalize(run_config),
        "backend": backend,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def multi_tenant_job_key(
    tenant_payloads: list,
    run_config: Any,
    *,
    backend: str,
    code_version: Optional[str] = None,
) -> str:
    """Stable content hash identifying one multi-tenant (co-located) job.

    ``tenant_payloads`` carries, per tenant, the canonicalized benchmark
    spec, scheduler name + kwargs, the tenant label **and the SM-partition
    assignment** — two co-location jobs that differ only in which SMs a
    tenant occupies contend differently and must never share an entry
    (pinned by ``tests/test_result_cache.py``).
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "kind": "multi-tenant",
        "code": code_version if code_version is not None else code_fingerprint(),
        "tenants": canonicalize(tenant_payloads),
        "run_config": canonicalize(run_config),
        "backend": backend,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Pickle-backed content-addressed store of :class:`SimulationResult`.

    Entries live at ``<root>/<key[:2]>/<key>.pkl`` and are written atomically
    (temp file + ``os.replace``) so concurrent workers and interrupted runs
    can never leave a torn entry behind.  Each envelope carries a blake2b
    content digest of the stored result (:data:`ENVELOPE_SCHEMA`) that is
    verified on every read; a corrupt, torn or digest-mismatched entry is
    treated as a miss and *quarantined* — moved into the quarantine
    directory with a reason sidecar, never silently unlinked — so bit rot
    and tampering leave evidence (``repro cache fsck`` reports it).

    Concurrency: any number of writers may race on the *same* key — each
    writes its own ``mkstemp`` temp file and the final ``os.replace`` is
    atomic on POSIX, so a reader observes either no entry or one complete
    entry, never interleaved bytes (pinned by
    ``tests/test_result_cache.py::TestConcurrentAccess``).  Readers that
    must not perturb a live store (the serving layer's lookup-without-
    execute path) use :meth:`peek`, which mutates no counters and never
    deletes entries.
    """

    def __init__(
        self,
        root: Optional[Path | str] = None,
        *,
        quarantine: Union[Path, str, None] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.quarantine = (
            Path(quarantine) if quarantine is not None else default_quarantine_dir()
        )
        self.stats = CacheStats()

    @classmethod
    def from_env(cls) -> Optional["ResultCache"]:
        """The default cache, or ``None`` when caching is disabled by env."""
        if not cache_enabled_by_env():
            return None
        return cls()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _validate(self, payload: Any, key: str) -> Any:
        """Return the result inside ``payload`` or raise on any corruption."""
        if not isinstance(payload, Mapping) or payload.get("key") != key:
            raise ValueError("stale or mismatched cache entry")
        schema = payload.get("schema")
        if schema == ENVELOPE_SCHEMA:
            if result_digest(payload.get("result")) != payload.get("digest"):
                raise ValueError("digest mismatch (bit rot or tampering)")
            return payload["result"]
        if schema == CACHE_SCHEMA:
            # Digest-less legacy envelope: still readable; fsck --repair
            # upgrades it to the digested form.
            return payload["result"]
        raise ValueError(f"unknown cache envelope schema {schema!r}")

    def _quarantine_path(self, path: Path, reason: str) -> Optional[Path]:
        """Move a damaged entry aside (best-effort; falls back to unlink)."""
        dest = quarantine_file(
            path, reason, quarantine=self.quarantine, source=f"cache:{self.root}"
        )
        if dest is not None:
            self.stats.quarantined += 1
            return dest
        try:
            # Quarantine dir unwritable: removing the entry is still better
            # than re-failing every future read on it.
            path.unlink(missing_ok=True)
        except OSError:
            pass  # read-only/shared cache dir: still just a miss
        return None

    def quarantine_entry(self, key: str, reason: str) -> Optional[Path]:
        """Quarantine the entry for ``key`` (audit rollback, fsck).

        Returns the quarantined path, or ``None`` when there was nothing
        to move (or the move failed and the entry was unlinked instead).
        """
        path = self._path(key)
        if not path.exists():
            return None
        return self._quarantine_path(path, reason)

    def get(self, key: str) -> Optional[Any]:
        """Return the stored result for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            result = self._validate(payload, key)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception as exc:
            # Torn write, unpicklable payload, digest mismatch, schema
            # drift: quarantine the evidence and re-run the job.
            self.stats.errors += 1
            self.stats.misses += 1
            self._quarantine_path(path, f"{type(exc).__name__}: {exc}")
            return None
        self.stats.hits += 1
        return result

    def peek(self, key: str) -> Optional[Any]:
        """Look ``key`` up without executing anything and without side effects.

        The serving layer's lookup-without-execute path: unlike :meth:`get`
        a peek mutates no hit/miss counters (the service keeps its own
        authoritative counters) and never deletes or quarantines an entry
        it cannot read — a concurrent writer may be mid-``os.replace``, and
        what looks torn to a peek can be a complete entry a millisecond
        later.  Returns the stored result, or ``None`` when the key is
        absent, unreadable, or fails its digest check.
        """
        try:
            with open(self._path(key), "rb") as fh:
                payload = pickle.load(fh)
            return self._validate(payload, key)
        except Exception:
            return None

    def put(self, key: str, result: Any) -> None:
        """Store ``result`` under ``key`` atomically, digest included."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": ENVELOPE_SCHEMA,
            "key": key,
            "result": result,
            "digest": result_digest(result),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            self.stats.errors += 1
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            return
        self.stats.puts += 1

    # ------------------------------------------------------------------
    def _entries(self):
        if not self.root.exists():
            return
        yield from self.root.glob("*/*.pkl")

    def entry_count(self) -> int:
        """Number of cached results on disk."""
        return sum(1 for _ in self._entries())

    def size_bytes(self) -> int:
        """Total on-disk size of the cache."""
        return sum(p.stat().st_size for p in self._entries())

    def clear(self) -> int:
        """Remove every entry; returns how many were removed.

        Healthy entries are deleted outright (clearing is explicit user
        intent), but an entry that fails validation is quarantined instead
        — corruption discovered during a clear is still evidence worth
        keeping (counted in :attr:`CacheStats.quarantined`).
        """
        removed = 0
        for path in list(self._entries()):
            try:
                with open(path, "rb") as fh:
                    self._validate(pickle.load(fh), path.stem)
            except Exception as exc:
                self._quarantine_path(path, f"clear: {type(exc).__name__}: {exc}")
                removed += 1
                continue
            path.unlink(missing_ok=True)
            removed += 1
        return removed
