"""End-to-end result integrity: content digests, quarantine, ``fsck``.

The reproduction's value rests on bit-exact results, but every persistent
artifact — cache entries, checkpoint manifests, the bench ledger — and
every byte a remote worker returns used to be trusted blindly.  This
module is the shared vocabulary the integrity layer (docs/RESILIENCE.md)
is built from:

* :func:`result_digest` — the blake2b content digest of a result's
  canonical JSON wire form.  Stamped into cache envelopes
  (:mod:`repro.harness.cache`), onto worker ``/batch`` outcome rows
  (:mod:`repro.harness.distributed`) and into the serve layer's
  ``X-Repro-Digest`` response header, so the same result hashes the same
  everywhere it travels.
* :func:`quarantine_file` / :func:`quarantine_bytes` — damaged artifacts
  are *moved aside with a reason*, never silently unlinked: corruption is
  evidence (bad disk, torn write, misbehaving worker) and destroying it
  hides the incident it should surface.  Quarantined files land in
  ``.repro/quarantine/`` (override: ``REPRO_QUARANTINE_DIR``) next to a
  ``*.reason.json`` sidecar saying what was wrong and where it came from.
* :func:`fsck` — the scanner behind ``repro cache fsck [--repair]``:
  verifies every cache envelope digest, counts damaged manifest/ledger
  lines, quarantines corrupt entries, and (with ``repair=True``) re-writes
  repairable legacy envelopes and strips damaged lines after preserving
  the original bytes in quarantine.
* :func:`audit_selected` — the seeded per-key audit sample of the
  distributed coordinator (``repro sweep --audit-rate``), a pure function
  of ``(seed, cache key)`` exactly like the :class:`~repro.harness.faults
  .FaultPlan` schedule, so two coordinators audit the same jobs.
* :func:`fsync_enabled` — the opt-in ``REPRO_FSYNC`` crash-durability knob
  shared by manifest and ledger appends.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.harness.faults import _unit_draw

#: Bytes of blake2b output in a :func:`result_digest` (hex doubles it).
DIGEST_SIZE = 16

#: Suffix quarantined artifacts are renamed with (so a quarantined cache
#: entry can never be globbed back up as a live ``*.pkl`` entry).
QUARANTINE_SUFFIX = ".quarantined"

_TRUTHY = ("1", "on", "true", "yes")


# ---------------------------------------------------------------------------
# Content digests
# ---------------------------------------------------------------------------
def result_digest(payload: Any) -> str:
    """Blake2b content digest of a result payload's canonical JSON form.

    ``payload`` is normally a ``SimulationResult.to_dict()`` wire form, but
    any JSON-ish value digests deterministically (sorted keys, compact
    separators, ``repr`` fallback for exotic leaves).  Floats use the JSON
    ``repr`` round-trip, so bit-identical results — the repository's
    exactness contract — produce identical digests and any bit flip
    produces a different one.
    """
    try:
        blob = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), default=repr
        )
    except (TypeError, ValueError):
        # Unsortable mixed-type keys and friends: repr() is still a
        # deterministic rendering of the same in-memory value.
        blob = repr(payload)
    return hashlib.blake2b(blob.encode(), digest_size=DIGEST_SIZE).hexdigest()


# ---------------------------------------------------------------------------
# Quarantine
# ---------------------------------------------------------------------------
def default_quarantine_dir() -> Path:
    """Quarantine directory honouring ``REPRO_QUARANTINE_DIR``.

    Defaults to ``.repro/quarantine`` under the working directory, beside
    the bench ledger's ``.repro/`` home.
    """
    env = os.environ.get("REPRO_QUARANTINE_DIR")
    if env:
        return Path(env).expanduser()
    return Path(".repro") / "quarantine"


def _quarantine_dest(qdir: Path, name: str) -> Path:
    dest = qdir / f"{name}{QUARANTINE_SUFFIX}"
    serial = 0
    while dest.exists():
        serial += 1
        dest = qdir / f"{name}.{serial}{QUARANTINE_SUFFIX}"
    return dest


def _write_reason(dest: Path, reason: str, source: str) -> None:
    sidecar = dest.with_name(dest.name + ".reason.json")
    sidecar.write_text(
        json.dumps(
            {
                "reason": reason,
                "source": source,
                "quarantined_as": dest.name,
                "ts": round(time.time(), 3),
            },
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )


def quarantine_file(
    path: Union[str, Path],
    reason: str,
    *,
    quarantine: Union[str, Path, None] = None,
    source: str = "",
) -> Optional[Path]:
    """Move a damaged artifact into quarantine with a reason sidecar.

    Best-effort by design (a read-only cache directory must never fail a
    sweep): returns the quarantined path, or ``None`` when the move could
    not happen.  The file is renamed with :data:`QUARANTINE_SUFFIX` so it
    can never be re-discovered as a live artifact.
    """
    path = Path(path)
    qdir = Path(quarantine) if quarantine is not None else default_quarantine_dir()
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        dest = _quarantine_dest(qdir, path.name)
        os.replace(path, dest)
        _write_reason(dest, reason, source or str(path))
        return dest
    except OSError:
        return None


def quarantine_bytes(
    data: bytes,
    name: str,
    reason: str,
    *,
    quarantine: Union[str, Path, None] = None,
    source: str = "",
) -> Optional[Path]:
    """Preserve a *copy* of damaged bytes in quarantine (repair flows).

    Used when the original file must keep existing — e.g. ``fsck --repair``
    strips damaged lines from a manifest in place but first preserves the
    original bytes here.  Best-effort; returns the written path or ``None``.
    """
    qdir = Path(quarantine) if quarantine is not None else default_quarantine_dir()
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        dest = _quarantine_dest(qdir, name)
        dest.write_bytes(data)
        _write_reason(dest, reason, source or name)
        return dest
    except OSError:
        return None


def quarantined_artifacts(
    quarantine: Union[str, Path, None] = None,
) -> list[Path]:
    """The quarantined artifact files (reason sidecars excluded)."""
    qdir = Path(quarantine) if quarantine is not None else default_quarantine_dir()
    if not qdir.is_dir():
        return []
    return sorted(
        p for p in qdir.iterdir()
        if p.name.endswith(QUARANTINE_SUFFIX)
    )


# ---------------------------------------------------------------------------
# Crash durability
# ---------------------------------------------------------------------------
def fsync_enabled() -> bool:
    """Whether ``REPRO_FSYNC`` asks appends to fsync (opt-in, default off).

    Manifest and ledger appends always flush, which survives a process
    crash; an fsync additionally survives the *machine* losing power
    mid-sweep, at a per-line latency cost — hence opt-in.  Either way a
    torn tail is detected (and repaired) by ``repro cache fsck``.
    """
    return os.environ.get("REPRO_FSYNC", "").lower() in _TRUTHY


# ---------------------------------------------------------------------------
# Seeded audit sampling
# ---------------------------------------------------------------------------
def audit_selected(seed: int, key: str, rate: float) -> bool:
    """Whether the coordinator audits the job with cache key ``key``.

    A pure function of ``(seed, key)`` — the same blake2b unit draw the
    :class:`~repro.harness.faults.FaultPlan` schedule uses — so the audit
    sample is reproducible across coordinators and resumes.  Each key's
    draw is independent: with rate *r* over *n* worker-returned jobs the
    expected audit count is ``r·n`` and the chance a consistently-lying
    worker's job set escapes entirely is ``(1-r)^n`` (the coordinator
    additionally force-audits every worker's first returned result).
    """
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    return _unit_draw(seed, "audit", key) < rate


# ---------------------------------------------------------------------------
# fsck
# ---------------------------------------------------------------------------
@dataclass
class Artifact:
    """One scanned artifact's verdict within an :func:`fsck` report."""

    kind: str  # "cache" | "manifest" | "ledger"
    path: str
    verdict: str  # "ok" | "legacy" | "corrupt" | "damaged" | "missing"
    detail: str = ""
    damaged_lines: int = 0
    quarantined: bool = False
    repaired: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "path": self.path,
            "verdict": self.verdict,
            "detail": self.detail,
            "damaged_lines": self.damaged_lines,
            "quarantined": self.quarantined,
            "repaired": self.repaired,
        }


@dataclass
class FsckReport:
    """Per-artifact verdicts of one integrity scan."""

    artifacts: list[Artifact] = field(default_factory=list)
    repair: bool = False

    def count(self, verdict: str) -> int:
        return sum(1 for a in self.artifacts if a.verdict == verdict)

    @property
    def corrupt(self) -> int:
        return self.count("corrupt")

    @property
    def legacy(self) -> int:
        return self.count("legacy")

    @property
    def damaged_lines(self) -> int:
        return sum(a.damaged_lines for a in self.artifacts)

    @property
    def unrepaired_damage(self) -> int:
        """Damaged lines still present on disk after this scan."""
        return sum(
            a.damaged_lines for a in self.artifacts if not a.repaired
        )

    @property
    def clean(self) -> bool:
        """Exit-0 condition: nothing corrupt found, no damage left on disk.

        A scan that quarantined corrupt entries still reports unclean —
        damage *happened* and the operator should see a nonzero exit; the
        follow-up scan (after ``--repair`` for line damage) reports clean.
        """
        return self.corrupt == 0 and self.unrepaired_damage == 0

    def to_dict(self) -> dict:
        return {
            "artifacts": [a.to_dict() for a in self.artifacts],
            "checked": len(self.artifacts),
            "corrupt": self.corrupt,
            "legacy": self.legacy,
            "damaged_lines": self.damaged_lines,
            "unrepaired_damage": self.unrepaired_damage,
            "repair": self.repair,
            "clean": self.clean,
        }


def _fsck_cache(cache, report: FsckReport, *, repair: bool) -> None:
    import pickle

    from repro.harness.cache import CACHE_SCHEMA, ENVELOPE_SCHEMA

    for path in sorted(cache._entries()):
        key = path.stem
        artifact = Artifact(kind="cache", path=str(path), verdict="ok")
        report.artifacts.append(artifact)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except Exception as exc:
            artifact.verdict = "corrupt"
            artifact.detail = f"unreadable: {type(exc).__name__}: {exc}"
            artifact.quarantined = (
                cache.quarantine_entry(key, artifact.detail) is not None
            )
            continue
        if not isinstance(payload, dict) or payload.get("key") != key:
            artifact.verdict = "corrupt"
            artifact.detail = "key mismatch (entry stored under the wrong key)"
        elif payload.get("schema") == ENVELOPE_SCHEMA:
            if result_digest(payload.get("result")) != payload.get("digest"):
                artifact.verdict = "corrupt"
                artifact.detail = "digest mismatch (bit rot or tampering)"
        elif payload.get("schema") == CACHE_SCHEMA:
            artifact.verdict = "legacy"
            artifact.detail = "digest-less legacy envelope (repairable)"
            if repair:
                cache.put(key, payload.get("result"))
                artifact.repaired = True
        else:
            artifact.verdict = "corrupt"
            artifact.detail = (
                f"unknown cache envelope schema {payload.get('schema')!r}"
            )
        if artifact.verdict == "corrupt":
            artifact.quarantined = (
                cache.quarantine_entry(key, artifact.detail) is not None
            )


def _fsck_lines(
    path: Path,
    kind: str,
    report: FsckReport,
    *,
    repair: bool,
    quarantine: Union[str, Path, None],
) -> None:
    artifact = Artifact(kind=kind, path=str(path), verdict="ok")
    report.artifacts.append(artifact)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        artifact.verdict = "missing"
        artifact.detail = "no such file"
        return
    except OSError as exc:
        artifact.verdict = "corrupt"
        artifact.detail = f"unreadable: {exc}"
        return
    good: list[str] = []
    damaged = 0
    for line in data.decode("utf-8", errors="replace").splitlines():
        if not line.strip():
            continue
        try:
            json.loads(line)
        except ValueError:
            damaged += 1
            continue
        good.append(line)
    if not damaged:
        return
    artifact.verdict = "damaged"
    artifact.damaged_lines = damaged
    artifact.detail = f"{damaged} damaged line(s) (torn write or corruption)"
    if repair:
        # Preserve the evidence first, then atomically rewrite only the
        # parseable lines (future-schema lines are intact JSON and kept).
        artifact.quarantined = (
            quarantine_bytes(
                data,
                path.name,
                artifact.detail,
                quarantine=quarantine,
                source=str(path),
            )
            is not None
        )
        tmp = path.with_name(path.name + ".fsck-tmp")
        tmp.write_text(
            "".join(line + "\n" for line in good), encoding="utf-8"
        )
        os.replace(tmp, path)
        artifact.repaired = True


def fsck(
    *,
    cache=None,
    manifests: Sequence[Union[str, Path]] = (),
    ledger: Union[str, Path, None] = None,
    repair: bool = False,
    quarantine: Union[str, Path, None] = None,
) -> FsckReport:
    """Scan cache + manifests + ledger and report per-artifact verdicts.

    Cache entries: a corrupt entry (unpicklable, key mismatch, digest
    mismatch, unknown schema) is quarantined *whether or not* ``repair``
    is set — it can never be served, and leaving it in place would just
    re-fail the next read; a ``legacy`` digest-less envelope is readable
    and only re-written (to the digested form) under ``repair``.

    Manifests and the ledger: lines that fail to parse are counted as
    damage; under ``repair`` the original bytes are preserved in
    quarantine and the file is atomically rewritten with only its intact
    lines.

    The caller maps :attr:`FsckReport.clean` onto the exit code (``repro
    cache fsck`` exits 1 when corruption was found or damage remains).
    """
    report = FsckReport(repair=repair)
    if cache is not None:
        _fsck_cache(cache, report, repair=repair)
    for manifest in manifests:
        _fsck_lines(
            Path(manifest), "manifest", report,
            repair=repair, quarantine=quarantine,
        )
    if ledger is not None:
        _fsck_lines(
            Path(ledger), "ledger", report,
            repair=repair, quarantine=quarantine,
        )
    return report
