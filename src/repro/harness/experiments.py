"""Per-figure / per-table experiment definitions.

Each function regenerates the data behind one table or figure of the paper's
evaluation section and returns plain Python data structures (dicts / lists)
so the benches can print them and docs/EXPERIMENTS.md can record them.  All
of them accept a ``scale`` (workload size multiplier) and, where meaningful,
a restricted benchmark list so the pytest-benchmark harnesses stay fast.

Every simulation is submitted through the parallel sweep engine
(:mod:`repro.harness.parallel`): the ``workers`` argument fans independent
(benchmark, scheduler, config) jobs out over a process pool, and the
``cache`` argument controls the content-addressed result cache
(:mod:`repro.harness.cache`) so re-generating a figure whose runs overlap an
earlier experiment is near-free.  Both default to the environment
(``REPRO_WORKERS``, ``REPRO_RESULT_CACHE``); results are bit-identical for
any worker count.

Index (see docs/ARCHITECTURE.md for the full mapping):

========  =====================================================
Fig. 1a   ``fig1_interference_matrix``
Fig. 1b   ``fig1_bestswl_vs_ccws``
Fig. 4a/b ``fig4_interference_characterisation``
Table I   ``table1_configuration``
Table II  ``table2_benchmarks``
Fig. 8a/b ``fig8_main_comparison``
Fig. 9    ``fig9_timeseries``
Fig. 10   ``fig10_working_set``
Fig. 11a  ``fig11_sensitivity_epoch``
Fig. 11b  ``fig11_sensitivity_cutoff``
Fig. 12a  ``fig12_cache_configs``
Fig. 12b  ``fig12_dram_bandwidth``
Sec. V-F  ``overhead_analysis``
========  =====================================================
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.analysis.area import AreaModel
from repro.analysis.metrics import (
    class_geomeans,
    interference_summary,
    normalized_ipc_table,
    shared_memory_utilization_by_class,
    speedup_summary,
    tenant_slowdowns,
)
from repro.analysis.power import PowerModel
from repro.core.config import CIAOParameters
from repro.gpu.config import GPUConfig
from repro.api import SimulationRequest
from repro.harness.parallel import SweepOutcome, run_jobs
from repro.harness.runner import RunConfig, run_many
from repro.workloads.registry import (
    MEMORY_INTENSIVE_BENCHMARKS,
    TABLE_II_ROWS,
    all_benchmarks,
    benchmark_names,
)
from repro.workloads.spec import WorkloadClass

#: The seven schedulers of Figure 8a, in plotting order.
FIGURE8_SCHEDULERS = ("gto", "ccws", "best-swl", "statpcal", "ciao-t", "ciao-p", "ciao-c")


def _sweep(
    jobs: Sequence[SimulationRequest], workers, cache, backend=None
) -> SweepOutcome:
    """Run ``jobs`` through the engine (shared by every experiment below)."""
    return run_jobs(jobs, workers=workers, cache=cache, backend=backend)


def _engine_stats(stats) -> dict:
    """Serialisable engine statistics attached to experiment outputs."""
    return {
        "jobs": stats.jobs,
        "cache_hits": stats.cache_hits,
        "executed": stats.executed,
        "workers": stats.workers,
        "wall_seconds": stats.wall_seconds,
        "backend": stats.backend,
    }


# ---------------------------------------------------------------------------
# Motivation figures
# ---------------------------------------------------------------------------
def fig1_interference_matrix(
    *,
    benchmark: str = "Backprop",
    scale: float = 0.4,
    seed: int = 1,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
) -> dict:
    """Figure 1a: pairwise warp interference heat-map data for Backprop."""
    config = RunConfig(scale=scale, seed=seed)
    outcome = _sweep([SimulationRequest(benchmark, "gto", config)], workers, cache, backend)
    result = outcome.results[0]
    summary = interference_summary(result, top_n=20)
    matrix = result.sm0.interference_matrix
    return {
        "benchmark": benchmark,
        "matrix": {victim: dict(row) for victim, row in matrix.items()},
        "summary": summary,
        "engine": _engine_stats(outcome.stats),
    }


def fig1_bestswl_vs_ccws(
    *,
    benchmark: str = "Backprop",
    scale: float = 0.4,
    seed: int = 1,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
) -> dict:
    """Figure 1b: IPC / hit rate / active warps of Best-SWL vs CCWS."""
    config = RunConfig(scale=scale, seed=seed)
    outcome = _sweep(
        [SimulationRequest(benchmark, sched, config) for sched in ("best-swl", "ccws")],
        workers,
        cache,
        backend,
    )
    rows = {}
    for job, result in outcome:
        stats = result.sm0
        rows[job.scheduler] = {
            "ipc": result.ipc,
            "l1d_hit_rate": stats.l1d_hit_rate,
            "mean_active_warps": stats.active_warp_series.mean(),
        }
    baseline = max(rows["best-swl"]["ipc"], rows["ccws"]["ipc"], 1e-9)
    for row in rows.values():
        row["ipc_normalized"] = row["ipc"] / baseline
    return {"benchmark": benchmark, "rows": rows, "engine": _engine_stats(outcome.stats)}


def fig4_interference_characterisation(
    *,
    focus_benchmark: str = "KMN",
    benchmarks: Optional[Sequence[str]] = None,
    scale: float = 0.35,
    seed: int = 1,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
) -> dict:
    """Figure 4a/b: interference frequency distribution per warp and workload."""
    config = RunConfig(scale=scale, seed=seed)
    extreme_names = list(benchmarks or MEMORY_INTENSIVE_BENCHMARKS[:4])
    jobs = [SimulationRequest(focus_benchmark, "gto", config, tag="focus")]
    jobs += [SimulationRequest(name, "gto", config, tag="extremes") for name in extreme_names]
    outcome = _sweep(jobs, workers, cache, backend)
    focus_summary = interference_summary(outcome.results[0], top_n=48)
    extremes = {
        job.benchmark_name: result.sm0.interference_extremes()
        for job, result in outcome
        if job.tag == "extremes"
    }
    return {
        "focus_benchmark": focus_benchmark,
        "focus_top_pairs": focus_summary["top_pairs"],
        "per_workload_min_max": extremes,
        "engine": _engine_stats(outcome.stats),
    }


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------
def table1_configuration() -> dict:
    """Table I: the simulated machine configuration."""
    config = GPUConfig.gtx480(num_sms=15)
    return {
        "num_sms": config.chip_sms,
        "max_threads_per_sm": config.max_threads_per_sm,
        "l1d_kb": config.l1d.size_bytes // 1024,
        "l1d_assoc": config.l1d.associativity,
        "l1d_line": config.l1d.line_size,
        "shared_memory_kb": config.shared_memory_bytes // 1024,
        "l2_kb": config.l2.size_bytes // 1024,
        "l2_assoc": config.l2.associativity,
        "vta_entries_per_warp": config.vta.entries_per_warp,
        "vta_sets": config.vta.num_warps,
        "mshr_entries": config.mshr_entries,
    }


def table2_benchmarks() -> list[dict]:
    """Table II: benchmark characteristics."""
    return TABLE_II_ROWS()


# ---------------------------------------------------------------------------
# Main comparison (Figure 8)
# ---------------------------------------------------------------------------
def fig8_main_comparison(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    schedulers: Sequence[str] = FIGURE8_SCHEDULERS,
    scale: float = 0.3,
    seed: int = 1,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
) -> dict:
    """Figure 8a/b: normalised IPC per benchmark + class geomeans + shared-memory use."""
    names = list(benchmarks or benchmark_names())
    results, stats = run_many(
        names,
        list(schedulers),
        scale=scale,
        seed=seed,
        workers=workers,
        cache=cache,
        backend=backend,
        return_stats=True,
    )
    normalized = normalized_ipc_table(results)
    return {
        "benchmarks": names,
        "schedulers": list(schedulers),
        "normalized_ipc": normalized,
        "geomean_speedup": speedup_summary(results),
        "class_geomeans": class_geomeans(results),
        "shared_memory_utilization": shared_memory_utilization_by_class(results),
        "raw_ipc": {
            bench: {sched: res.ipc for sched, res in row.items()}
            for bench, row in results.items()
        },
        "engine": _engine_stats(stats),
    }


# ---------------------------------------------------------------------------
# Time-series studies (Figures 9 and 10)
# ---------------------------------------------------------------------------
def _timeseries_rows(result) -> dict:
    stats = result.sm0
    return {
        "ipc": stats.ipc_series.as_pairs(),
        "active_warps": stats.active_warp_series.as_pairs(),
        "interference": stats.interference_series.as_pairs(),
    }


def fig9_timeseries(
    *,
    benchmarks: Sequence[str] = ("ATAX", "Backprop"),
    schedulers: Sequence[str] = ("best-swl", "ccws", "ciao-t"),
    scale: float = 0.4,
    seed: int = 1,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
) -> dict:
    """Figure 9: IPC / active warps / interference over time (ATAX, Backprop)."""
    config = RunConfig(scale=scale, seed=seed)
    jobs = [
        SimulationRequest(bench, sched, config)
        for bench in benchmarks
        for sched in schedulers
    ]
    outcome = _sweep(jobs, workers, cache, backend)
    out: dict = {}
    for job, result in outcome:
        out.setdefault(job.benchmark_name, {})[job.scheduler] = _timeseries_rows(result)
    return out


def fig10_working_set(
    *,
    benchmarks: Sequence[str] = ("SYRK", "KMN"),
    schedulers: Sequence[str] = ("ciao-t", "ciao-p", "ciao-c"),
    scale: float = 0.4,
    seed: int = 1,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
) -> dict:
    """Figure 10: the three CIAO schemes over time on an SWS and an LWS workload."""
    return fig9_timeseries(
        benchmarks=benchmarks,
        schedulers=schedulers,
        scale=scale,
        seed=seed,
        workers=workers,
        cache=cache,
        backend=backend,
    )


# ---------------------------------------------------------------------------
# Sensitivity studies (Figure 11)
# ---------------------------------------------------------------------------
def fig11_sensitivity_epoch(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    epochs: Iterable[int] = (1000, 5000, 10000, 50000),
    scale: float = 0.3,
    seed: int = 1,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
) -> dict:
    """Figure 11a: IPC of CIAO-C for different high-cutoff epoch lengths."""
    names = list(benchmarks or MEMORY_INTENSIVE_BENCHMARKS)
    epochs = list(epochs)
    jobs = [
        SimulationRequest(
            bench,
            "ciao-c",
            RunConfig(
                scale=scale,
                seed=seed,
                ciao_params=CIAOParameters.paper_defaults().with_high_epoch(epoch),
            ),
            tag=str(epoch),
        )
        for bench in names
        for epoch in epochs
    ]
    outcome = _sweep(jobs, workers, cache, backend)
    table: dict[str, dict[int, float]] = {bench: {} for bench in names}
    for job, result in outcome:
        table[job.benchmark_name][int(job.tag)] = result.ipc
    normalized = {
        bench: {
            epoch: (value / row[5000] if row.get(5000) else 0.0)
            for epoch, value in row.items()
        }
        for bench, row in table.items()
    }
    return {"raw_ipc": table, "normalized_to_5000": normalized}


def fig11_sensitivity_cutoff(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    cutoffs: Iterable[float] = (0.04, 0.02, 0.01, 0.005),
    scale: float = 0.3,
    seed: int = 1,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
) -> dict:
    """Figure 11b: IPC of CIAO-C for different high-cutoff thresholds."""
    names = list(benchmarks or MEMORY_INTENSIVE_BENCHMARKS)
    cutoffs = list(cutoffs)
    jobs = [
        SimulationRequest(
            bench,
            "ciao-c",
            RunConfig(
                scale=scale,
                seed=seed,
                ciao_params=CIAOParameters.paper_defaults().with_high_cutoff(cutoff),
            ),
            tag=repr(cutoff),
        )
        for bench in names
        for cutoff in cutoffs
    ]
    outcome = _sweep(jobs, workers, cache, backend)
    table: dict[str, dict[float, float]] = {bench: {} for bench in names}
    for job, result in outcome:
        table[job.benchmark_name][float(job.tag)] = result.ipc
    normalized = {
        bench: {
            cutoff: (value / row[0.01] if row.get(0.01) else 0.0)
            for cutoff, value in row.items()
        }
        for bench, row in table.items()
    }
    return {"raw_ipc": table, "normalized_to_1pct": normalized}


# ---------------------------------------------------------------------------
# Cache / DRAM configuration studies (Figure 12)
# ---------------------------------------------------------------------------
def fig12_cache_configs(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    scale: float = 0.3,
    seed: int = 1,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
) -> dict:
    """Figure 12a: GTO vs GTO-cap vs GTO-8way vs CIAO-C."""
    names = list(
        benchmarks
        or [
            spec.name
            for spec in all_benchmarks()
            if spec.workload_class in (WorkloadClass.LWS, WorkloadClass.SWS)
        ]
    )
    variants = {
        "gto": ("gto", GPUConfig.gtx480()),
        "gto-cap": ("gto", GPUConfig.gtx480_large_l1d()),
        "gto-8way": ("gto", GPUConfig.gtx480_8way_l1d()),
        "ciao-c": ("ciao-c", GPUConfig.gtx480()),
    }
    jobs = [
        SimulationRequest(
            bench,
            sched,
            RunConfig(scale=scale, seed=seed, gpu_config=config),
            tag=label,
        )
        for bench in names
        for label, (sched, config) in variants.items()
    ]
    outcome = _sweep(jobs, workers, cache, backend)
    raw: dict[str, dict[str, float]] = {bench: {} for bench in names}
    for job, result in outcome:
        raw[job.benchmark_name][job.tag] = result.ipc
    normalized = {
        bench: {label: (v / row["gto"] if row.get("gto") else 0.0) for label, v in row.items()}
        for bench, row in raw.items()
    }
    return {"raw_ipc": raw, "normalized_ipc": normalized, "variants": list(variants)}


def fig12_dram_bandwidth(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    scale: float = 0.3,
    seed: int = 1,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
) -> dict:
    """Figure 12b: statPCAL-2X vs CIAO-C-2X (doubled DRAM bandwidth)."""
    names = list(
        benchmarks
        or [
            spec.name
            for spec in all_benchmarks()
            if spec.workload_class in (WorkloadClass.LWS, WorkloadClass.SWS)
        ]
    )
    base = RunConfig(scale=scale, seed=seed)
    doubled = RunConfig(scale=scale, seed=seed, dram_bandwidth_scale=2.0)
    jobs = []
    for bench in names:
        jobs.append(SimulationRequest(bench, "gto", base, tag="gto"))
        jobs.append(SimulationRequest(bench, "statpcal", doubled, tag="statpcal-2x"))
        jobs.append(SimulationRequest(bench, "ciao-c", doubled, tag="ciao-c-2x"))
    outcome = _sweep(jobs, workers, cache, backend)
    raw: dict[str, dict[str, float]] = {bench: {} for bench in names}
    for job, result in outcome:
        raw[job.benchmark_name][job.tag] = result.ipc
    normalized = {
        bench: {label: (v / row["gto"] if row.get("gto") else 0.0) for label, v in row.items()}
        for bench, row in raw.items()
    }
    return {"raw_ipc": raw, "normalized_ipc": normalized}


# ---------------------------------------------------------------------------
# Co-location scenario library (multi-tenant lock-step)
# ---------------------------------------------------------------------------
# The scenario types moved to repro.scenarios.library (the seeded generation
# / search subsystem builds on them); re-exported here — same objects, so
# experiment code and tests that patch COLOCATION_SCENARIOS keep working.
from repro.scenarios.library import (  # noqa: E402  (re-export)
    COLOCATION_SCENARIOS,
    ColocationScenario,
    colocation_scenario,
    colocation_scenario_names,
)


def colocation_interference(
    *,
    scenario: str = "thrash-vs-compute",
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
) -> dict:
    """Co-located run + per-tenant isolated baselines + slowdown report.

    Submits the scenario's co-located request and one isolated request per
    tenant (same machine, other SMs idle) through the sweep engine, then
    derives per-tenant slowdown, IPC and the inter-SM DRAM conflict
    attribution (:func:`repro.analysis.metrics.tenant_slowdowns`).
    """
    request = colocation_scenario(scenario, scale=scale, seed=seed, backend=backend)
    jobs = [request] + [request.isolated_request(t.name) for t in request.tenants]
    outcome = _sweep(jobs, workers, cache)
    colocated = outcome.results[0]
    isolated = {
        tenant.name: result
        for tenant, result in zip(request.tenants, outcome.results[1:])
    }
    return {
        "scenario": scenario,
        "description": COLOCATION_SCENARIOS[scenario].description,
        "tenants": {
            t.name: {
                "benchmark": t.benchmark_name,
                "scheduler": t.scheduler,
                "sm_ids": list(t.sm_ids),
            }
            for t in request.tenants
        },
        "per_tenant": tenant_slowdowns(colocated, isolated),
        "inter_sm_dram_conflicts": colocated.inter_sm_dram_conflicts,
        "scale": request.run_config.scale,
        "seed": request.run_config.seed,
        "engine": _engine_stats(outcome.stats),
    }


# ---------------------------------------------------------------------------
# Overhead analysis (Section V-F)
# ---------------------------------------------------------------------------
def overhead_analysis(
    *,
    benchmark: str = "SYRK",
    scale: float = 0.3,
    seed: int = 1,
    workers: Optional[int] = None,
    cache="auto",
    backend: Optional[str] = None,
) -> dict:
    """Section V-F: area and power overhead of the CIAO hardware."""
    area = AreaModel().report()
    config = RunConfig(scale=scale, seed=seed)
    outcome = _sweep([SimulationRequest(benchmark, "ciao-c", config)], workers, cache, backend)
    stats = outcome.results[0].sm0
    power = PowerModel().from_stats(stats, stats.cycles)
    return {
        "area": area,
        "power": power,
        "activity_benchmark": benchmark,
        "claims": {
            "area_below_2_percent": area["fraction_of_die"] < 0.02,
            "power_below_1_percent_of_tdp": power["fraction_of_tdp"] < 0.01,
        },
    }
