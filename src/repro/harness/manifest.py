"""Sweep checkpoint manifests: append-only per-job outcome records.

A *manifest* makes a sweep resumable: as :func:`repro.harness.parallel
.run_jobs` settles each job it appends one JSON line — the job's
content-addressed cache key, its terminal status (``done`` / ``failed`` /
``timeout``), how many attempts it took, and a human-readable identity — to
an append-only file.  A later sweep over the same job list with the same
manifest (``repro sweep --resume MANIFEST``) skips every key the manifest
marks ``done`` (serving its result from the content-addressed cache) and
re-runs only the jobs that failed, timed out, or never ran.

Design mirrors the bench ledger (:mod:`repro.harness.ledger`): JSON lines,
corrupt lines skipped on read, writes flushed per line so an interrupted
sweep loses at most the line being written.  Because entries are keyed by
content-addressed cache keys, manifests from different machines or partial
runs merge by construction — union the lines; ``done`` wins over any other
status for the same key, otherwise the last line wins.

The manifest stores *statuses*, not results: results live in the result
cache under the same keys.  A key marked ``done`` whose cache entry has
been evicted (or whose sweep runs cache-less) is simply re-run — resuming
can never serve a result the cache cannot substantiate.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.harness.integrity import fsync_enabled

#: Version stamp written on every manifest line.
MANIFEST_SCHEMA = 1

#: Terminal statuses a manifest line may carry.
MANIFEST_STATUSES = ("done", "failed", "timeout")


@dataclass
class ManifestEntry:
    """One job's terminal outcome within a sweep."""

    key: str
    status: str
    attempts: int = 1
    benchmark: str = ""
    scheduler: str = ""
    backend: str = ""
    error: str = ""
    ts: float = field(default_factory=lambda: round(time.time(), 3))

    def __post_init__(self) -> None:
        if self.status not in MANIFEST_STATUSES:
            raise ValueError(
                f"bad manifest status {self.status!r} "
                f"(choose from {MANIFEST_STATUSES})"
            )

    def to_line(self) -> str:
        payload = {"schema": MANIFEST_SCHEMA, **asdict(self)}
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_payload(cls, payload: dict) -> Optional["ManifestEntry"]:
        """Rebuild an entry from a parsed line (``None`` when unusable)."""
        if not isinstance(payload, dict) or payload.get("schema") != MANIFEST_SCHEMA:
            return None
        key = payload.get("key")
        status = payload.get("status")
        if not isinstance(key, str) or status not in MANIFEST_STATUSES:
            return None
        return cls(
            key=key,
            status=status,
            attempts=int(payload.get("attempts", 1) or 1),
            benchmark=str(payload.get("benchmark", "")),
            scheduler=str(payload.get("scheduler", "")),
            backend=str(payload.get("backend", "")),
            error=str(payload.get("error", "")),
            ts=float(payload.get("ts", 0.0) or 0.0),
        )


def append_outcome(
    path: Union[str, Path], entry: ManifestEntry, *, fsync: Optional[bool] = None
) -> None:
    """Append one outcome line to the manifest (flushed immediately).

    ``fsync`` additionally syncs the line to stable storage — surviving
    power loss, not just a process crash — at a per-line latency cost.
    ``None`` defers to the opt-in ``REPRO_FSYNC`` environment knob.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(entry.to_line() + "\n")
        fh.flush()
        if fsync if fsync is not None else fsync_enabled():
            os.fsync(fh.fileno())


def scan_manifest(
    path: Union[str, Path],
) -> tuple[dict[str, ManifestEntry], int]:
    """Parse a manifest into ``({key: entry}, skipped_line_count)``.

    Merge rule per key: ``done`` wins over any other status (a completed
    result is durable in the cache; a stray failure line from a merged
    partial run must not force a re-run), otherwise the later line wins.
    Corrupt or unknown-schema lines contribute no entry but are *counted*
    — silent data loss is how torn writes stay invisible; callers surface
    the count (``SweepOutcome.manifest_skipped``, sweep summaries) and
    ``repro cache fsck --repair`` removes the damage.
    """
    entries: dict[str, ManifestEntry] = {}
    skipped = 0
    try:
        with open(Path(path), encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                entry = ManifestEntry.from_payload(payload)
                if entry is None:
                    skipped += 1
                    continue
                prior = entries.get(entry.key)
                if prior is not None and prior.status == "done" and entry.status != "done":
                    continue
                entries[entry.key] = entry
    except OSError:
        return {}, 0
    return entries, skipped


def load_manifest(path: Union[str, Path]) -> dict[str, ManifestEntry]:
    """Parse a manifest into ``{key: entry}`` (see :func:`scan_manifest`)."""
    return scan_manifest(path)[0]


def merge_manifests(paths: Iterable[Union[str, Path]]) -> dict[str, ManifestEntry]:
    """Union several manifests under the same per-key merge rule."""
    merged: dict[str, ManifestEntry] = {}
    for path in paths:
        for key, entry in load_manifest(path).items():
            prior = merged.get(key)
            if prior is not None and prior.status == "done" and entry.status != "done":
                continue
            merged[key] = entry
    return merged


def summarize_manifest(entries: dict[str, ManifestEntry]) -> dict:
    """Counts by status plus total attempts (CLI / test accounting)."""
    summary = {status: 0 for status in MANIFEST_STATUSES}
    attempts = 0
    for entry in entries.values():
        summary[entry.status] += 1
        attempts += entry.attempts
    summary["keys"] = len(entries)
    summary["attempts"] = attempts
    return summary
