"""Experiment harness.

* :mod:`repro.harness.runner` -- run one (benchmark, scheduler) pair on the
  simulator with the paper's per-benchmark settings (Best-SWL warp limits,
  statPCAL tokens, CIAO parameters, shared-cache enablement).
* :mod:`repro.harness.parallel` -- the sweep engine: fans independent
  (benchmark, scheduler, config) jobs over a process pool with
  deterministic per-job seeding and an in-process ``workers=1`` fallback.
* :mod:`repro.harness.cache` -- content-addressed on-disk result cache keyed
  by benchmark spec, scheduler kwargs, run configuration and a fingerprint
  of the package source.
* :mod:`repro.harness.experiments` -- one function per table / figure of the
  evaluation section, returning plain data structures (dicts / lists) that
  the benches print and docs/EXPERIMENTS.md records.
* :mod:`repro.harness.reporting` -- formatting helpers (aligned text tables,
  geometric means, normalisation, sweep statistics).
"""

from repro.harness.cache import ResultCache, job_key
from repro.harness.parallel import (
    SweepJob,
    SweepOutcome,
    SweepStats,
    derive_seed,
    run_jobs,
)
from repro.harness.reporting import (
    format_sweep_stats,
    format_table,
    geometric_mean,
    normalize_to,
)
from repro.harness.runner import RunConfig, run_benchmark, run_many
from repro.harness import experiments

__all__ = [
    "RunConfig",
    "run_benchmark",
    "run_many",
    "SweepJob",
    "SweepOutcome",
    "SweepStats",
    "run_jobs",
    "derive_seed",
    "ResultCache",
    "job_key",
    "format_table",
    "format_sweep_stats",
    "geometric_mean",
    "normalize_to",
    "experiments",
]
