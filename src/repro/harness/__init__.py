"""Experiment harness.

Every path below speaks :class:`repro.api.SimulationRequest` — the one
canonical job descriptor — and executes through the pluggable backend layer
(:mod:`repro.backends`: ``reference`` serialized SMs, ``lockstep``
cycle-level multi-SM, selectable per call or via ``REPRO_BACKEND``).

* :mod:`repro.harness.runner` -- run one (benchmark, scheduler) pair on the
  simulator with the paper's per-benchmark settings (Best-SWL warp limits,
  statPCAL tokens, CIAO parameters, shared-cache enablement).
* :mod:`repro.harness.ledger` -- append-only bench ledger recording every
  sweep's wall time / cache hit rate across sessions (warm-vs-cold trends).
* :mod:`repro.harness.parallel` -- the sweep engine: fans independent
  (benchmark, scheduler, config) jobs over a process pool with
  deterministic per-job seeding and an in-process ``workers=1`` fallback.
* :mod:`repro.harness.cache` -- content-addressed on-disk result cache keyed
  by benchmark spec, scheduler kwargs, run configuration and a fingerprint
  of the package source.
* :mod:`repro.harness.experiments` -- one function per table / figure of the
  evaluation section, returning plain data structures (dicts / lists) that
  the benches print and docs/EXPERIMENTS.md records.
* :mod:`repro.harness.reporting` -- formatting helpers (aligned text tables,
  geometric means, normalisation, sweep statistics).
"""

from repro.api import SimulationRequest, execute
from repro.harness.cache import ResultCache, job_key
from repro.harness.ledger import read_ledger, record_sweep, summarize_ledger
from repro.harness.parallel import (
    SweepJob,
    SweepOutcome,
    SweepStats,
    derive_seed,
    run_jobs,
)
from repro.harness.reporting import (
    format_sweep_stats,
    format_table,
    geometric_mean,
    normalize_to,
)
from repro.harness.runner import RunConfig, run_benchmark, run_many


def __getattr__(name):
    # Lazy: experiments pulls in repro.analysis, which itself uses the
    # harness reporting helpers; importing it eagerly made
    # ``import repro.analysis`` fail when it ran first (circular import).
    if name == "experiments":
        import repro.harness.experiments as experiments

        return experiments
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "RunConfig",
    "SimulationRequest",
    "execute",
    "run_benchmark",
    "run_many",
    "SweepJob",
    "read_ledger",
    "record_sweep",
    "summarize_ledger",
    "SweepOutcome",
    "SweepStats",
    "run_jobs",
    "derive_seed",
    "ResultCache",
    "job_key",
    "format_table",
    "format_sweep_stats",
    "geometric_mean",
    "normalize_to",
    "experiments",
]
