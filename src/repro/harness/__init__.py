"""Experiment harness.

* :mod:`repro.harness.runner` -- run one (benchmark, scheduler) pair on the
  simulator with the paper's per-benchmark settings (Best-SWL warp limits,
  statPCAL tokens, CIAO parameters, shared-cache enablement).
* :mod:`repro.harness.experiments` -- one function per table / figure of the
  evaluation section, returning plain data structures (dicts / lists) that
  the benches print and EXPERIMENTS.md records.
* :mod:`repro.harness.reporting` -- formatting helpers (aligned text tables,
  geometric means, normalisation).
"""

from repro.harness.runner import RunConfig, run_benchmark, run_many
from repro.harness.reporting import format_table, geometric_mean, normalize_to
from repro.harness import experiments

__all__ = [
    "RunConfig",
    "run_benchmark",
    "run_many",
    "format_table",
    "geometric_mean",
    "normalize_to",
    "experiments",
]
