"""Allow ``python -m repro ...`` to invoke the CLI without installation."""

import sys

from repro.cli import main

sys.exit(main())
