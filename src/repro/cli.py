"""``repro`` — the command-line front end of the reproduction.

Installed as a console script by ``setup.py`` (``pip install -e .``) and also
runnable without installation::

    PYTHONPATH=src python -m repro <subcommand> ...

Subcommands
-----------

``repro run BENCH [SCHED ...]``
    Simulate one benchmark under one or more schedulers and print the
    headline metrics.
``repro run --tenants SPEC`` / ``repro run --scenario NAME``
    Co-located multi-tenant simulation on the lock-step engine: each tenant
    runs its own kernel on its own SM partition while all SMs contend for
    the shared L2/DRAM.  ``SPEC`` is a comma-separated list of
    ``[NAME=]BENCH[/SCHED]:SMS[@CYCLE]`` entries (``SMS`` an SM id or
    ``lo-hi`` range; ``@CYCLE`` staggers the tenant's kernel launch to that
    global cycle), e.g. ``--tenants SM:0-1,2DCONV/ciao-c:2@500``;
    ``--scenario`` picks a named scenario from the co-location library
    (built-ins plus promoted search discoveries).  ``--isolated``
    additionally runs every tenant alone on the same machine and reports
    per-tenant slowdown (scenarios always do).
``repro scenarios generate|search|promote``
    The seeded scenario subsystem: ``generate`` samples reproducible
    co-location scenarios (same seed, same specs, same cache keys),
    ``search`` hill-climbs the scenario space for worst-case interference
    (max per-tenant slowdown), and ``promote`` pins the worst discoveries
    into the named scenario library (``promoted.json``).  See
    docs/EXPERIMENTS.md.
``repro sweep -b BENCH ... -s SCHED ...``
    Run a benchmark x scheduler grid through the parallel sweep engine and
    print the normalised-IPC table, geomean speedups and engine statistics.
    With ``--workers-at HOST:PORT,...`` (or ``--worker-roster
    shards.json``) the same sweep shards across remote ``repro worker``
    processes — partitioned by cache key, streamed into the checkpoint
    manifest, bit-identical to the local run.  See docs/DISTRIBUTED.md.
``repro reproduce FIGURE ...``
    Regenerate the data behind a figure / table of the paper (``fig8``,
    ``fig11a``, ``table2``, ... or ``all``) as JSON.
``repro bench [--quick] [--baseline PATH]``
    Measure simulator throughput (simulated cycles per second) on the
    pinned workload matrix, write ``BENCH_<rev>.json``, append to the bench
    ledger, and optionally gate against a baseline report (exit code 1 on
    regression).  See docs/PERFORMANCE.md.
``repro serve --host --port --workers``
    Boot the long-lived simulation service (see docs/SERVING.md): accepts
    request wire forms on ``POST /simulate``, serves cache hits instantly,
    coalesces identical in-flight requests into one simulation, batches
    the rest into ``run_batch`` on a worker pool, and exposes
    ``/healthz`` / ``/stats`` / ``/jobs``.  SIGTERM or ``POST /shutdown``
    drains gracefully.
``repro worker --host --port``
    Boot a long-lived sweep worker for ``repro sweep --workers-at``:
    accepts ``RequestBatch`` wire forms on ``POST /batch`` and executes
    them through ``run_jobs`` (retry/timeout/chaos stack included).
    SIGTERM or ``POST /shutdown`` drains gracefully.
``repro submit BENCH [SCHED]`` / ``repro submit --file payload.json``
    Submit one request to a running ``repro serve`` instance and print the
    result (the testing client for the service).
``repro cache [show|stats|clear]``
    Show the content-addressed result cache, print the bench-ledger
    statistics (warm vs cold sweep trajectory, the ``repro bench``
    throughput trajectory and ``repro serve`` traffic), or clear the
    cache.
``repro list``
    List the available benchmarks, schedulers and backends
    (``--backends`` for backends only).

Parallelism defaults to the CPU count (``--workers`` / ``REPRO_WORKERS``
override); the result cache defaults to on (``--no-cache`` /
``REPRO_RESULT_CACHE=0`` disable); the execution engine defaults to the
serialized ``reference`` backend (``--backend`` / ``REPRO_BACKEND``
select e.g. the lock-step multi-SM engine).  See docs/EXPERIMENTS.md and
docs/API.md for the full knob reference.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.api import MultiTenantRequest, SimulationRequest, TenantSpec
from repro.backends import (
    BackendUnavailableError,
    backend_names,
    resolve_backend_name,
)
from repro.harness.cache import ResultCache, cache_enabled_by_env, default_cache_dir
from repro.harness.ledger import (
    ledger_path,
    read_ledger,
    read_ledger_report,
    summarize_ledger,
)
from repro.harness.parallel import (
    JobFailure,
    RetryPolicy,
    SweepError,
    derive_seed,
    run_jobs,
)
from repro.harness.reporting import format_sweep_stats, format_table
from repro.harness.runner import RunConfig
from repro.sched.registry import canonical_scheduler_name, scheduler_names
from repro.version import __version__
from repro.workloads.registry import (
    all_benchmarks,
    get_benchmark,
    resolve_benchmark_names,
)

#: ``repro reproduce`` targets -> experiment function names.
REPRODUCE_TARGETS = {
    "fig1a": "fig1_interference_matrix",
    "fig1b": "fig1_bestswl_vs_ccws",
    "fig4": "fig4_interference_characterisation",
    "table1": "table1_configuration",
    "table2": "table2_benchmarks",
    "fig8": "fig8_main_comparison",
    "fig9": "fig9_timeseries",
    "fig10": "fig10_working_set",
    "fig11a": "fig11_sensitivity_epoch",
    "fig11b": "fig11_sensitivity_cutoff",
    "fig12a": "fig12_cache_configs",
    "fig12b": "fig12_dram_bandwidth",
    "overhead": "overhead_analysis",
}


def _cache_from_args(args) -> Optional[ResultCache]:
    if getattr(args, "no_cache", False) or not cache_enabled_by_env():
        return None
    return ResultCache()


def _add_sweep_options(
    parser: argparse.ArgumentParser, *, scale_default=0.3, seed_default=1
) -> None:
    parser.add_argument("--scale", type=float, default=scale_default,
                        help="workload size multiplier (default 0.3; a "
                             "--scenario run defaults to the scenario's "
                             "pinned scale)" if scale_default is None else
                             "workload size multiplier (default 0.3)")
    parser.add_argument("--seed", type=int, default=seed_default,
                        help="base workload RNG seed (default 1; a --scenario "
                             "run defaults to the scenario's pinned seed)"
                        if seed_default is None else
                        "base workload RNG seed (default 1)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: REPRO_WORKERS or CPU count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache for this invocation")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="execution engine, one of: "
                             f"{', '.join(backend_names())} (or any registered "
                             "alias; default: REPRO_BACKEND or 'reference')")


# ---------------------------------------------------------------------------
# repro run
# ---------------------------------------------------------------------------
def parse_tenant_specs(text: str, *, default_scheduler: str = "gto") -> tuple[TenantSpec, ...]:
    """Parse a ``--tenants`` value into :class:`TenantSpec` tuples.

    Grammar: comma-separated ``[NAME=]BENCH[/SCHED]:SMS[@CYCLE]`` entries,
    where ``SMS`` is one SM id (``3``) or an inclusive range (``0-7``) and
    ``@CYCLE`` optionally staggers the tenant's kernel launch to that global
    cycle (default 0, simultaneous launch).  Tenant names default to the
    benchmark name (``-2``, ``-3`` suffixes keep duplicates unique), and
    every tenant receives its own address space.
    """
    tenants: list[TenantSpec] = []
    seen_names: dict[str, int] = {}
    for index, raw in enumerate(text.split(",")):
        entry = raw.strip()
        head, sep, sms_text = entry.rpartition(":")
        if not sep or not head or not sms_text:
            raise ValueError(
                f"bad tenant spec {entry!r} (expected [NAME=]BENCH[/SCHED]:SMS[@CYCLE], "
                "e.g. SM:0-1 or compute=2DCONV/ciao-c:2@500)"
            )
        name = None
        if "=" in head:
            name, _, head = head.partition("=")
            name = name.strip()
        benchmark, _, scheduler = head.partition("/")
        benchmark = get_benchmark(benchmark.strip()).name
        scheduler = canonical_scheduler_name(scheduler.strip() or default_scheduler)
        sms_text, at, cycle_text = sms_text.partition("@")
        launch_cycle = 0
        if at:
            try:
                launch_cycle = int(cycle_text)
            except ValueError:
                raise ValueError(
                    f"bad launch cycle {cycle_text!r} in tenant {entry!r} "
                    "(need a non-negative int after '@')"
                ) from None
            if launch_cycle < 0:
                raise ValueError(
                    f"bad launch cycle {cycle_text!r} in tenant {entry!r} "
                    "(need a non-negative int after '@')"
                )
        lo, dash, hi = sms_text.partition("-")
        try:
            first = int(lo)
            last = int(hi) if dash else first  # 'ATAX:0-' fails: int('')
        except ValueError:
            raise ValueError(f"bad SM range {sms_text!r} in tenant {entry!r}") from None
        if last < first:
            raise ValueError(f"empty SM range {sms_text!r} in tenant {entry!r}")
        if not name:
            name = benchmark
        count = seen_names.get(name, 0) + 1
        seen_names[name] = count
        if count > 1:
            name = f"{name}-{count}"
        tenants.append(
            TenantSpec(
                name=name,
                benchmark=benchmark,
                scheduler=scheduler,
                sm_ids=tuple(range(first, last + 1)),
                address_space=index + 1,
                launch_cycle=launch_cycle,
            )
        )
    return tuple(tenants)


def _cmd_run_tenants(args) -> int:
    """The multi-tenant arm of ``repro run`` (--tenants / --scenario)."""
    from repro.harness import experiments

    if args.benchmark or args.schedulers:
        print("error: --tenants/--scenario replaces the positional "
              "BENCH [SCHED ...] arguments", file=sys.stderr)
        return 2
    try:
        if args.scenario:
            request = experiments.colocation_scenario(
                args.scenario, scale=args.scale, seed=args.seed, backend=args.backend
            )
            with_isolated = True  # scenarios always report slowdown vs isolated
        else:
            tenants = parse_tenant_specs(args.tenants)
            request = MultiTenantRequest(
                tenants=tenants,
                run_config=RunConfig(
                    scale=args.scale if args.scale is not None else 0.3,
                    seed=args.seed if args.seed is not None else 1,
                ),
                backend=args.backend,
            )
            with_isolated = args.isolated
        request.canonicalize()  # fail fast on bad partitions / unknown names
    except ValueError as exc:
        # Bad --tenants specs / SM partitions are usage errors; engine
        # ValueErrors raised mid-simulation still traceback normally.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    jobs = [request]
    if with_isolated:
        jobs += [request.isolated_request(t.name) for t in request.tenants]
    cache = _cache_from_args(args)
    outcome = run_jobs(jobs, workers=args.workers, cache=cache)
    colocated = outcome.results[0]
    isolated = {
        tenant.name: result
        for tenant, result in zip(request.tenants, outcome.results[1:])
    }

    from repro.analysis.metrics import tenant_slowdowns

    slowdowns = tenant_slowdowns(colocated, isolated) if with_isolated else {}
    staggered = any(t.launch_cycle for t in request.tenants)
    rows = []
    for tenant in request.tenants:
        stats = colocated.per_tenant[tenant.name]
        row = {
            "tenant": tenant.name,
            "benchmark": tenant.benchmark_name,
            "scheduler": stats.scheduler,
            "sms": "+".join(str(i) for i in stats.sm_ids),
        }
        if staggered:
            row["launch"] = stats.launch_cycle
        row |= {
            "cycles": stats.finish_cycle,
            "ipc": stats.ipc,
            "dram_conflicts": stats.inter_sm_dram_conflicts,
        }
        if with_isolated:
            row["isolated_cycles"] = int(slowdowns[tenant.name]["isolated_cycles"])
            row["slowdown"] = slowdowns[tenant.name]["slowdown"]
        rows.append(row)

    if args.json:
        from repro.api import RESULT_SCHEMA

        json.dump(
            {
                "scenario": args.scenario,
                "tenants": rows,
                "per_tenant": slowdowns or None,
                "inter_sm_dram_conflicts": colocated.inter_sm_dram_conflicts,
                "backend": colocated.backend,
                "scale": request.run_config.scale,
                "seed": request.run_config.seed,
                "result_schema": RESULT_SCHEMA,
            },
            sys.stdout,
            indent=2,
        )
        print()
    else:
        title = f"scenario {args.scenario}" if args.scenario else "co-located tenants"
        print(f"{title} @ scale {request.run_config.scale}, "
              f"seed {request.run_config.seed} ({colocated.backend} backend)")
        print(format_table(rows))
        print(f"\ninter-SM DRAM conflicts: {colocated.inter_sm_dram_conflicts} "
              "(attributed per tenant above)")
        print(format_sweep_stats(outcome.stats))
    return 0


def cmd_run(args) -> int:
    if args.tenants and args.scenario:
        print("error: use either --tenants or --scenario, not both", file=sys.stderr)
        return 2
    if args.tenants or args.scenario:
        return _cmd_run_tenants(args)
    if not args.benchmark:
        print("error: benchmark argument required (or use --tenants/--scenario)",
              file=sys.stderr)
        return 2
    if args.isolated:
        print("error: --isolated only applies to --tenants/--scenario runs",
              file=sys.stderr)
        return 2
    get_benchmark(args.benchmark)  # validate up front for a clean error
    schedulers = [canonical_scheduler_name(s) for s in (args.schedulers or ["gto"])]
    scale = args.scale if args.scale is not None else 0.3
    seed = args.seed if args.seed is not None else 1
    config = RunConfig(scale=scale, seed=seed)
    jobs = [
        SimulationRequest(args.benchmark, sched, config, backend=args.backend)
        for sched in schedulers
    ]
    cache = _cache_from_args(args)
    outcome = run_jobs(jobs, workers=args.workers, cache=cache)

    rows = []
    for job, result in outcome:
        stats = result.sm0
        rows.append({
            "scheduler": job.scheduler,
            "ipc": result.ipc,
            "cycles": stats.cycles,
            "l1d_hit_rate": stats.l1d_hit_rate,
            "shared_cache_hit_rate": stats.shared_cache_hit_rate,
            "vta_hits": stats.vta_hits,
            "mean_active_warps": stats.active_warp_series.mean(),
        })
    if args.json:
        from repro.api import RESULT_SCHEMA

        json.dump(
            {
                "benchmark": args.benchmark,
                "rows": rows,
                "backend": outcome.stats.backend,
                "result_schema": RESULT_SCHEMA,
            },
            sys.stdout,
            indent=2,
        )
        print()
    else:
        print(f"{args.benchmark} @ scale {scale}, seed {seed}")
        print(format_table(rows))
        print(format_sweep_stats(outcome.stats))
    return 0


# ---------------------------------------------------------------------------
# repro sweep
# ---------------------------------------------------------------------------
def _sweep_retry_policy(args) -> Optional[RetryPolicy]:
    """Build the sweep's RetryPolicy from CLI flags (None = defaults)."""
    if (
        args.timeout is None
        and args.straggler is None
        and args.max_attempts == 3
    ):
        return None  # run_jobs substitutes a default policy when retrying
    return RetryPolicy(
        max_attempts=args.max_attempts,
        timeout_seconds=args.timeout,
        straggler_seconds=args.straggler,
        seed=args.seed,
    )


def cmd_sweep(args) -> int:
    benchmarks = resolve_benchmark_names(args.benchmarks)
    schedulers = [canonical_scheduler_name(s) for s in args.schedulers]

    backend = args.backend
    if args.chaos:
        # Wrap the selected engine in the seeded fault injector: jobs run
        # on the `chaos` backend, which delegates to the real one.  The
        # plan is mirrored into REPRO_CHAOS so pool workers see it too.
        from dataclasses import replace as _dc_replace

        from repro.harness.faults import FaultPlan, configure_chaos

        try:
            plan = FaultPlan.from_spec(args.chaos)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if backend is not None:
            plan = _dc_replace(plan, delegate=resolve_backend_name(backend))
        configure_chaos(plan)
        backend = "chaos"

    manifest = args.resume or args.manifest
    if args.resume and args.manifest and args.resume != args.manifest:
        print("error: --resume and --manifest name different files",
              file=sys.stderr)
        return 2

    try:
        retry = _sweep_retry_policy(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.audit_rate and not (args.workers_at or args.worker_roster):
        print("error: --audit-rate only applies to distributed sweeps "
              "(--workers-at / --worker-roster); local jobs execute in this "
              "process and need no re-verification", file=sys.stderr)
        return 2

    jobs = []
    for bench in benchmarks:
        for sched in schedulers:
            seed = (
                derive_seed(args.seed, bench, sched)
                if args.seed_per_job
                else args.seed
            )
            jobs.append(
                SimulationRequest(
                    bench, sched, RunConfig(scale=args.scale, seed=seed),
                    backend=backend,
                )
            )
    cache = _cache_from_args(args)
    if args.workers_at or args.worker_roster:
        # Cross-machine sharded sweep: partition by cache key, dispatch to
        # the roster's `repro worker` processes, stream outcomes into the
        # same manifest (--resume works unchanged).  docs/DISTRIBUTED.md.
        from repro.harness.distributed import (
            WorkerSchemaError,
            load_worker_roster,
            parse_workers_at,
            run_distributed,
        )

        try:
            if args.workers_at and args.worker_roster:
                raise ValueError(
                    "--workers-at and --worker-roster are mutually exclusive"
                )
            roster = (
                parse_workers_at(args.workers_at)
                if args.workers_at
                else load_worker_roster(args.worker_roster)
            )
            if args.chunk_size < 1:
                raise ValueError("--chunk-size must be >= 1")
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            outcome = run_distributed(
                jobs,
                roster,
                cache=cache,
                on_error=args.on_error,
                retry=retry,
                manifest=manifest,
                chunk_size=args.chunk_size,
                audit_rate=args.audit_rate,
            )
        except WorkerSchemaError as exc:
            # Mixed repro versions across a roster: an operator mistake,
            # surfaced as a one-line error instead of a traceback.
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        outcome = run_jobs(
            jobs,
            workers=args.workers,
            cache=cache,
            on_error=args.on_error,
            retry=retry,
            manifest=manifest,
        )

    failures = outcome.failures()
    raw: dict[str, dict[str, float]] = {}
    for job, result in outcome:
        if isinstance(result, JobFailure):
            continue
        raw.setdefault(job.benchmark_name, {})[job.scheduler] = result.ipc
    baseline = schedulers[0]
    normalized = {
        bench: {
            sched: (row.get(sched, 0.0) / row[baseline]
                    if row.get(baseline) else 0.0)
            for sched in schedulers
        }
        for bench, row in raw.items()
    }
    stats = outcome.stats
    if outcome.manifest_skipped:
        # Unparseable manifest lines (torn tail from a crash, bit rot) are
        # skipped, never trusted; tell the user how to adjudicate them.
        print(f"warning: skipped {outcome.manifest_skipped} corrupt manifest "
              f"line(s) in {manifest}; run `repro cache fsck --manifest "
              f"{manifest} --repair` to quarantine the damage", file=sys.stderr)
    if args.json:
        json.dump(
            {
                "benchmarks": benchmarks,
                "schedulers": schedulers,
                "raw_ipc": raw,
                "normalized_ipc": normalized,
                "baseline": baseline,
                "backend": stats.backend,
                "executed": stats.executed,
                "cache_hits": stats.cache_hits,
                "failed": stats.failed,
                "retried": stats.retried,
                "timed_out": stats.timed_out,
                "audited": stats.audited,
                "audit_failures": stats.audit_failures,
                "corrupt": stats.corrupt,
                "manifest_skipped": outcome.manifest_skipped,
                "failures": [
                    {
                        "benchmark": f.benchmark_name,
                        "scheduler": f.scheduler,
                        "error_type": f.error_type,
                        "error": f.error,
                        "attempts": f.attempts,
                        "timed_out": f.timed_out,
                    }
                    for f in failures
                ],
            },
            sys.stdout,
            indent=2,
        )
        print()
        return 1 if failures else 0

    rows = [
        {"benchmark": bench, **{s: normalized[bench][s] for s in schedulers}}
        for bench in benchmarks
        if bench in normalized
    ]
    print(f"IPC normalised to {baseline} (scale {args.scale}, seed {args.seed}"
          f"{', per-job seeds' if args.seed_per_job else ''}):")
    print(format_table(rows))
    from repro.harness.reporting import geometric_mean

    complete = [b for b in benchmarks if b in normalized]
    print("\nGeomean speedup over", baseline + ":")
    for sched in schedulers:
        gm = geometric_mean(normalized[b][sched] for b in complete)
        print(f"  {sched:10s} {gm:.3f}")
    print()
    print(format_sweep_stats(stats, cache.stats if cache else None))
    if failures:
        print(f"\n{len(failures)} job(s) failed "
              f"(on_error={args.on_error!r}):")
        for failure in failures:
            extra = ", timed out" if failure.timed_out else ""
            print(f"  {failure.benchmark_name}/{failure.scheduler}: "
                  f"{failure.error_type}: {failure.error} "
                  f"(attempts {failure.attempts}{extra})")
        return 1
    return 0


# ---------------------------------------------------------------------------
# repro reproduce
# ---------------------------------------------------------------------------
def cmd_reproduce(args) -> int:
    from repro.harness import experiments

    targets = list(REPRODUCE_TARGETS) if "all" in args.figures else args.figures
    unknown = [f for f in targets if f not in REPRODUCE_TARGETS]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; "
              f"choose from {', '.join(REPRODUCE_TARGETS)} or 'all'", file=sys.stderr)
        return 2

    cache = _cache_from_args(args)
    output: dict[str, object] = {}
    for figure in targets:
        fn = getattr(experiments, REPRODUCE_TARGETS[figure])
        kwargs: dict[str, object] = {}
        # Tables are pure lookups; everything else simulates via the engine.
        if figure not in ("table1", "table2"):
            kwargs = {
                "scale": args.scale,
                "seed": args.seed,
                "workers": args.workers,
                "cache": cache,
                "backend": args.backend,
            }
        print(f"reproducing {figure} ({REPRODUCE_TARGETS[figure]}) ...", file=sys.stderr)
        output[figure] = fn(**kwargs)

    payload = output if len(targets) > 1 else output[targets[0]]
    text = json.dumps(payload, indent=2, default=str)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    if cache is not None:
        print(
            f"cache: {cache.stats.hits} hits / {cache.stats.lookups} lookups "
            f"({cache.stats.hit_rate:.0%})",
            file=sys.stderr,
        )
    return 0


# ---------------------------------------------------------------------------
# repro bench
# ---------------------------------------------------------------------------
def cmd_bench(args) -> int:
    from repro.harness import bench as bench_mod

    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    if not 0.0 <= args.tolerance < 1.0:
        print("error: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2
    benchmarks = resolve_benchmark_names(args.benchmarks) if args.benchmarks else None
    schedulers = (
        [canonical_scheduler_name(s) for s in args.schedulers] if args.schedulers else None
    )
    cases = bench_mod.bench_matrix(
        quick=args.quick,
        backend=resolve_backend_name(args.backend),
        benchmarks=benchmarks,
        schedulers=schedulers,
        scale=args.scale,
        seed=args.seed,
    )
    progress = None if args.json else (lambda message: print(message, file=sys.stderr))
    report = bench_mod.run_bench(
        cases, repeats=args.repeat, quick=args.quick, progress=progress
    )
    report_path = None
    if not args.no_write:
        report_path = bench_mod.write_report(report, args.out)
    ledger = bench_mod.record_bench(report)

    problems: list[str] = []
    deltas: Optional[list[dict]] = None
    if args.baseline:
        try:
            baseline = bench_mod.load_report(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        problems = bench_mod.compare_reports(report, baseline, tolerance=args.tolerance)
        deltas = bench_mod.case_deltas(report, baseline)

    if args.json:
        json.dump(
            {
                **report,
                "report_path": str(report_path) if report_path else None,
                "baseline": args.baseline,
                # Per-case cycles/sec vs the baseline (None for cases the
                # baseline does not know, e.g. new vector rows).
                "deltas": deltas,
                "regressions": problems,
            },
            sys.stdout,
            indent=2,
        )
        print()
    else:
        delta_by_key = {
            (d["benchmark"], d["scheduler"], d["backend"]): d
            for d in (deltas or ())
        }
        rows = []
        for c in report["cases"]:
            row = {
                "benchmark": c["benchmark"],
                "scheduler": c["scheduler"],
                "backend": c["backend"],
                "wall_s": c["wall_seconds"],
                "cycles_per_s": c["cycles_per_second"],
            }
            if deltas is not None:
                delta = delta_by_key.get(
                    (c["benchmark"], c["scheduler"], c["backend"])
                )
                speedup = delta.get("speedup") if delta else None
                row["vs_baseline"] = (
                    f"{speedup:.2f}x" if speedup is not None else "new"
                )
            rows.append(row)
        print(format_table(rows))
        aggregate = report["aggregate"]
        print(
            f"\naggregate: {aggregate['cycles']} cycles in "
            f"{aggregate['wall_seconds']:.2f}s = "
            f"{aggregate['cycles_per_second']:.0f} cycles/sec (rev {report['rev']})"
        )
        if report_path is not None:
            print(f"wrote {report_path}")
        if ledger is not None:
            print(f"ledger: {ledger}")
        for problem in problems:
            print(f"REGRESSION: {problem}")
    return 1 if problems else 0


# ---------------------------------------------------------------------------
# repro cache / repro list
# ---------------------------------------------------------------------------
def _cmd_cache_fsck(args, cache: ResultCache) -> int:
    """``repro cache fsck [--repair]``: scan cache + manifests + ledger.

    Exit 0 only when nothing is corrupt and no damaged lines remain on
    disk; a scan that merely *found* (and quarantined) damage exits 1 so
    scripts notice, and a following ``--repair`` run exits 0.
    """
    from pathlib import Path

    from repro.harness.integrity import default_quarantine_dir, fsck

    ledger = Path(args.fsck_ledger) if args.fsck_ledger else ledger_path()
    report = fsck(
        cache=cache,
        manifests=[Path(m) for m in (args.fsck_manifest or ())],
        ledger=ledger if ledger.exists() else None,
        repair=args.repair,
    )
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2)
        print()
        return 0 if report.clean else 1
    for artifact in report.artifacts:
        notes = []
        if artifact.detail:
            notes.append(artifact.detail)
        if artifact.damaged_lines:
            notes.append(f"{artifact.damaged_lines} damaged line(s)")
        if artifact.quarantined:
            notes.append("quarantined")
        if artifact.repaired:
            notes.append("repaired")
        suffix = f"  ({'; '.join(notes)})" if notes else ""
        print(f"{artifact.kind:8s} {artifact.verdict:8s} {artifact.path}{suffix}")
    print(f"\nchecked {len(report.artifacts)} artifact(s): "
          f"{report.corrupt} corrupt, {report.legacy} legacy, "
          f"{report.damaged_lines} damaged line(s)"
          f"{f' ({report.unrepaired_damage} unrepaired)' if report.damaged_lines else ''}")
    if cache.stats.quarantined or report.corrupt:
        print(f"quarantine      : {default_quarantine_dir()}")
    if not report.clean:
        if report.repair:
            print("damage remains after --repair; inspect the quarantine "
                  "directory", file=sys.stderr)
        else:
            print("damage found; re-run with --repair to rewrite legacy "
                  "envelopes and strip damaged lines (originals are "
                  "preserved in quarantine)", file=sys.stderr)
        return 1
    return 0


def cmd_cache(args) -> int:
    action = "clear" if getattr(args, "clear", False) else args.action
    cache = ResultCache()
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        if cache.stats.quarantined:
            print(f"quarantined {cache.stats.quarantined} corrupt entr"
                  f"{'y' if cache.stats.quarantined == 1 else 'ies'} "
                  "(see repro cache fsck)")
        return 0
    if action == "fsck":
        return _cmd_cache_fsck(args, cache)
    if action == "stats":
        path = ledger_path()
        # A missing .repro/ or ledger file is the normal state of a fresh
        # checkout, not an error: say so plainly instead of an ambiguous
        # "(empty)" (the serve /stats endpoint shares summarize_ledger and
        # reports zeros for the same reason).
        if not path.exists():
            print(f"no bench ledger yet at {path}")
            print("run a sweep (repro sweep), a bench (repro bench) or a "
                  "service session (repro serve) to create it")
            return 0
        entries, skipped = read_ledger_report(path)
        if skipped:
            print(f"warning: skipped {skipped} corrupt ledger line(s); run "
                  "`repro cache fsck --repair` to quarantine the damage",
                  file=sys.stderr)
        if not entries:
            print(f"bench ledger    : {path} (exists but has no entries yet)")
            return 0
        summary = summarize_ledger(entries)
        print(f"bench ledger    : {path}")
        print(f"sweeps          : {summary['sweeps']} "
              f"({summary['cold_sweeps']} cold, {summary['warm_sweeps']} warm)")
        print(f"jobs            : {summary['jobs']} "
              f"({summary['cache_hits']} cached, {summary['hit_rate']:.0%})")
        print(f"wall time       : {summary['wall_seconds']:.2f}s total")
        print(f"mean cold sweep : {summary['mean_cold_wall_seconds']:.2f}s")
        print(f"mean warm sweep : {summary['mean_warm_wall_seconds']:.2f}s")
        if summary["sweeps_by_backend"]:
            per_backend = ", ".join(
                f"{name}: {count}" for name, count in sorted(summary["sweeps_by_backend"].items())
            )
            print(f"by backend      : {per_backend}")
        if summary["bench_runs"]:
            print(f"bench runs      : {summary['bench_runs']} "
                  f"(latest {summary['bench_latest_cycles_per_second']:.0f} cyc/s"
                  f" @ {summary['bench_latest_rev'] or '?'}, "
                  f"best {summary['bench_best_cycles_per_second']:.0f} cyc/s)")
        if summary["serve_sessions"]:
            print(f"serve sessions  : {summary['serve_sessions']} "
                  f"({summary['serve_requests']} requests: "
                  f"{summary['serve_hits']} hits, "
                  f"{summary['serve_coalesced']} coalesced, "
                  f"{summary['serve_executed']} executed)")
        if summary["audited"] or summary["audit_rows"] or summary["corrupt"]:
            print(f"worker audits   : {summary['audited']} audited, "
                  f"{summary['audit_failures']} mismatch(es), "
                  f"{summary['corrupt']} transport-corrupt row(s), "
                  f"{summary['audit_rows']} audit ledger row(s)")
        recent = [e for e in entries if e.get("kind") not in ("bench", "serve")][-5:]
        if recent:
            print("\nmost recent sweeps:")
            print(format_table([
                {
                    "jobs": e.get("jobs", 0),
                    "cached": e.get("cache_hits", 0),
                    "workers": e.get("workers", 0),
                    "wall_s": e.get("wall_seconds", 0.0),
                    "backend": e.get("backend", ""),
                }
                for e in recent
            ]))
        return 0
    enabled = cache_enabled_by_env()
    print(f"cache directory : {default_cache_dir()}")
    print(f"enabled         : {'yes' if enabled else 'no (REPRO_RESULT_CACHE)'}")
    print(f"entries         : {cache.entry_count()}")
    print(f"size            : {cache.size_bytes() / 1024:.1f} KiB")
    print(f"bench ledger    : {ledger_path()} ({len(read_ledger())} sweeps recorded)")
    from repro.harness.integrity import default_quarantine_dir, quarantined_artifacts

    quarantined = quarantined_artifacts()
    if quarantined:
        print(f"quarantine      : {len(quarantined)} artifact(s) in "
              f"{default_quarantine_dir()} (details: repro cache fsck)")
    return 0


def cmd_list(args) -> int:
    if args.backends:
        from repro.backends import backend_availability

        for name, reason in backend_availability().items():
            print(name if reason is None else f"{name} (unavailable: {reason})")
        return 0
    if args.scenarios:
        from repro.harness.experiments import COLOCATION_SCENARIOS

        for scenario in COLOCATION_SCENARIOS.values():
            tenants = ", ".join(
                f"{bench}/{sched}:{'+'.join(str(i) for i in sms)}"
                for _, bench, sched, sms in scenario.tenants
            )
            stagger = (
                " launches @" + "/".join(str(c) for c in scenario.launch_cycles)
                if scenario.launch_cycles else ""
            )
            print(f"{scenario.name:20s} {scenario.description} [{tenants}]{stagger}")
        return 0
    print("Benchmarks (Table II order):")
    rows = [
        {
            "name": spec.name,
            "suite": spec.suite,
            "class": spec.workload_class.name,
            "apki": spec.apki,
            "nwrp": spec.nwrp,
        }
        for spec in all_benchmarks()
    ]
    print(format_table(rows))
    from repro.harness.experiments import colocation_scenario_names

    from repro.backends import backend_availability

    backend_notes = [
        name if reason is None else f"{name} (unavailable: {reason})"
        for name, reason in backend_availability().items()
    ]
    print("\nSchedulers:", ", ".join(scheduler_names()))
    print("Backends:", ", ".join(backend_notes),
          "(select with --backend or REPRO_BACKEND)")
    print("Reproduce targets:", ", ".join(REPRODUCE_TARGETS), "(or 'all')")
    print("Co-location scenarios:", ", ".join(colocation_scenario_names()),
          "(run with repro run --scenario NAME; details: repro list --scenarios)")
    return 0


# ---------------------------------------------------------------------------
# repro scenarios
# ---------------------------------------------------------------------------
def _emit_json(payload, out: Optional[str]) -> None:
    text = json.dumps(payload, indent=2)
    if out:
        with open(out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {out}", file=sys.stderr)
    else:
        print(text)


def _scenario_payload(scenario, *, cache_key=None, extra=None) -> dict:
    payload = scenario.to_json()
    if cache_key is not None:
        payload["cache_key"] = cache_key
    if extra:
        payload.update(extra)
    return payload


def cmd_scenarios_generate(args) -> int:
    from repro.scenarios import SCENARIO_SCHEMA, generate_scenarios

    if args.count < 1:
        print("error: --count must be >= 1", file=sys.stderr)
        return 2
    scenarios = generate_scenarios(
        args.seed,
        args.count,
        scale=args.scale,
        max_sms=args.max_sms,
        max_tenants=args.max_tenants,
        stagger_span=args.stagger_span,
    )
    payload = {
        "schema": SCENARIO_SCHEMA,
        "generator": {
            "seed": args.seed,
            "count": args.count,
            "scale": args.scale,
            "max_sms": args.max_sms,
            "max_tenants": args.max_tenants,
            "stagger_span": args.stagger_span,
        },
        # Each entry carries the co-located request's content-addressed
        # cache key: the reproducibility receipt for the spec.
        "scenarios": [
            _scenario_payload(s, cache_key=s.request().cache_key())
            for s in scenarios
        ],
    }
    _emit_json(payload, args.out)
    return 0


def _run_search(args):
    from repro.scenarios import search

    return search(
        args.seed,
        restarts=args.restarts,
        steps=args.steps,
        scale=args.scale,
        max_sms=args.max_sms,
        max_tenants=args.max_tenants,
        stagger_span=args.stagger_span,
        workers=args.workers,
        cache=_cache_from_args(args),
    )


def cmd_scenarios_search(args) -> int:
    try:
        outcome = _run_search(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json or args.out:
        payload = {
            "seed": args.seed,
            "restarts": args.restarts,
            "steps": args.steps,
            "scale": args.scale,
            "best": _scenario_payload(
                outcome.best, extra={"objective": outcome.best_objective}
            ),
            "evaluations": outcome.evaluations,
            "reused": outcome.reused,
            "ledger": [
                {
                    **_scenario_payload(row.scenario, cache_key=row.cache_key),
                    "objective": row.objective,
                    "slowdowns": row.slowdowns,
                    "restart": row.restart,
                    "step": row.step,
                    "accepted": row.accepted,
                }
                for row in outcome.ledger
            ],
        }
        _emit_json(payload, args.out)
        return 0
    print(format_table([
        {
            "restart": row.restart,
            "step": row.step,
            "scenario": row.scenario.name,
            "max_slowdown": row.objective,
            "accepted": "yes" if row.accepted else "",
        }
        for row in outcome.ledger
    ]))
    print(f"\nbest: {outcome.best.name} with max slowdown "
          f"{outcome.best_objective:.3f} "
          f"({outcome.evaluations} points simulated, {outcome.reused} reused)")
    tenants = ", ".join(
        f"{bench}/{sched}:{'+'.join(str(i) for i in sms)}"
        for _, bench, sched, sms in outcome.best.tenants
    )
    launches = outcome.best.launch_cycles or "simultaneous"
    print(f"  tenants: {tenants}")
    print(f"  launch cycles: {launches}, scale {outcome.best.scale}, "
          f"seed {outcome.best.seed}")
    print("  pin it: repro scenarios promote with the same --seed/--restarts/--steps")
    return 0


def cmd_scenarios_promote(args) -> int:
    from pathlib import Path

    from repro.scenarios import PROMOTED_PATH, promote, promoted_from_search

    if args.top_k < 1:
        print("error: --top-k must be >= 1", file=sys.stderr)
        return 2
    try:
        outcome = _run_search(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    chosen = promoted_from_search(
        outcome, top_k=args.top_k, name_prefix=args.prefix
    )
    if args.dry_run:
        _emit_json([scenario.to_json() for scenario in chosen], None)
        return 0
    path = Path(args.path) if args.path else None
    try:
        all_promoted = promote(chosen, path=path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for scenario in chosen:
        print(f"promoted {scenario.name}: {scenario.description}")
    print(f"fixture: {path or PROMOTED_PATH} "
          f"({len(all_promoted)} promoted scenario(s) total)")
    print("next: regenerate the pinned goldens — "
          "PYTHONPATH=src python scripts/regen_goldens.py")
    return 0


# ---------------------------------------------------------------------------
# repro serve / repro submit
# ---------------------------------------------------------------------------
def cmd_serve(args) -> int:
    import asyncio

    from repro.serve import ReproService, run_service

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.batch_max < 1:
        print("error: --batch-max must be >= 1", file=sys.stderr)
        return 2
    if args.linger < 0:
        print("error: --linger must be >= 0", file=sys.stderr)
        return 2
    if args.backend is not None:
        try:
            args.backend = resolve_backend_name(args.backend)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    if args.retry_max < 1:
        print("error: --retry-max must be >= 1", file=sys.stderr)
        return 2
    if args.batch_timeout is not None and args.batch_timeout <= 0:
        print("error: --batch-timeout must be positive", file=sys.stderr)
        return 2
    if args.max_queue_depth is not None and args.max_queue_depth < 1:
        print("error: --max-queue-depth must be >= 1", file=sys.stderr)
        return 2
    retry = None
    if args.retry_max > 1 or args.batch_timeout is not None:
        retry = RetryPolicy(
            max_attempts=args.retry_max,
            timeout_seconds=args.batch_timeout,
        )
    service = ReproService(
        host=args.host,
        port=args.port,
        cache=_cache_from_args(args),
        workers=args.workers,
        batch_max=args.batch_max,
        linger=args.linger,
        backend=args.backend,
        retry=retry,
        max_queue_depth=args.max_queue_depth,
    )
    try:
        # The announce line goes to stdout (flushed) so scripts — the CI
        # smoke job, test harnesses — can parse the bound port when
        # --port 0 asked for an ephemeral one.
        asyncio.run(run_service(service, announce=lambda m: print(m, flush=True)))
    except KeyboardInterrupt:
        pass  # the signal handler already drained; a second ^C lands here
    snapshot = service.stats.snapshot()
    print(
        f"drained: {snapshot['requests']} requests "
        f"({snapshot['hits']} hits, {snapshot['coalesced']} coalesced, "
        f"{snapshot['executed']} executed, {snapshot['failed']} failed, "
        f"{snapshot['shed']} shed, {snapshot['timed_out']} timed out, "
        f"{snapshot['retried']} retried)",
        flush=True,
    )
    summary = service.drain_summary or {}
    if summary.get("drain_errors"):
        # Satellite fix: these used to be silently swallowed by
        # gather(..., return_exceptions=True) during shutdown.
        print(f"warning: {summary['drain_errors']} worker error(s) during "
              "drain:", file=sys.stderr)
        for message in summary.get("errors", []):
            print(f"  {message}", file=sys.stderr)
        return 1
    return 0


def cmd_worker(args) -> int:
    import asyncio

    from repro.harness.distributed import WorkerServer, run_worker

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.backend is not None:
        try:
            args.backend = resolve_backend_name(args.backend)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    server = WorkerServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        cache=_cache_from_args(args),
    )
    try:
        # Announce on stdout (flushed) so coordinators and smoke scripts
        # can parse the bound port when --port 0 asked for an ephemeral one.
        asyncio.run(run_worker(server, announce=lambda m: print(m, flush=True)))
    except KeyboardInterrupt:
        pass  # the signal handler already drained; a second ^C lands here
    print(
        f"drained: {server.batches} batch(es), {server.jobs_done} job(s) done, "
        f"{server.jobs_failed} failed",
        flush=True,
    )
    return 0


def cmd_submit(args) -> int:
    import http.client
    import urllib.parse

    from repro.serve import DEFAULT_PORT

    if args.file:
        try:
            if args.file == "-":
                payload = json.load(sys.stdin)
            else:
                with open(args.file) as fh:
                    payload = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read request payload: {exc}", file=sys.stderr)
            return 2
    else:
        if not args.benchmark:
            print("error: benchmark argument required (or use --file)",
                  file=sys.stderr)
            return 2
        request = SimulationRequest(
            get_benchmark(args.benchmark).name,
            canonical_scheduler_name(args.scheduler),
            RunConfig(scale=args.scale, seed=args.seed),
            backend=args.backend,
        )
        payload = request.to_dict()

    url = urllib.parse.urlsplit(args.url)
    host = url.hostname or "127.0.0.1"
    port = url.port or DEFAULT_PORT
    conn = http.client.HTTPConnection(host, port, timeout=args.timeout)
    try:
        conn.request(
            "POST",
            "/simulate",
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = response.read()
        status = response.status
        source = response.getheader("X-Repro-Source", "")
        job_id = response.getheader("X-Repro-Job", "")
    except TimeoutError:
        # socket.timeout is TimeoutError: a server that accepts but never
        # answers (or a hung simulation) lands here, not in the generic
        # OSError arm — exit code 3 tells scripts "reachable but hung".
        print(f"error: request to {args.url} timed out after "
              f"{args.timeout}s (server accepted the connection but never "
              "responded)", file=sys.stderr)
        return 3
    except OSError as exc:
        print(f"error: cannot reach {args.url}: {exc} "
              "(is `repro serve` running?)", file=sys.stderr)
        return 1
    finally:
        conn.close()

    if status != 200:
        print(f"error: server answered {status}: {body.decode(errors='replace')}",
              file=sys.stderr)
        return 1
    if args.json:
        print(body.decode())
        return 0
    from repro.gpu.gpu import SimulationResult

    result = SimulationResult.from_dict(json.loads(body))
    print(f"{result.kernel_name} / {result.scheduler_name} "
          f"({result.backend} backend, {source or 'unknown'} via job {job_id})")
    rows = [{
        "ipc": result.ipc,
        "cycles": result.sm0.cycles,
        "l1d_hit_rate": result.sm0.l1d_hit_rate,
        "inter_sm_dram_conflicts": result.inter_sm_dram_conflicts,
    }]
    print(format_table(rows))
    return 0


# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CIAO (IPDPS'18) reproduction: simulate, sweep and "
                    "regenerate the paper's figures.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run",
        help="run one benchmark under one or more schedulers, or a "
             "co-located multi-tenant launch (--tenants / --scenario)",
    )
    p_run.add_argument("benchmark", nargs="?", default=None,
                       help="Table II benchmark name (e.g. ATAX); omit when "
                            "using --tenants or --scenario")
    p_run.add_argument("schedulers", nargs="*",
                       help="scheduler names (default: gto)")
    _add_sweep_options(p_run, scale_default=None, seed_default=None)
    p_run.add_argument("--tenants", metavar="SPEC", default=None,
                       help="co-located tenants as [NAME=]BENCH[/SCHED]:SMS "
                            "entries, comma-separated (SMS: one id or lo-hi), "
                            "e.g. 'SM:0-1,compute=2DCONV/ciao-c:2'; runs on "
                            "the lock-step engine")
    p_run.add_argument("--scenario", metavar="NAME", default=None,
                       help="run a named co-location scenario from the "
                            "built-in library (see repro list --scenarios); "
                            "always reports slowdown vs isolated runs")
    p_run.add_argument("--isolated", action="store_true",
                       help="with --tenants: also run every tenant alone on "
                            "the same machine and report per-tenant slowdown")
    p_run.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser("sweep", help="benchmark x scheduler grid via the parallel engine")
    p_sweep.add_argument("-b", "--benchmarks", nargs="+", required=True,
                         help="benchmark names or selectors: all, lws, sws, ci, "
                              "memory-intensive, polybench, mars, rodinia")
    p_sweep.add_argument("-s", "--schedulers", nargs="+",
                         default=["gto", "ccws", "ciao-c"],
                         help="schedulers; the first is the normalisation baseline")
    _add_sweep_options(p_sweep)
    p_sweep.add_argument("--seed-per-job", action="store_true",
                         help="derive a deterministic per-(benchmark, scheduler) seed "
                              "from --seed instead of sharing one seed")
    p_sweep.add_argument("--on-error", choices=("raise", "skip", "retry"),
                         default="raise",
                         help="failure mode: abort the sweep (raise, default), "
                              "record typed JobFailure rows and continue "
                              "(skip), or re-dispatch failed jobs with "
                              "seeded backoff (retry); see docs/RESILIENCE.md")
    p_sweep.add_argument("--max-attempts", type=int, default=3, metavar="N",
                         help="executions any one job may consume with "
                              "--on-error retry (default 3)")
    p_sweep.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                         help="per-job deadline on the pool path; a dispatch "
                              "running longer is abandoned and counted "
                              "timed_out (default: none)")
    p_sweep.add_argument("--straggler", type=float, default=None, metavar="SECONDS",
                         help="straggler deadline: a job still running after "
                              "this long is duplicated onto an idle worker, "
                              "first result wins (default: none)")
    p_sweep.add_argument("--manifest", default=None, metavar="PATH",
                         help="append per-job outcomes to this checkpoint "
                              "manifest as they settle (JSON lines; see "
                              "docs/RESILIENCE.md)")
    p_sweep.add_argument("--resume", default=None, metavar="MANIFEST",
                         help="resume an interrupted sweep: with the result "
                              "cache on, jobs already done are served from "
                              "the cache and only the rest execute; outcomes "
                              "keep appending to the same manifest")
    p_sweep.add_argument("--chaos", default=None, metavar="SEED:RATE[:KINDS]",
                         help="run the sweep under the seeded fault injector "
                              "(e.g. 7:0.2 or 7:0.2:fail+hang); same seed, "
                              "same faults — pair with --on-error retry")
    p_sweep.add_argument("--workers-at", default=None, metavar="HOST:PORT,...",
                         help="shard the sweep across these `repro worker` "
                              "processes instead of running locally; results "
                              "are bit-identical to a local sweep (see "
                              "docs/DISTRIBUTED.md)")
    p_sweep.add_argument("--worker-roster", default=None, metavar="PATH",
                         help='worker roster file: {"workers": '
                              '["host:port", ...]} (alternative to '
                              "--workers-at)")
    p_sweep.add_argument("--chunk-size", type=int, default=4, metavar="N",
                         help="jobs per dispatch chunk on the distributed "
                              "path — the most one lost worker forfeits "
                              "(default 4)")
    p_sweep.add_argument("--audit-rate", type=float, default=0.0, metavar="R",
                         help="distributed sweeps only: re-execute a seeded "
                              "fraction R of worker-returned jobs locally and "
                              "compare content digests; a mismatch discards "
                              "and re-dispatches that worker's outcomes "
                              "(default 0 = trust the fleet)")
    p_sweep.add_argument("--json", action="store_true", help="emit JSON instead of tables")
    p_sweep.set_defaults(func=cmd_sweep)

    p_rep = sub.add_parser("reproduce", help="regenerate a figure/table of the paper as JSON")
    p_rep.add_argument("figures", nargs="+",
                       help=f"one or more of: {', '.join(REPRODUCE_TARGETS)}, all")
    _add_sweep_options(p_rep)
    p_rep.add_argument("--out", help="write JSON here instead of stdout")
    p_rep.set_defaults(func=cmd_reproduce)

    p_bench = sub.add_parser(
        "bench",
        help="measure simulator throughput (cycles/sec) on the pinned workload matrix",
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="run the small smoke matrix (CI-sized, a few seconds)")
    p_bench.add_argument("-b", "--benchmarks", nargs="+", metavar="BENCH",
                         help="override the pinned benchmark list (names or selectors)")
    p_bench.add_argument("-s", "--schedulers", nargs="+", metavar="SCHED",
                         help="override the pinned scheduler list")
    p_bench.add_argument("--scale", type=float, default=None,
                         help="override the pinned workload scale")
    p_bench.add_argument("--seed", type=int, default=1,
                         help="workload RNG seed (default 1)")
    p_bench.add_argument("--backend", default=None, metavar="NAME",
                         help="execution engine to measure, one of: "
                              f"{', '.join(backend_names())} "
                              "(default: REPRO_BACKEND or 'reference')")
    p_bench.add_argument("--repeat", type=int, default=1, metavar="N",
                         help="time each case N times and keep the best (default 1)")
    p_bench.add_argument("--out", default=".", metavar="DIR",
                         help="directory for the BENCH_<rev>.json report (default: .)")
    p_bench.add_argument("--no-write", action="store_true",
                         help="skip writing the BENCH_<rev>.json report")
    p_bench.add_argument("--baseline", metavar="PATH",
                         help="compare against a baseline BENCH_*.json; exit 1 when "
                              "cycles/sec regressed beyond --tolerance")
    p_bench.add_argument("--tolerance", type=float, default=0.30, metavar="FRAC",
                         help="allowed fractional cycles/sec regression vs the "
                              "baseline (default 0.30)")
    p_bench.add_argument("--json", action="store_true",
                         help="emit the report (plus any regressions) as JSON")
    p_bench.set_defaults(func=cmd_bench)

    from repro.scenarios.generator import DEFAULT_STAGGER_SPAN

    p_scn = sub.add_parser(
        "scenarios",
        help="generate seeded co-location scenarios, search for worst-case "
             "interference, promote discoveries into the library",
    )
    scn_sub = p_scn.add_subparsers(dest="action", required=True)

    def add_space_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=1,
                       help="generator stream seed (default 1); the whole "
                            "command is deterministic in it")
        p.add_argument("--scale", type=float, default=0.05,
                       help="workload size multiplier (default 0.05)")
        p.add_argument("--max-sms", type=int, default=5,
                       help="largest sampled machine (default 5 SMs)")
        p.add_argument("--max-tenants", type=int, default=4,
                       help="most sampled tenants (default 4)")
        p.add_argument("--stagger-span", type=int, default=DEFAULT_STAGGER_SPAN,
                       help="exclusive upper bound on sampled launch-cycle "
                            f"offsets (default {DEFAULT_STAGGER_SPAN}; "
                            "0 disables staggered launches)")

    p_gen = scn_sub.add_parser(
        "generate",
        help="sample reproducible scenario specs (JSON, with cache keys)",
    )
    add_space_options(p_gen)
    p_gen.add_argument("--count", type=int, default=5,
                       help="scenarios to sample from the stream (default 5)")
    p_gen.add_argument("--out", metavar="PATH",
                       help="write JSON here instead of stdout")
    p_gen.set_defaults(func=cmd_scenarios_generate)

    def add_search_options(p: argparse.ArgumentParser) -> None:
        add_space_options(p)
        p.add_argument("--restarts", type=int, default=3,
                       help="independent hill climbs (default 3)")
        p.add_argument("--steps", type=int, default=5,
                       help="mutation proposals per climb (default 5)")
        p.add_argument("--workers", type=int, default=None,
                       help="process-pool size (default: REPRO_WORKERS or CPU count)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache for this invocation")

    p_search = scn_sub.add_parser(
        "search",
        help="hill-climb the scenario space for worst-case interference",
    )
    add_search_options(p_search)
    p_search.add_argument("--json", action="store_true",
                          help="emit the full ledger as JSON instead of a table")
    p_search.add_argument("--out", metavar="PATH",
                          help="write the JSON search report here")
    p_search.set_defaults(func=cmd_scenarios_search)

    p_prom = scn_sub.add_parser(
        "promote",
        help="run a search and pin its worst discoveries into the scenario library",
    )
    add_search_options(p_prom)
    p_prom.add_argument("--top-k", type=int, default=2,
                        help="distinct best scenarios to promote (default 2)")
    p_prom.add_argument("--prefix", default="discovered",
                        help="promoted scenario name prefix (default 'discovered')")
    p_prom.add_argument("--path", metavar="PATH",
                        help="promoted fixture to write (default: the library's "
                             "committed promoted.json)")
    p_prom.add_argument("--dry-run", action="store_true",
                        help="print what would be promoted without writing")
    p_prom.set_defaults(func=cmd_scenarios_promote)

    from repro.harness.distributed import DEFAULT_WORKER_PORT
    from repro.serve.server import DEFAULT_PORT

    p_serve = sub.add_parser(
        "serve",
        help="boot the long-lived simulation service (HTTP/JSON; see "
             "docs/SERVING.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"TCP port (default {DEFAULT_PORT}; 0 picks an "
                              "ephemeral port, announced on stdout)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker threads draining request batches into "
                              "run_batch (default 2)")
    p_serve.add_argument("--batch-max", type=int, default=16,
                         help="most requests dispatched per batch (default 16)")
    p_serve.add_argument("--linger", type=float, default=0.05, metavar="SECONDS",
                         help="window after the first queued miss in which "
                              "later arrivals join its batch (default 0.05)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve without the on-disk result cache (every "
                              "distinct request simulates)")
    p_serve.add_argument("--backend", default=None, metavar="NAME",
                         help="engine for requests that do not pin one, one of: "
                              f"{', '.join(backend_names())} "
                              "(default: REPRO_BACKEND or 'reference')")
    p_serve.add_argument("--batch-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-batch deadline: a batch running longer "
                              "fails its jobs with BatchTimeoutError and its "
                              "worker thread is abandoned (default: none)")
    p_serve.add_argument("--retry-max", type=int, default=1, metavar="N",
                         help="attempts per dispatched batch, with seeded "
                              "backoff between them (default 1 = no retry)")
    p_serve.add_argument("--max-queue-depth", type=int, default=None,
                         metavar="N",
                         help="load-shedding threshold: new leader requests "
                              "get 503 + Retry-After while the dispatch "
                              "queue is this deep (default: never shed)")
    p_serve.set_defaults(func=cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="boot a long-lived sweep worker for `repro sweep --workers-at` "
             "(HTTP/JSON batches; see docs/DISTRIBUTED.md)",
    )
    p_worker.add_argument("--host", default="127.0.0.1",
                          help="bind address (default 127.0.0.1)")
    p_worker.add_argument("--port", type=int, default=DEFAULT_WORKER_PORT,
                          help=f"TCP port (default {DEFAULT_WORKER_PORT}; 0 "
                               "picks an ephemeral port, announced on stdout)")
    p_worker.add_argument("--workers", type=int, default=1,
                          help="process-pool width for each batch this worker "
                               "executes (default 1 = in-process)")
    p_worker.add_argument("--no-cache", action="store_true",
                          help="execute without the on-disk result cache")
    p_worker.add_argument("--backend", default=None, metavar="NAME",
                          help="engine for jobs that do not pin one, one of: "
                               f"{', '.join(backend_names())} "
                               "(default: REPRO_BACKEND or 'reference')")
    p_worker.set_defaults(func=cmd_worker)

    p_submit = sub.add_parser(
        "submit",
        help="submit one request to a running `repro serve` and print the result",
    )
    p_submit.add_argument("benchmark", nargs="?", default=None,
                          help="Table II benchmark name (omit with --file)")
    p_submit.add_argument("scheduler", nargs="?", default="gto",
                          help="scheduler name (default: gto)")
    p_submit.add_argument("--scale", type=float, default=0.3,
                          help="workload size multiplier (default 0.3)")
    p_submit.add_argument("--seed", type=int, default=1,
                          help="workload RNG seed (default 1)")
    p_submit.add_argument("--backend", default=None, metavar="NAME",
                          help="execution engine to request (default: let the "
                               "server decide)")
    p_submit.add_argument("--file", metavar="PATH",
                          help="POST this JSON request payload verbatim "
                               "(a SimulationRequest or MultiTenantRequest "
                               "wire form; '-' reads stdin)")
    p_submit.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
                          help="service base URL "
                               f"(default http://127.0.0.1:{DEFAULT_PORT})")
    p_submit.add_argument("--timeout", type=float, default=300.0,
                          help="HTTP connect + read timeout in seconds "
                               "(default 300); a hung server exits with "
                               "code 3 instead of blocking forever")
    p_submit.add_argument("--json", action="store_true",
                          help="print the raw result wire form instead of a summary")
    p_submit.set_defaults(func=cmd_submit)

    p_cache = sub.add_parser("cache", help="inspect the result cache and bench ledger")
    p_cache.add_argument("action", nargs="?",
                         choices=("show", "stats", "clear", "fsck"),
                         default="show",
                         help="show the cache, print bench-ledger statistics, "
                              "clear the cache, or verify artifact integrity "
                              "(fsck; default: show)")
    p_cache.add_argument("--clear", action="store_true",
                         help="deprecated alias of the 'clear' action")
    p_cache.add_argument("--repair", action="store_true",
                         help="fsck: rewrite repairable legacy envelopes and "
                              "strip damaged manifest/ledger lines (original "
                              "bytes are preserved in quarantine first)")
    p_cache.add_argument("--manifest", action="append", default=None,
                         metavar="PATH", dest="fsck_manifest",
                         help="fsck: also scan this sweep manifest "
                              "(repeatable)")
    p_cache.add_argument("--ledger", default=None, metavar="PATH",
                         dest="fsck_ledger",
                         help="fsck: scan this ledger file instead of the "
                              "default bench ledger")
    p_cache.add_argument("--json", action="store_true",
                         help="fsck: emit the per-artifact report as JSON")
    p_cache.set_defaults(func=cmd_cache)

    p_list = sub.add_parser("list", help="list benchmarks, schedulers, backends, "
                                         "reproduce targets and co-location scenarios")
    p_list.add_argument("--backends", action="store_true",
                        help="list only the registered execution backends")
    p_list.add_argument("--scenarios", action="store_true",
                        help="list only the built-in co-location scenarios")
    p_list.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Configuration validation (REPRO_WORKERS, worker rosters, wire
        # forms): one clear line naming the offending knob, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BackendUnavailableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
