"""Package version."""

__version__ = "0.5.0"
