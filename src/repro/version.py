"""Package version."""

__version__ = "0.3.0"
