"""Package version."""

__version__ = "0.9.0"
