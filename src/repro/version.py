"""Package version."""

__version__ = "0.2.0"
