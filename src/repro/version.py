"""Package version."""

__version__ = "0.8.0"
