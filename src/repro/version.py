"""Package version."""

__version__ = "0.7.0"
