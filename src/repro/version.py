"""Package version."""

__version__ = "0.6.0"
