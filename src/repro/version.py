"""Package version."""

__version__ = "0.4.0"
