"""Victim Tag Array (VTA).

The VTA is the locality/interference sensor both CCWS and CIAO build on
(paper Section II-C).  Each warp owns a small FIFO set of *victim tags*:

* When a warp's line is evicted from the L1D, the evicted block's tag is
  pushed into the VTA set of the warp that originally brought the data in,
  together with the WID of the warp whose access caused the eviction.
* When a warp later misses on a block that is still in its own VTA set, that
  is a *VTA hit*: the warp had locality on the block and lost it to an
  identifiable interfering warp.

CCWS uses VTA hits as a per-warp "lost locality" score.  CIAO additionally
uses the recorded *evictor* WID to attribute the interference to a specific
warp (Section III-A), which feeds the interference list.

Table I configures the VTA as "8 tags per set, 48 sets, FIFO"; the paper's
overhead analysis (Section V-F) notes CIAO only needs 8 entries per warp,
half of CCWS's 16.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class VTAConfig:
    """Geometry of the victim tag array."""

    entries_per_warp: int = 8
    num_warps: int = 48

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical configurations."""
        if self.entries_per_warp <= 0:
            raise ValueError("VTA needs at least one entry per warp")
        if self.num_warps <= 0:
            raise ValueError("VTA needs at least one warp set")


@dataclass(slots=True)
class VTAHit:
    """Result of a VTA probe that found the missed block (slotted)."""

    wid: int              # warp that suffered the lost locality
    block: int            # block address that was re-referenced
    evictor_wid: int      # warp whose access evicted it (the interferer)


@dataclass
class VTAStats:
    """Counters describing VTA behaviour."""

    insertions: int = 0
    probes: int = 0
    hits: int = 0
    per_warp_hits: dict[int, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """VTA hits per probe."""
        return self.hits / self.probes if self.probes else 0.0


class VictimTagArray:
    """Per-warp FIFO victim tag sets.

    The implementation keeps one ordered dict per warp mapping
    ``block -> evictor_wid``; insertion order gives FIFO replacement.
    """

    def __init__(self, config: Optional[VTAConfig] = None) -> None:
        self.config = config or VTAConfig()
        self.config.validate()
        self._sets: dict[int, OrderedDict[int, int]] = {}
        self.stats = VTAStats()

    def _set_for(self, wid: int) -> OrderedDict[int, int]:
        return self._sets.setdefault(wid, OrderedDict())

    # ------------------------------------------------------------------
    def record_eviction(self, owner_wid: int, block: int, evictor_wid: int) -> None:
        """Record that ``evictor_wid`` evicted ``block`` owned by ``owner_wid``.

        Self-evictions are still recorded: a warp can thrash itself (for
        example when its own working set exceeds the ways of a set), and the
        interference detector filters self-interference where the paper's
        Algorithm 1 requires it (``j != i``).
        """
        vta_set = self._set_for(owner_wid)
        if block in vta_set:
            # Refresh the evictor but keep FIFO age.
            vta_set[block] = evictor_wid
            return
        while len(vta_set) >= self.config.entries_per_warp:
            vta_set.popitem(last=False)
        vta_set[block] = evictor_wid
        self.stats.insertions += 1

    def probe(self, wid: int, block: int, *, consume: bool = True) -> Optional[VTAHit]:
        """Probe warp ``wid``'s VTA set for ``block`` on an L1D miss.

        Returns a :class:`VTAHit` when present.  By default the entry is
        consumed (removed) on a hit, so one lost-locality event is counted
        once per re-reference.
        """
        self.stats.probes += 1
        vta_set = self._sets.get(wid)
        if not vta_set or block not in vta_set:
            return None
        evictor = vta_set[block]
        if consume:
            del vta_set[block]
        self.stats.hits += 1
        self.stats.per_warp_hits[wid] = self.stats.per_warp_hits.get(wid, 0) + 1
        return VTAHit(wid=wid, block=block, evictor_wid=evictor)

    # ------------------------------------------------------------------
    def occupancy(self, wid: int) -> int:
        """Number of victim tags currently held for warp ``wid``."""
        return len(self._sets.get(wid, ()))

    def clear(self) -> None:
        """Drop every victim tag (used between kernels)."""
        self._sets.clear()

    def storage_bits(self, tag_bits: int = 25, wid_bits: int = 6) -> int:
        """Model storage cost in bits (used by the area model)."""
        per_entry = tag_bits + wid_bits
        return per_entry * self.config.entries_per_warp * self.config.num_warps
