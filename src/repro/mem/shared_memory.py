"""Shared memory (scratchpad) and the Shared Memory Management Table.

Per Section II-A of the paper, each SM has a single on-chip memory structure
that is split between L1D cache and shared memory (16 KB / 48 KB on the
GTX 480 baseline).  Shared memory is organised as 32 independently
addressable banks; programmers explicitly allocate a region per CTA, and the
SM tracks allocations in a Shared Memory Management Table (SMMT) with one
entry per CTA (base address + size).

CIAO piggybacks on the SMMT: when a CTA launches, CIAO reads the existing
entries to find the *unused* portion of shared memory, then inserts an extra
SMMT entry reserving that region for its shared-memory cache
(Section IV-B, "Determination of unused shared memory space").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class SMMTEntry:
    """One Shared Memory Management Table entry (a reservation)."""

    owner: str          # "cta:<id>" for program allocations, "ciao" for the cache
    base: int           # byte offset within shared memory
    size: int           # bytes

    @property
    def end(self) -> int:
        """One past the last reserved byte."""
        return self.base + self.size


class SharedMemoryManagementTable:
    """Tracks shared-memory reservations within one SM."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("shared memory capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: list[SMMTEntry] = []

    # ------------------------------------------------------------------
    def entries(self) -> list[SMMTEntry]:
        """Current reservations (copy)."""
        return list(self._entries)

    def allocated_bytes(self) -> int:
        """Total bytes reserved."""
        return sum(entry.size for entry in self._entries)

    def unused_bytes(self) -> int:
        """Bytes not reserved by any entry."""
        return self.capacity_bytes - self.allocated_bytes()

    def _next_free_base(self) -> int:
        if not self._entries:
            return 0
        return max(entry.end for entry in self._entries)

    def allocate(self, owner: str, size: int) -> SMMTEntry:
        """Reserve ``size`` bytes for ``owner``; raises when space is missing."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        if size > self.unused_bytes():
            raise MemoryError(
                f"shared memory exhausted: requested {size} bytes, "
                f"only {self.unused_bytes()} available"
            )
        entry = SMMTEntry(owner=owner, base=self._next_free_base(), size=size)
        self._entries.append(entry)
        return entry

    def free(self, owner: str) -> int:
        """Release every reservation of ``owner``; returns bytes freed."""
        freed = sum(e.size for e in self._entries if e.owner == owner)
        self._entries = [e for e in self._entries if e.owner != owner]
        return freed

    def find(self, owner: str) -> Optional[SMMTEntry]:
        """Return the first reservation of ``owner`` if present."""
        for entry in self._entries:
            if entry.owner == owner:
                return entry
        return None


@dataclass
class SharedMemoryStats:
    """Shared memory access statistics."""

    accesses: int = 0
    bank_conflict_cycles: int = 0
    rows_touched: set[int] = field(default_factory=set)


class SharedMemory:
    """Banked shared memory of one SM.

    Only the aspects the paper depends on are modelled:

    * capacity and the SMMT (who owns how much),
    * the 32-bank organisation with a simple bank-conflict serialisation
      model (the maximum number of requests hitting one bank is the number
      of serialised cycles),
    * which rows have ever been touched, used for the shared-memory
      utilisation figure (Fig. 8b).
    """

    NUM_BANKS = 32
    BANK_WIDTH_BYTES = 8  # each bank allows 64-bit accesses (Section IV-B)

    def __init__(self, capacity_bytes: int = 48 * 1024) -> None:
        self.capacity_bytes = capacity_bytes
        self.smmt = SharedMemoryManagementTable(capacity_bytes)
        self.stats = SharedMemoryStats()

    # ------------------------------------------------------------------
    @property
    def row_bytes(self) -> int:
        """Bytes per row across all banks."""
        return self.NUM_BANKS * self.BANK_WIDTH_BYTES

    @property
    def num_rows(self) -> int:
        """Number of rows across the full structure."""
        return self.capacity_bytes // self.row_bytes

    def bank_of(self, byte_offset: int) -> int:
        """Bank index servicing ``byte_offset``."""
        return (byte_offset // self.BANK_WIDTH_BYTES) % self.NUM_BANKS

    def row_of(self, byte_offset: int) -> int:
        """Row index of ``byte_offset``."""
        return byte_offset // self.row_bytes

    def access(self, byte_offsets: Iterable[int]) -> int:
        """Model one shared-memory access by a warp.

        ``byte_offsets`` are the per-lane shared-memory offsets.  Returns the
        number of cycles the access occupies the shared memory (1 when
        conflict-free, otherwise the worst per-bank request count).
        """
        offsets = list(byte_offsets)
        if not offsets:
            return 0
        if min(offsets) < 0 or max(offsets) >= self.capacity_bytes:
            for offset in offsets:
                if offset < 0 or offset >= self.capacity_bytes:
                    raise ValueError(f"shared memory offset {offset} out of range")
        bank_width = self.BANK_WIDTH_BYTES
        num_banks = self.NUM_BANKS
        row_bytes = bank_width * num_banks
        per_bank: dict[int, int] = {}
        per_bank_get = per_bank.get
        for offset in offsets:
            bank = (offset // bank_width) % num_banks
            per_bank[bank] = per_bank_get(bank, 0) + 1
        self.stats.rows_touched.update([offset // row_bytes for offset in offsets])
        cycles = max(per_bank.values())
        self.stats.accesses += 1
        self.stats.bank_conflict_cycles += cycles - 1
        return cycles

    def utilization(self) -> float:
        """Fraction of rows touched at least once (Fig. 8b metric)."""
        if self.num_rows == 0:
            return 0.0
        return len(self.stats.rows_touched) / self.num_rows
